"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(the offline CI environment lacks the ``wheel`` package that modern editable
installs require, see README "Installation"), and registers the shared
fixtures used by both the test suite and the benchmark harness.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


