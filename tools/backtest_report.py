#!/usr/bin/env python3
"""Render a backtest sweep artifact as a human-readable what-if report.

Reads the schema-v1 JSON written by ``python -m repro.cli backtest --out``
(or :meth:`repro.serve.SweepResult.to_json`) and prints:

* context — the trace, composition and oracle the sweep ran against, plus
  the recorded-baseline exactness verdict (the sweep's honesty check);
* candidates — one row per schedule with the deterministic scores (agreement
  vs. the full-horizon oracle, label accuracy, mean exit timestep, modeled
  p99 latency, EDP), Pareto members starred;
* frontier — the accuracy/EDP/p99 trade-off curve in frontier order, with
  each candidate's schedule spelled out;
* exit shift — per-candidate exit-timestep histograms as bars, the visual of
  *where* a schedule spends its timesteps.

Usage::

    PYTHONPATH=src python tools/backtest_report.py BACKTEST_sweep.json
    PYTHONPATH=src python tools/backtest_report.py BACKTEST_sweep.json --histograms
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _schedule_text(spec: dict) -> str:
    kind = spec.get("kind")
    if kind == "recorded":
        return "recorded knobs (per-request baseline)"
    if kind == "piecewise":
        parts = []
        for seg in spec.get("segments", []):
            text = f"{seg['start']:g}s: θ={seg['threshold']:g}"
            if seg.get("horizon") is not None:
                text += f", T<={seg['horizon']}"
            parts.append(text)
        return "; ".join(parts)
    return json.dumps(spec, sort_keys=True)


def report(path: str, histograms: bool = False) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("kind") != "backtest_sweep":
        print(f"{path} is not a backtest sweep artifact "
              f"(kind={document.get('kind')!r})")
        return 1
    print(f"backtest sweep: {path} (schema v{document.get('schema_version')})")

    trace = document.get("trace", {})
    composition = document.get("composition", {})
    oracle = document.get("oracle", {})
    print(f"trace: {trace.get('records')} requests, "
          f"dataset={trace.get('dataset')}, preset={trace.get('preset')}, "
          f"horizon={trace.get('max_timesteps')}")
    print(f"composition: {composition.get('workers')} worker(s), "
          f"{composition.get('replicas')} replica(s)")
    print(f"oracle: {oracle.get('unique_clips')} unique clips at full "
          f"horizon (θ={oracle.get('threshold')})")

    baseline = document.get("baseline", {})
    if baseline.get("name"):
        if baseline.get("exact"):
            print("baseline: recorded schedule reproduced the trace's "
                  "decisions and telemetry exactly")
        else:
            print("baseline: MISMATCH against the trace's own telemetry — "
                  "what-if scores are NOT trustworthy:")
            for line in baseline.get("mismatches", [])[:10]:
                print(f"  {line}")

    pareto = list(document.get("pareto", []))
    candidates = document.get("candidates", [])
    if not candidates:
        print("no candidates in artifact")
        return 1

    print(f"\ncandidates ({len(candidates)}, *=Pareto):")
    header = (f"  {'name':<24s} {'agree':>7s} {'acc':>7s} {'avgT':>6s} "
              f"{'p99*':>10s} {'EDP*':>12s} {'digest':>12s}")
    print(header)
    for candidate in candidates:
        scores = candidate.get("scores", {})
        star = "*" if candidate.get("name") in pareto else " "
        print(f" {star}{candidate.get('name'):<24s} "
              f"{_fmt(scores.get('agreement')):>7s} "
              f"{_fmt(scores.get('accuracy')):>7s} "
              f"{_fmt(scores.get('mean_exit'), 2):>6s} "
              f"{_fmt(scores.get('model_latency_p99'), 2):>10s} "
              f"{_fmt(scores.get('edp_mean'), 1):>12s} "
              f"{candidate.get('decision_digest', '')[:12]:>12s}")
    print("  (* modeled from decisions — composition-invariant; wall-clock "
          "stats live under each candidate's \"measured\" block)")

    by_name = {c.get("name"): c for c in candidates}
    print(f"\nPareto frontier ({len(pareto)} point(s)):")
    for name in pareto:
        candidate = by_name.get(name)
        if candidate is None:
            print(f"  {name}: (missing from candidates?)")
            continue
        scores = candidate.get("scores", {})
        print(f"  {name}: agreement {_fmt(scores.get('agreement'))}, "
              f"EDP {_fmt(scores.get('edp_mean'), 1)}, "
              f"p99 {_fmt(scores.get('model_latency_p99'), 2)}")
        print(f"    schedule: {_schedule_text(candidate.get('schedule', {}))}")

    if histograms:
        print("\nexit-timestep shift:")
        for candidate in candidates:
            histogram = candidate.get("scores", {}).get("exit_histogram", [])
            total = max(1, sum(histogram))
            peak = max(histogram) if histogram else 1
            print(f"  {candidate.get('name')}:")
            for t, count in enumerate(histogram, start=1):
                bar = "#" * int(30 * count / max(1, peak))
                print(f"    T={t}: {count:5d} "
                      f"({100.0 * count / total:5.1f}%) {bar}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("artifact",
                        help="sweep JSON written by `repro.cli backtest --out`")
    parser.add_argument("--histograms", action="store_true",
                        help="also render per-candidate exit histograms")
    args = parser.parse_args()
    return report(args.artifact, histograms=args.histograms)


if __name__ == "__main__":
    sys.exit(main())
