#!/usr/bin/env python3
"""Summarize a serving trace: traffic shape, stage breakdown, op profile.

Reads a WAL trace recorded with ``python -m repro.cli serve --record-trace``
and prints a human-readable breakdown:

* traffic — request count, duration, offered rate, rejection/truncation info;
* decisions — exit-timestep histogram, threshold(s), accuracy when labels
  were recorded;
* time breakdown — queue-delay and service-time percentiles per request, the
  closest thing to a flame view a WAL carries (per-stage *span* percentiles
  come from ``serve --stats-dump``, which holds live SpanTracker state);
* clips — unique clips vs. total requests (content-addressed dedup ratio).

With ``--ops-json`` it also renders a per-op timing profile captured under
``REPRO_TRACE_OPS=1`` (the ``op_timings`` list from
:meth:`repro.serve.InferenceEngine.op_timings`, saved as JSON), sorted by
total seconds — the op-level breakdown of where a serve session spent its
compute.

Usage::

    PYTHONPATH=src python tools/trace_report.py /tmp/trace.jsonl
    PYTHONPATH=src python tools/trace_report.py /tmp/trace.jsonl \
        --ops-json /tmp/ops.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.serve import load_trace  # noqa: E402


def _percentiles(values, points=(50, 95, 99)):
    array = np.asarray(values, dtype=np.float64)
    return {f"p{p}": float(np.percentile(array, p)) for p in points}


def report(path: str, ops_json: str | None = None) -> int:
    trace = load_trace(path)
    records = trace.records
    print(f"trace: {path}")
    if trace.header:
        keys = ("dataset", "arch", "preset", "max_timesteps", "batch_width",
                "workers", "replicas", "seed")
        context = ", ".join(f"{k}={trace.header[k]}" for k in keys
                            if k in trace.header)
        print(f"header: {context}")
    if trace.truncated:
        print("note: truncated tail recovered (crash mid-append); totals "
              "cover the durable prefix")
    if not records:
        print("no request records")
        return 1

    # Traffic shape
    offsets = [r.arrival_offset for r in records]
    span = max(offsets) - min(offsets)
    print(f"\ntraffic: {len(records)} requests, "
          f"{len(trace.rejections)} rejections, "
          f"arrival span {span:.3f}s"
          + (f", offered ~{len(records) / span:.1f} req/s" if span > 0 else ""))
    unique = len({r.digest for r in records})
    stored = len(trace.clips)
    print(f"clips: {unique} unique across {len(records)} requests "
          f"({stored} stored; dedup saves "
          f"{100.0 * (1 - unique / len(records)):.0f}% of payload writes)")

    # Decisions
    thresholds = sorted({r.threshold for r in records if r.threshold is not None})
    if len(thresholds) == 1:
        print(f"\nthreshold: {thresholds[0]} (fixed — replayable with "
              "bitwise verification)")
    elif thresholds:
        print(f"\nthreshold: moved over [{thresholds[0]}, {thresholds[-1]}] "
              "(controller trace — replay with --no-verify)")
    exits = np.array([r.exit_timestep for r in records])
    horizon = int(trace.max_timesteps or exits.max())
    histogram = np.bincount(exits, minlength=horizon + 1)[1:]
    print(f"exit timesteps: mean {exits.mean():.2f}")
    for t, count in enumerate(histogram, start=1):
        bar = "#" * int(40 * count / max(1, histogram.max()))
        print(f"  T={t}: {int(count):5d} ({100.0 * count / len(records):5.1f}%) {bar}")
    labelled = [r for r in records if r.label is not None]
    if labelled:
        correct = sum(1 for r in labelled if r.prediction == r.label)
        print(f"accuracy: {correct}/{len(labelled)} "
              f"({100.0 * correct / len(labelled):.1f}%)")

    # Time breakdown
    for name, values in (
        ("queue_delay", [r.queue_delay for r in records]),
        ("service_time", [r.service_time for r in records]),
    ):
        stats = _percentiles(values)
        rendered = ", ".join(f"{k}={1000.0 * v:.2f}ms" for k, v in stats.items())
        print(f"{name}: {rendered}")
    energies = [r.energy for r in records if r.energy is not None]
    if energies:
        print(f"energy: total {sum(energies):.4g}, "
              f"mean {sum(energies) / len(energies):.4g} per request")

    # Optional per-op profile (REPRO_TRACE_OPS=1)
    if ops_json:
        with open(ops_json, "r", encoding="utf-8") as handle:
            timings = json.load(handle)
        timings = [t for t in timings if t.get("calls")]
        if not timings:
            print("\nop profile: empty (was REPRO_TRACE_OPS=1 set?)")
            return 0
        total = sum(t["seconds"] for t in timings)
        print(f"\nop profile ({total * 1000.0:.1f}ms total across "
              f"{len(timings)} ops):")
        for t in sorted(timings, key=lambda t: -t["seconds"])[:15]:
            share = t["seconds"] / total if total else 0.0
            bar = "#" * int(40 * share)
            print(f"  [{t['index']:3d}] {t['op']:<24s} {t['calls']:6d} calls "
                  f"{1000.0 * t['seconds']:8.2f}ms ({100.0 * share:5.1f}%) {bar}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("trace", help="WAL trace path (serve --record-trace)")
    parser.add_argument("--ops-json", default=None,
                        help="per-op timing JSON captured under REPRO_TRACE_OPS=1")
    args = parser.parse_args()
    return report(args.trace, args.ops_json)


if __name__ == "__main__":
    sys.exit(main())
