#!/usr/bin/env python
"""Static-analysis gate: dtype-policy + lock-discipline linters over src/repro.

Runs :mod:`repro.analysis.dtypelint` (weak-scalar float32 policy,
docs/NUMERICS.md) and :mod:`repro.analysis.locklint` (no blocking calls
under a held lock) over every Python file in ``src/repro`` and exits
non-zero on any active finding, malformed pragma, or stale pragma — the
same contract docs/ANALYSIS.md documents and the CI ``static-analysis``
job enforces.

Usage::

    python tools/lint.py                 # lint src/repro, human output
    python tools/lint.py --verbose       # also list justified suppressions
    python tools/lint.py --json out.json # machine-readable report
    python tools/lint.py path/to/file.py # lint specific files/dirs
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
DEFAULT_TARGET = os.path.join(SRC_ROOT, "repro")

sys.path.insert(0, SRC_ROOT)

from repro.analysis import dtypelint, locklint  # noqa: E402


def iter_python_files(targets: List[str]) -> List[str]:
    files: List[str] = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            files.extend(
                os.path.join(dirpath, name)
                for name in sorted(filenames)
                if name.endswith(".py")
            )
    return files


def relative_to_src(path: str) -> str:
    absolute = os.path.abspath(path)
    root = os.path.join(SRC_ROOT, "")
    if absolute.startswith(root):
        return absolute[len(root):].replace(os.sep, "/")
    return os.path.relpath(absolute, REPO_ROOT).replace(os.sep, "/")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "targets", nargs="*", default=[DEFAULT_TARGET],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="list suppressed findings with their pragma justifications",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full report as JSON (use '-' for stdout)",
    )
    args = parser.parse_args(argv)

    active: List = []
    errors: List = []
    suppressed: List = []
    for path in iter_python_files(args.targets):
        relpath = relative_to_src(path)
        # repro/ prefix is implicit in the module tables.
        modpath = relpath[len("repro/"):] if relpath.startswith("repro/") else relpath
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        display = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        for linter in (dtypelint, locklint):
            result = linter.lint_source(display, modpath, source)
            active.extend(result.findings)
            errors.extend(result.errors)
            suppressed.extend(result.suppressed)

    for finding in active + errors:
        print(finding.render())
    if args.verbose:
        for finding in suppressed:
            print(f"{finding.render()}  [suppressed: {finding.suppressed_by}]")

    report: Dict[str, object] = {
        "findings": [vars(f) for f in active],
        "pragma_errors": [vars(f) for f in errors],
        "suppressed": [vars(f) for f in suppressed],
    }
    if args.json == "-":
        json.dump(report, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    failed = bool(active or errors)
    print(
        f"lint: {len(active)} finding(s), {len(errors)} pragma error(s), "
        f"{len(suppressed)} justified suppression(s)"
        + ("" if failed else " — clean")
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
