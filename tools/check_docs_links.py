#!/usr/bin/env python3
"""Check that relative Markdown links in the docs tree resolve.

Scans README.md and every ``docs/*.md`` for inline links/images
(``[text](target)``), skips external (``http(s)://``, ``mailto:``) and
pure-anchor targets, and verifies each remaining target exists relative to
the file containing the link.  Exits non-zero listing every broken link.

Run from anywhere: paths are resolved against the repository root (the
parent of this script's directory).  CI runs this as the docs link-check
step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline Markdown link or image: [text](target) — target taken up to the
# first closing paren (no nested parens in this repo's docs).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        # Strip an anchor suffix; what must exist is the file itself.
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            errors.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: broken link -> {target}"
            )
    return errors


def main() -> int:
    files = iter_doc_files()
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {len(files)} file(s)")
        return 1
    print(f"docs link check: {len(files)} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
