#!/usr/bin/env python3
"""Check that relative Markdown links in the docs tree resolve.

Scans README.md and every ``docs/*.md`` for inline links/images
(``[text](target)``), skips external (``http(s)://``, ``mailto:``) and
pure-anchor targets, and verifies each remaining target exists relative to
the file containing the link.  Exits non-zero listing every broken link.

Run from anywhere: paths are resolved against the repository root (the
parent of this script's directory).  CI runs this as the docs link-check
step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline Markdown link or image: [text](target) — target taken up to the
# first closing paren (no nested parens in this repo's docs).
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")

HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in a Markdown file."""
    anchors: set[str] = set()
    for match in HEADING_PATTERN.finditer(path.read_text(encoding="utf-8")):
        title = re.sub(r"[`*_]", "", match.group(1)).strip()
        slug = re.sub(r"[^\w\s-]", "", title.lower())
        slug = re.sub(r"\s+", "-", slug.strip())
        anchors.add(slug)
    return anchors


def iter_doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.is_file()]


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        line = text.count("\n", 0, match.start()) + 1
        target_path, _, anchor = target.partition("#")
        # The file half: must exist relative to the linking document.
        resolved = path if not target_path else (path.parent / target_path).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: broken link -> {target}"
            )
            continue
        # The anchor half: a #fragment into a Markdown file must name one of
        # its headings (GitHub slug rules).
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}:{line}: "
                    f"broken anchor -> {target}"
                )
    return errors


def main() -> int:
    files = iter_doc_files()
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {len(files)} file(s)")
        return 1
    print(f"docs link check: {len(files)} file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
