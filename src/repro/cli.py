"""Command-line interface for the DT-SNN reproduction.

Six subcommands cover the day-to-day workflow a user of the library needs
without writing Python:

* ``train``      — train a spiking VGG/ResNet on one of the synthetic datasets
                   and save the checkpoint (+ a JSON training report).
* ``evaluate``   — load a checkpoint, report static per-timestep accuracy and
                   the DT-SNN iso-accuracy operating point.
* ``sweep``      — threshold sweep: accuracy / average-T / (optionally) EDP
                   for a grid of entropy thresholds.
* ``chip-report``— map a checkpoint onto the Table-I IMC chip and print the
                   energy/latency/area breakdowns.
* ``serve``      — run the continuous-batching serving runtime over a
                   deterministic request stream and print the telemetry
                   (``--self-test`` verifies serve-path equivalence and exits
                   non-zero on failure).
* ``loadgen``    — sweep offered arrival rates against the serving runtime
                   and print the achieved throughput / latency table.
* ``replay``     — replay a traffic trace recorded with ``serve
                   --record-trace`` against any server composition and verify
                   every decision bitwise (the cross-composition regression
                   gate; see docs/OBSERVABILITY.md).
* ``backtest``   — offline SLA what-if: sweep candidate threshold/horizon
                   schedules over a recorded trace, score each against the
                   full-horizon oracle, and emit the Pareto frontier as a
                   schema-v1 JSON artifact (docs/OBSERVABILITY.md §5).

Example
-------
    python -m repro.cli train --dataset cifar10 --arch vgg --epochs 6 \
        --checkpoint /tmp/dtsnn.npz
    python -m repro.cli evaluate --checkpoint /tmp/dtsnn.npz --dataset cifar10
    python -m repro.cli serve --checkpoint /tmp/dtsnn.npz --num-requests 256
"""

from __future__ import annotations

import argparse
import glob
import os
import signal
import sys
import time
from typing import Dict, Optional

import numpy as np

from .core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    account_result,
    calibrate_threshold,
    compare_to_static,
    sweep_thresholds,
)
from .data import (
    DataLoader,
    SyntheticDVSConfig,
    make_cifar10_like,
    make_cifar100_like,
    make_dvs_like,
    make_tinyimagenet_like,
    train_test_split,
)
from .imc import IMCChip, format_breakdown, format_table
from .serve import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AdaptiveThresholdController,
    BacktestSweep,
    LoadGenerator,
    MetricsRegistry,
    ReplicaCrashError,
    Server,
    SpanTracker,
    StormConfig,
    StormPhase,
    StormState,
    ThresholdSchedule,
    TraceRecorder,
    TraceReplayer,
    calibrated_threshold_bounds,
    load_trace,
    priority_cycle,
    request_stream,
)
from .snn import EventFrameEncoder, spiking_resnet, spiking_vgg
from .training import (
    Trainer,
    TrainingConfig,
    collect_cumulative_logits,
    evaluate_per_timestep_accuracy,
)
from .utils import load_state_dict, save_json, save_state_dict, seed_everything

__all__ = ["main", "build_parser"]

DATASETS = {
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "tinyimagenet": make_tinyimagenet_like,
}


def _build_dataset(args: argparse.Namespace):
    if args.dataset == "cifar10dvs":
        dataset = make_dvs_like(
            SyntheticDVSConfig(
                num_classes=10,
                num_samples=args.samples,
                num_frames=args.timesteps,
                image_size=args.image_size,
                seed=args.seed,
            )
        )
    else:
        dataset = DATASETS[args.dataset](
            num_samples=args.samples, image_size=args.image_size, seed=args.seed
        )
    return train_test_split(dataset, test_fraction=0.25, seed=args.seed + 1)


def _build_model(args: argparse.Namespace, num_classes: int, in_channels: int):
    builder = spiking_vgg if args.arch == "vgg" else spiking_resnet
    encoder = EventFrameEncoder() if args.dataset == "cifar10dvs" else None
    return builder(
        args.preset,
        num_classes=num_classes,
        in_channels=in_channels,
        input_size=args.image_size,
        width_multiplier=args.width_multiplier,
        default_timesteps=args.timesteps,
        encoder=encoder,
    )


def _load_model(args: argparse.Namespace, num_classes: int, in_channels: int):
    model = _build_model(args, num_classes, in_channels)
    model.load_state_dict(load_state_dict(args.checkpoint))
    return model


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=[*DATASETS, "cifar10dvs"], default="cifar10")
    parser.add_argument("--arch", choices=["vgg", "resnet"], default="vgg")
    parser.add_argument("--preset", default="tiny",
                        help="architecture preset (tiny/vgg5/.../vgg16, tiny/resnet11/resnet19)")
    parser.add_argument("--width-multiplier", type=float, default=1.0)
    parser.add_argument("--samples", type=int, default=400)
    parser.add_argument("--image-size", type=int, default=10)
    parser.add_argument("--timesteps", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train a spiking network")
    _add_common_arguments(train)
    train.add_argument("--epochs", type=int, default=6)
    train.add_argument("--learning-rate", type=float, default=0.15)
    train.add_argument("--loss", choices=["final", "per_timestep", "tet"], default="per_timestep")
    train.add_argument("--checkpoint", required=True, help="path for the saved .npz checkpoint")
    train.add_argument("--report", default=None, help="optional JSON training report path")

    evaluate = subparsers.add_parser("evaluate", help="evaluate a checkpoint statically and dynamically")
    _add_common_arguments(evaluate)
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--tolerance", type=float, default=0.005,
                          help="allowed accuracy drop for the DT-SNN calibration")

    sweep = subparsers.add_parser("sweep", help="entropy-threshold sweep for a checkpoint")
    _add_common_arguments(sweep)
    sweep.add_argument("--checkpoint", required=True)
    sweep.add_argument("--thresholds", type=float, nargs="+",
                       default=[0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9])
    sweep.add_argument("--with-edp", action="store_true",
                       help="also price every sweep point on the IMC chip")

    chip = subparsers.add_parser("chip-report", help="map a checkpoint onto the IMC chip")
    _add_common_arguments(chip)
    chip.add_argument("--checkpoint", required=True)
    chip.add_argument("--max-timesteps", type=int, default=8,
                      help="horizon for the energy/latency scaling table")

    serve = subparsers.add_parser(
        "serve", help="run the continuous-batching serving runtime over a request stream"
    )
    _add_serving_arguments(serve)
    serve.add_argument("--rate", type=float, default=None,
                       help="offered load in requests/s (default: closed-loop)")
    serve.add_argument("--burst", type=int, default=1,
                       help="arrival burst size at the offered rate (bursty admission)")
    serve.add_argument("--self-test", action="store_true",
                       help="small deterministic run verifying serve-path equivalence; "
                            "exits non-zero on failure")
    serve.add_argument("--storm", action="store_true",
                       help="with --self-test: drive a 4x-capacity load storm "
                            "through the storm-guard admission FSM and verify "
                            "the resilience invariants (conservation of "
                            "outcomes, shed-by-class monotonicity, bounded "
                            "high-priority p99, brown-out engagement, NORMAL "
                            "recovery, epoch-exact per-request thresholds)")
    serve.add_argument("--kill-replica", action="store_true",
                       help="with --self-test and --replicas >= 2: SIGKILL one "
                            "replica process mid-traffic over the ring "
                            "transport and verify the fault invariants (every "
                            "client answered, blast radius bounded by the "
                            "in-flight window, survivors bitwise-exact, no "
                            "/dev/shm leak)")
    serve.add_argument("--record-trace", default=None, metavar="PATH",
                       help="record served traffic to a replayable WAL trace at "
                            "PATH (clips land at PATH.clips)")
    serve.add_argument("--stats-dump", default=None, metavar="PATH",
                       help="write the metrics registry as JSON to PATH and "
                            "Prometheus text to PATH.prom at exit (also enables "
                            "request-lifecycle span tracking)")

    loadgen = subparsers.add_parser(
        "loadgen", help="sweep offered arrival rates against the serving runtime"
    )
    _add_serving_arguments(loadgen)
    loadgen.add_argument("--rates", type=float, nargs="+", default=[100.0, 300.0, 1000.0],
                         help="offered loads (requests/s) to sweep")
    loadgen.add_argument("--shed", action="store_true",
                         help="drop requests on a full queue instead of blocking the "
                              "arrival process")

    replay = subparsers.add_parser(
        "replay", help="replay a recorded traffic trace against a server "
                       "composition and verify decisions bitwise"
    )
    replay.add_argument("--trace", required=True,
                        help="trace recorded with `serve --record-trace`")
    replay.add_argument("--workers", type=int, default=1,
                        help="worker threads for the replay composition")
    replay.add_argument("--replicas", type=int, default=0,
                        help="worker processes for the replay composition")
    replay.add_argument("--batch-width", type=int, default=None,
                        help="override the recorded batch width")
    replay.add_argument("--queue-capacity", type=int, default=None,
                        help="override the recorded queue capacity")
    replay.add_argument("--honor-arrivals", action="store_true",
                        help="pace submissions to the recorded arrival offsets "
                             "instead of replaying closed-loop")
    replay.add_argument("--speed", type=float, default=1.0,
                        help="time compression for --honor-arrivals")
    replay.add_argument("--no-verify", action="store_true",
                        help="use the trace as a load source only (skip the "
                             "bitwise decision check)")
    replay.add_argument("--checkpoint", default=None,
                        help="override the checkpoint recorded in the trace header")
    replay.add_argument("--reference-path", action="store_true",
                        help="replay on the define-by-run Tensor oracle")

    backtest = subparsers.add_parser(
        "backtest", help="offline SLA what-if: sweep candidate threshold "
                         "schedules over a recorded trace and emit the "
                         "Pareto frontier as a JSON artifact"
    )
    backtest.add_argument("--trace", required=True,
                          help="trace recorded with `serve --record-trace`")
    backtest.add_argument("--thresholds", type=float, nargs="+",
                          default=[0.05, 0.2, 0.5],
                          help="candidate entropy thresholds (each becomes a "
                               "constant schedule)")
    backtest.add_argument("--horizons", type=int, nargs="+", default=None,
                          help="optional candidate horizon caps crossed with "
                               "--thresholds (default: the trace horizon)")
    backtest.add_argument("--workers", type=int, default=1,
                          help="worker threads for the backtest composition")
    backtest.add_argument("--replicas", type=int, default=0,
                          help="worker processes for the backtest composition")
    backtest.add_argument("--batch-width", type=int, default=None,
                          help="override the recorded batch width")
    backtest.add_argument("--queue-capacity", type=int, default=None,
                          help="override the recorded queue capacity")
    backtest.add_argument("--with-energy", action="store_true",
                          help="price candidates on the Table-I IMC chip "
                               "(enables the energy/EDP Pareto axes)")
    backtest.add_argument("--out", default="BACKTEST_sweep.json",
                          help="path for the schema-v1 sweep artifact")
    backtest.add_argument("--no-decisions", action="store_true",
                          help="omit per-request decisions from the artifact "
                               "(keeps only the digests)")
    backtest.add_argument("--no-baseline", action="store_true",
                          help="skip the recorded-knobs baseline candidate "
                               "and its exactness gate")
    backtest.add_argument("--cross-check", action="store_true",
                          help="re-run the sweep on a 1-worker composition "
                               "and fail unless every decision and the "
                               "Pareto frontier are bitwise identical")
    backtest.add_argument("--checkpoint", default=None,
                          help="override the checkpoint recorded in the trace header")
    backtest.add_argument("--reference-path", action="store_true",
                          help="backtest on the define-by-run Tensor oracle")
    return parser


def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
    _add_common_arguments(parser)
    parser.add_argument("--checkpoint", default=None,
                        help="trained checkpoint; omitted = train briefly in-process")
    parser.add_argument("--train-epochs", type=int, default=4,
                        help="epochs for the in-process fallback training (no --checkpoint)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="entropy threshold; omitted = calibrate to iso-accuracy")
    parser.add_argument("--tolerance", type=float, default=0.005,
                        help="accuracy tolerance for threshold calibration")
    parser.add_argument("--batch-width", type=int, default=8)
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads serving the model; with >1 the replicas "
                             "share one compiled plan (requires the fast path)")
    parser.add_argument("--replicas", type=int, default=0,
                        help="worker processes serving the model over a shared-memory "
                             "plan arena (GIL-free scaling; mutually exclusive with "
                             "--workers > 1)")
    parser.add_argument("--num-requests", type=int, default=256)
    parser.add_argument("--stream-seed", type=int, default=0,
                        help="seed of the deterministic request stream")
    parser.add_argument("--target-p95-ms", type=float, default=None,
                        help="enable the adaptive threshold controller with this p95 SLA")
    parser.add_argument("--with-energy", action="store_true",
                        help="price every request on the Table-I IMC chip")
    parser.add_argument("--reference-path", action="store_true",
                        help="run engines on the define-by-run Tensor oracle instead of "
                             "the compiled-plan fast path (predictions are bitwise "
                             "identical either way; this is the slow reference)")


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _command_train(args: argparse.Namespace) -> int:
    seed_everything(args.seed)
    train, test = _build_dataset(args)
    in_channels = train.sample_shape[-3]
    model = _build_model(args, train.num_classes, in_channels)
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=args.epochs,
            timesteps=args.timesteps,
            learning_rate=args.learning_rate,
            loss=args.loss,
        ),
    )
    result = trainer.fit(
        DataLoader(train, batch_size=32, seed=args.seed),
        DataLoader(test, batch_size=64, shuffle=False),
    )
    save_state_dict(args.checkpoint, model.state_dict())
    print(f"saved checkpoint to {args.checkpoint}")
    print(f"final eval accuracy: {result.final_eval_accuracy:.4f}")
    if args.report:
        save_json(
            args.report,
            {
                "dataset": args.dataset,
                "architecture": args.arch,
                "epochs": result.epochs_run,
                "train_loss": result.train_loss_history,
                "eval_accuracy": result.eval_accuracy_history,
                "final_eval_accuracy": result.final_eval_accuracy,
            },
        )
        print(f"wrote training report to {args.report}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    seed_everything(args.seed)
    train, test = _build_dataset(args)
    model = _load_model(args, train.num_classes, train.sample_shape[-3])
    loader = DataLoader(test, batch_size=64, shuffle=False)

    per_timestep = evaluate_per_timestep_accuracy(model, loader, timesteps=args.timesteps)
    rows = [[f"T={t}", 100.0 * acc] for t, acc in enumerate(per_timestep, start=1)]
    print(format_table(["horizon", "accuracy (%)"], rows, title="Static SNN accuracy"))

    collected = collect_cumulative_logits(model, loader, timesteps=args.timesteps)
    point = calibrate_threshold(collected["logits"], collected["labels"], tolerance=args.tolerance)
    print(f"\nDT-SNN: threshold={point.threshold:.4f} accuracy={point.accuracy:.4f} "
          f"average timesteps={point.average_timesteps:.2f}")
    for t, fraction in enumerate(point.timestep_fractions, start=1):
        print(f"  exits at T={t}: {100 * fraction:.1f}%")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    seed_everything(args.seed)
    train, test = _build_dataset(args)
    model = _load_model(args, train.num_classes, train.sample_shape[-3])
    loader = DataLoader(test, batch_size=64, shuffle=False)
    collected = collect_cumulative_logits(model, loader, timesteps=args.timesteps)

    chip: Optional[IMCChip] = None
    if args.with_edp:
        chip = IMCChip.from_network(model, test.inputs[:4], num_classes=train.num_classes)

    rows = []
    for point in sweep_thresholds(collected["logits"], collected["labels"], args.thresholds):
        row = [point.threshold, 100.0 * point.accuracy, point.average_timesteps]
        if chip is not None:
            report = account_result(point.result, chip)
            comparison = compare_to_static(report, chip, static_timesteps=args.timesteps)
            row.extend([comparison["normalized_energy"], comparison["normalized_edp"]])
        rows.append(row)
    headers = ["threshold", "accuracy (%)", "avg T"]
    if chip is not None:
        headers += ["energy (x static)", "EDP (x static)"]
    print(format_table(headers, rows, title="Entropy-threshold sweep", float_format="{:.3f}"))
    return 0


def _command_chip_report(args: argparse.Namespace) -> int:
    seed_everything(args.seed)
    train, test = _build_dataset(args)
    model = _load_model(args, train.num_classes, train.sample_shape[-3])
    chip = IMCChip.from_network(model, test.inputs[:4], num_classes=train.num_classes)

    summary = chip.summary()
    rows = [[key, value] for key, value in summary.items()]
    print(format_table(["quantity", "value"], rows, title="Chip summary", float_format="{:.4g}"))
    print()
    print(format_breakdown(chip.energy_breakdown_shares(),
                           title="Per-timestep energy breakdown (Fig. 1A)"))
    energy = chip.normalized_energy_curve(args.max_timesteps)
    latency = chip.normalized_latency_curve(args.max_timesteps)
    rows = [[t, energy[t], latency[t]] for t in sorted(energy)]
    print()
    print(format_table(["T", "normalized energy", "normalized latency"], rows,
                       title="Scaling with timesteps (Fig. 1B)", float_format="{:.2f}"))
    print()
    print(format_breakdown(
        {k: v / chip.area_breakdown()["total"] for k, v in chip.area_breakdown().items() if k != "total"},
        title="Area breakdown"))
    return 0


def _prepare_serving(args: argparse.Namespace):
    """Dataset + model + calibrated policy shared by ``serve`` and ``loadgen``."""
    seed_everything(args.seed)
    train, test = _build_dataset(args)
    if args.checkpoint:
        model = _load_model(args, train.num_classes, train.sample_shape[-3])
    else:
        print(f"no --checkpoint given: training in-process for {args.train_epochs} epochs")
        model = _build_model(args, train.num_classes, train.sample_shape[-3])
        Trainer(
            model,
            TrainingConfig(
                epochs=args.train_epochs, timesteps=args.timesteps, learning_rate=0.15
            ),
        ).fit(
            DataLoader(train, batch_size=32, seed=args.seed),
            DataLoader(test, batch_size=64, shuffle=False),
        )
    loader = DataLoader(test, batch_size=64, shuffle=False)
    collected = collect_cumulative_logits(model, loader, timesteps=args.timesteps)

    if args.threshold is not None:
        threshold = args.threshold
    else:
        point = calibrate_threshold(
            collected["logits"], collected["labels"], tolerance=args.tolerance
        )
        threshold = point.threshold
        print(f"calibrated entropy threshold: {threshold:.4f} "
              f"(accuracy {point.accuracy:.4f}, avg T {point.average_timesteps:.2f})")
    policy = EntropyExitPolicy(threshold=min(threshold, 1.0))

    controller = None
    if args.target_p95_ms is not None:
        low, high = calibrated_threshold_bounds(collected["logits"], collected["labels"])
        controller = AdaptiveThresholdController(
            policy=policy,
            target_p95_latency=args.target_p95_ms / 1000.0,
            min_threshold=low,
            max_threshold=max(high, low),
        )
        print(f"adaptive controller: p95 SLA {args.target_p95_ms:.1f} ms, "
              f"threshold bounds [{low:.4f}, {high:.4f}]")
    cost_model = None
    if args.with_energy:
        cost_model = IMCChip.from_network(model, test.inputs[:4], num_classes=train.num_classes)
    return model, test, collected, policy, controller, cost_model


def _trace_meta(args: argparse.Namespace, policy) -> Dict[str, object]:
    """Everything a `replay` run needs to rebuild the identical serving
    context: the deterministic model recipe (seeded dataset + in-process
    training or checkpoint path) and the decision knobs."""
    return {
        "dataset": args.dataset,
        "arch": args.arch,
        "preset": args.preset,
        "width_multiplier": args.width_multiplier,
        "samples": args.samples,
        "image_size": args.image_size,
        "timesteps": args.timesteps,
        "max_timesteps": args.timesteps,
        "seed": args.seed,
        "checkpoint": args.checkpoint,
        "train_epochs": args.train_epochs,
        "threshold": float(policy.threshold),
        "tolerance": args.tolerance,
        "batch_width": args.batch_width,
        "queue_capacity": args.queue_capacity,
        "workers": args.workers,
        "replicas": args.replicas,
    }


def _build_server(args: argparse.Namespace, model, policy, controller, cost_model,
                  trace=None, spans=None, storm=None) -> Server:
    server = Server(
        model,
        policy,
        max_timesteps=args.timesteps,
        batch_width=args.batch_width,
        queue_capacity=args.queue_capacity,
        num_workers=args.workers,
        num_replicas=args.replicas,
        cost_model=cost_model,
        controller=controller,
        use_runtime=False if args.reference_path else None,
        trace=trace,
        spans=spans,
        storm=storm,
    )
    if server.replicas is not None:
        arena = server.replicas.arena
        print(f"execution path: {server.replicas.num_replicas} process replica(s) "
              f"over one shared-memory plan arena "
              f"({arena.spec.size} bytes, {len(arena.spec.entries)} constants)")
        return server
    engine = server.batchers[0].engine
    path = "compiled-plan fast path" if engine.fast_path else "Tensor reference oracle"
    workers = len(server.batchers)
    sharing = " (one shared plan)" if workers > 1 else ""
    print(f"execution path: {path}; {workers} worker(s){sharing}")
    return server


def _print_serving_report(args: argparse.Namespace, report, server: Server) -> None:
    stats = server.stats()
    rows = [
        ["offered requests", float(report.offered)],
        ["completed", float(report.completed)],
        ["dropped (backpressure)", float(report.dropped)],
        ["throughput (req/s)", report.throughput_rps],
        ["latency p50 (ms)", 1000.0 * stats.get("latency_p50", 0.0)],
        ["latency p95 (ms)", 1000.0 * stats.get("latency_p95", 0.0)],
        ["avg exit timesteps", report.average_exit_timesteps()],
        ["batch occupancy", stats.get("occupancy_mean", 0.0)],
    ]
    accuracy = report.accuracy()
    if accuracy is not None:
        rows.append(["accuracy (%)", 100.0 * accuracy])
    if "energy_mean" in stats:
        rows.append(["mean energy / request", stats["energy_mean"]])
        rows.append(["mean EDP / request", stats["edp_mean"]])
    if "threshold" in stats:
        rows.append(["final threshold", stats["threshold"]])
    print(format_table(["metric", "value"], rows, title="Serving report",
                       float_format="{:.3f}"))
    if report.results:
        histogram = server.telemetry.exit_histogram(args.timesteps)
        print()
        print(format_table(
            ["exit T", "requests", "share (%)"],
            [[t, int(count), 100.0 * count / max(1, report.completed)]
             for t, count in enumerate(histogram, start=1)],
            title="Exit-timestep histogram", float_format="{:.1f}"))


def _write_stats_dump(path: str, server: Server, spans, max_timesteps: int) -> None:
    """Export the metrics registry (JSON at ``path``, Prometheus text at
    ``path.prom``) plus the span-stage breakdown."""
    registry = MetricsRegistry()
    server.telemetry.fill_registry(registry, max_timesteps=max_timesteps)
    payload = {
        "metrics": registry.to_json(),
        "snapshot": server.telemetry.snapshot(),
    }
    if spans is not None:
        payload["spans"] = spans.summary()
    save_json(path, payload)
    prom_path = path + ".prom"
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_prometheus())
    print(f"wrote stats dump to {path} (+ {prom_path})")


def _serve_storm_self_test(args: argparse.Namespace) -> int:
    """`serve --self-test --storm`: overload-resilience smoke test.

    Two runs over the identical deterministic stream: a closed-loop
    calibration run measuring serving capacity, then a storm-guarded run
    whose offered load follows calm → 4x-capacity storm → calm, with a
    deterministic priority mix and per-request deadlines.  Verifies the
    resilience invariants end to end: conservation of outcomes, shed-by-class
    monotonicity, bounded high-priority p99, brown-out engagement under
    STORM, recovery to NORMAL, and — per epoch group — bitwise equality of
    every completed decision against the Tensor oracle under the *stamped*
    threshold/horizon (the PR 5 threshold-consistency fix, observable).
    """
    args.checkpoint = None
    args.samples = min(args.samples, 160)
    # More requests than the plain self-test cap: the storm phase needs
    # enough arrivals to outgrow the WARN-level shedding and cross the
    # STORM watermark.
    args.num_requests = min(args.num_requests, 144)
    args.train_epochs = min(args.train_epochs, 4)
    # A small queue keeps the watermark crossings deterministic at this
    # request count (growth during the storm must clear queue_storm), and a
    # narrow batch keeps service capacity well below the rate one Python
    # submission loop can offer — otherwise "4x capacity" is not reachable
    # and the storm never materializes.  Calibration runs under the same
    # knobs, so the measured capacity matches the storm-run server.
    args.queue_capacity = min(args.queue_capacity, 32)
    args.batch_width = min(args.batch_width, 2)
    if args.target_p95_ms is not None:
        print("storm self-test: ignoring --target-p95-ms (the FSM must be "
              "queue-signal-driven for deterministic recovery)")
        args.target_p95_ms = None
    if args.record_trace:
        print("storm self-test: ignoring --record-trace (use a plain serve "
              "run to record traffic)")
        args.record_trace = None
    model, test, collected, policy, controller, cost_model = _prepare_serving(args)
    stream = list(request_stream(test, args.num_requests, seed=args.stream_seed))

    # ---- calibration: closed-loop capacity + calm p95 ------------------- #
    server = _build_server(args, model, policy, None, cost_model).start()
    calibration = LoadGenerator(server).run(iter(stream))
    server.shutdown(drain=True)
    capacity = max(calibration.throughput_rps, 1.0)
    calm_p95 = float(calibration.stats.get("latency_p95", 0.0))
    sla_target = max(4.0 * calm_p95, 0.1)
    print(f"calibration: capacity {capacity:.1f} req/s, calm p95 "
          f"{1000.0 * calm_p95:.2f} ms, SLA target {1000.0 * sla_target:.2f} ms")

    # ---- storm run: calm -> 4x capacity -> calm ------------------------- #
    # Aggressive brown-out knob: double the calibrated threshold, clamped to
    # the normalized-entropy ceiling (exit as early as confidence allows).
    brownout = min(1.0, 2.0 * float(policy.threshold))
    # Watermarks below the defaults: at self-test scale the WARN-level LOW
    # shedding slows queue growth enough that the default 0.85 STORM line
    # is a coin flip; 0.65 keeps the crossing deterministic while still
    # exercising the full NORMAL -> WARN -> STORM -> recovery arc.
    storm_config = StormConfig(
        queue_warn=0.4,
        queue_storm=0.65,
        horizon_cap=max(1, args.timesteps - 1),
        brownout_threshold=brownout,
    )
    total = len(stream)
    warm_count = max(4, total // 6)
    storm_count = max(8, (7 * total) // 12)
    recovery_count = max(1, total - warm_count - storm_count)
    base_rate = 0.5 * capacity
    storm_rate = 4.0 * capacity
    phases = [
        StormPhase(duration=warm_count / base_rate, rate=base_rate),
        StormPhase(duration=storm_count / storm_rate, rate=storm_rate),
        StormPhase(duration=recovery_count / base_rate, rate=base_rate),
    ]
    spans = SpanTracker() if args.stats_dump else None
    server = _build_server(args, model, policy, None, cost_model,
                           spans=spans, storm=storm_config).start()
    # Uniform priority mix: every class is offered equally often, so raw
    # shed counts (not just shed rates) must come out monotone by class.
    mix_cycle = [PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW]
    generator = LoadGenerator(
        server,
        block=False,
        phases=phases,
        priorities=priority_cycle({p: 1 for p in mix_cycle}),
        deadline=sla_target,
    )
    report = generator.run(iter(stream))
    # The stream is exhausted and every accepted request resolved, so the
    # queue is empty: force calm evaluations until the FSM walks home.
    for _ in range(10 * storm_config.cooldown):
        if server.storm.observe() == StormState.NORMAL:
            break
    final_state = server.storm.state
    peak = server.telemetry.storm_peak
    sheds = server.telemetry.storm_shed_by_class
    server.shutdown(drain=True)

    _print_serving_report(args, report, server)
    shed_high = sheds.get(PRIORITY_HIGH, 0)
    shed_normal = sheds.get(PRIORITY_NORMAL, 0)
    shed_low = sheds.get(PRIORITY_LOW, 0)
    print()
    print(format_table(
        ["metric", "value"],
        [["offered", float(report.offered)],
         ["completed", float(report.completed)],
         ["dropped (shed + queue-full)", float(report.dropped)],
         ["expired (deadline)", float(report.expired)],
         ["storm sheds (high)", float(shed_high)],
         ["storm sheds (normal)", float(shed_normal)],
         ["storm sheds (low)", float(shed_low)],
         ["peak storm state (0=normal,2=storm)", float(peak)],
         ["final storm state (code)", float(StormState.CODES[final_state])]],
        title="Storm run", float_format="{:.0f}"))
    if args.stats_dump:
        _write_stats_dump(args.stats_dump, server, spans, args.timesteps)

    failures = []
    if report.completed + report.dropped + report.expired != report.offered:
        failures.append(
            f"outcome conservation broken: {report.completed} completed + "
            f"{report.dropped} dropped + {report.expired} expired != "
            f"{report.offered} offered")
    if peak < StormState.CODES[StormState.STORM]:
        failures.append(f"the 4x storm never drove the FSM to STORM "
                        f"(peak state code {peak})")
    if final_state != StormState.NORMAL:
        failures.append(f"FSM failed to recover to NORMAL (final: {final_state})")
    if not (shed_low >= shed_normal >= shed_high):
        failures.append(
            f"shed counts not monotone by priority class: "
            f"low={shed_low} normal={shed_normal} high={shed_high}")

    # High-priority p99: accepted HIGH requests must stay within 2x the SLA
    # target — the deadline bounds queue wait, brown-out bounds service time.
    high_latencies = [
        result.latency
        for result, index in zip(report.results, report.accepted_indices)
        if mix_cycle[index % len(mix_cycle)] == PRIORITY_HIGH
    ]
    if not high_latencies:
        failures.append("no high-priority request completed the storm run")
    else:
        p99_high = float(np.percentile(np.asarray(high_latencies), 99))
        print(f"high-priority accepted p99: {1000.0 * p99_high:.2f} ms "
              f"(bound: {2000.0 * sla_target:.2f} ms)")
        if p99_high > 2.0 * sla_target:
            failures.append(
                f"high-priority p99 {1000.0 * p99_high:.2f} ms exceeds 2x "
                f"SLA target {2000.0 * sla_target:.2f} ms")

    # Brown-out must have engaged, and browned requests must carry the
    # aggressive knobs they actually ran under.
    browned = [r for r in report.results if r.brownout]
    if not browned:
        failures.append("no completed request carries a brown-out epoch "
                        "(STORM admitted no high-priority traffic?)")
    for result in browned:
        if float(result.threshold) != brownout:
            failures.append(
                f"request {result.request_id}: brown-out threshold "
                f"{result.threshold} != configured {brownout}")
            break
        if result.exit_timestep > storm_config.horizon_cap:
            failures.append(
                f"request {result.request_id}: exit timestep "
                f"{result.exit_timestep} exceeds brown-out horizon cap "
                f"{storm_config.horizon_cap}")
            break

    # Epoch-exact decisions: group completions by their stamped
    # (threshold, horizon) and check each group bitwise against the Tensor
    # oracle running under exactly those knobs.  This is the PR 5
    # threshold-consistency fix made observable: the recorded threshold IS
    # the one the engine slot evaluated, whatever the FSM did meanwhile.
    inputs = np.stack([clip for clip, _ in stream])
    reference_logits = []
    for start in range(0, inputs.shape[0], 64):
        output = model.forward(inputs[start:start + 64], args.timesteps)
        reference_logits.append(output.cumulative_numpy())
    logits = np.concatenate(reference_logits, axis=1)
    groups: Dict[tuple, list] = {}
    for result, index in zip(report.results, report.accepted_indices):
        horizon = args.timesteps if result.horizon is None else int(result.horizon)
        key = (float(result.threshold), horizon)
        groups.setdefault(key, []).append((index, result))
    for (threshold, horizon), members in sorted(groups.items()):
        indices = [index for index, _ in members]
        reference = DynamicTimestepInference(
            policy=EntropyExitPolicy(threshold), max_timesteps=horizon
        ).infer_from_logits(logits[:horizon, indices, :])
        predictions = np.array([r.prediction for _, r in members])
        exits = np.array([r.exit_timestep for _, r in members])
        exact = (np.array_equal(predictions, reference.predictions)
                 and np.array_equal(exits, reference.exit_timesteps))
        print(f"epoch group (threshold={threshold:.4f}, horizon={horizon}): "
              f"{len(members)} request(s) "
              f"{'bitwise-exact' if exact else 'DIVERGED'}")
        if not exact:
            failures.append(
                f"epoch group (threshold={threshold}, horizon={horizon}): "
                "decisions diverge from infer_from_logits under the stamped "
                "knobs")

    if failures:
        for failure in failures:
            print(f"STORM SELF-TEST FAIL: {failure}")
        return 1
    print(f"STORM SELF-TEST PASS: {report.offered} offered / "
          f"{report.completed} completed under a 4x-capacity storm; sheds "
          f"monotone (low={shed_low} >= normal={shed_normal} >= "
          f"high={shed_high}), {len(browned)} brown-out completion(s), "
          f"recovered to NORMAL, {len(groups)} epoch group(s) bitwise-exact")
    return 0


def _serve_kill_self_test(args: argparse.Namespace) -> int:
    """`serve --self-test --kill-replica`: fault-injection smoke test.

    Serves the deterministic stream on process replicas over the ring
    transport, SIGKILLs one replica once traffic is demonstrably flowing,
    and verifies the crash contract end to end: every client gets an answer
    (a result or the typed :class:`ReplicaCrashError`), the blast radius is
    bounded by the victim's in-flight window, every surviving completion is
    bitwise-identical to the Tensor-oracle reference, and the drained fleet
    leaves no ``/dev/shm`` arena or ring segment behind.
    """
    if args.replicas < 2:
        print("--kill-replica needs --replicas >= 2 (a survivor must keep "
              "serving the backlog)")
        return 2
    args.checkpoint = None
    args.samples = min(args.samples, 160)
    args.num_requests = min(args.num_requests, 96)
    args.train_epochs = min(args.train_epochs, 4)
    if args.target_p95_ms is not None:
        print("kill self-test: ignoring --target-p95-ms (needs a fixed "
              "threshold)")
        args.target_p95_ms = None
    model, test, collected, policy, controller, cost_model = _prepare_serving(args)
    before = set(glob.glob("/dev/shm/repro-arena-*")
                 + glob.glob("/dev/shm/repro-rings-*"))
    server = _build_server(args, model, policy, controller, cost_model).start()
    window = server.replicas.window
    victim = server.replicas.processes[0]
    stream = list(request_stream(test, args.num_requests, seed=args.stream_seed))
    # The load generator tolerates only deadline errors; the crash test
    # expects typed failures, so it owns its futures directly.
    futures = [server.submit(inputs, label=label) for inputs, label in stream]
    deadline = time.monotonic() + 60.0
    while server.telemetry.completed < 2:
        if time.monotonic() > deadline:
            server.shutdown(drain=True)
            print("FAULT SELF-TEST FAIL: no completions before fault injection")
            return 1
        time.sleep(0.005)
    os.kill(victim.pid, signal.SIGKILL)
    completed: Dict[int, object] = {}
    crashed = []
    for index, future in enumerate(futures):
        try:
            completed[index] = future.result(timeout=120.0)
        except ReplicaCrashError:
            crashed.append(index)
    server.shutdown(drain=True)

    failures = []
    if len(completed) + len(crashed) != len(stream):
        failures.append(
            f"stranded clients: {len(completed)} completed + {len(crashed)} "
            f"crashed != {len(stream)} submitted"
        )
    if len(crashed) > window:
        failures.append(
            f"blast radius {len(crashed)} exceeds the in-flight window {window}"
        )
    if len(completed) < len(stream) - window:
        failures.append(
            f"survivor served only {len(completed)} of the "
            f"{len(stream) - window} guaranteed completions"
        )
    # Bitwise exactness of every survivor against the Tensor oracle.
    inputs = np.stack([inputs for inputs, _ in stream])
    reference_logits = []
    for start in range(0, inputs.shape[0], 64):
        output = model.forward(inputs[start:start + 64], args.timesteps)
        reference_logits.append(output.cumulative_numpy())
    reference = DynamicTimestepInference(
        policy=EntropyExitPolicy(policy.threshold), max_timesteps=args.timesteps
    ).infer_from_logits(np.concatenate(reference_logits, axis=1))
    for index, result in completed.items():
        if (result.prediction != reference.predictions[index]
                or result.exit_timestep != reference.exit_timesteps[index]):
            failures.append(
                f"request {index} diverged from the oracle: "
                f"({result.prediction}, {result.exit_timestep}) vs "
                f"({reference.predictions[index]}, "
                f"{reference.exit_timesteps[index]})"
            )
            break
    leaked = set(glob.glob("/dev/shm/repro-arena-*")
                 + glob.glob("/dev/shm/repro-rings-*")) - before
    if leaked:
        failures.append(f"shared-memory segments leaked past drain: {leaked}")
    if failures:
        for failure in failures:
            print(f"FAULT SELF-TEST FAIL: {failure}")
        return 1
    print(f"FAULT SELF-TEST PASS: {len(completed)} completed bitwise-exact, "
          f"{len(crashed)} crashed (window {window}), no shared-memory leak")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.storm:
        if not args.self_test:
            print("--storm is a self-test profile; pass --self-test too")
            return 2
        return _serve_storm_self_test(args)
    if args.kill_replica:
        if not args.self_test:
            print("--kill-replica is a self-test profile; pass --self-test too")
            return 2
        return _serve_kill_self_test(args)
    if args.self_test:
        args.checkpoint = None
        args.samples = min(args.samples, 160)
        args.num_requests = min(args.num_requests, 96)
        args.train_epochs = min(args.train_epochs, 4)
        if args.target_p95_ms is not None:
            # The equivalence reference assumes one fixed threshold for the
            # whole stream; a mid-run controller adjustment would make the
            # self-test fail spuriously.
            print("self-test: ignoring --target-p95-ms (needs a fixed threshold)")
            args.target_p95_ms = None
    model, test, collected, policy, controller, cost_model = _prepare_serving(args)
    trace = None
    if args.record_trace:
        trace = TraceRecorder(args.record_trace, meta=_trace_meta(args, policy))
    spans = SpanTracker() if args.stats_dump else None
    server = _build_server(args, model, policy, controller, cost_model,
                           trace=trace, spans=spans).start()
    stream = list(request_stream(test, args.num_requests, seed=args.stream_seed))
    generator = LoadGenerator(server, rate=args.rate, burst=args.burst)
    report = generator.run(iter(stream))
    server.shutdown(drain=True)
    if trace is not None:
        trace.close()
        print(f"recorded {trace.records_written} request(s) + "
              f"{trace.rejections_written} rejection(s) to {args.record_trace}")
    _print_serving_report(args, report, server)
    if args.stats_dump:
        _write_stats_dump(args.stats_dump, server, spans, args.timesteps)

    if not args.self_test:
        return 0
    # A complete telemetry snapshot (every counter and gauge family the
    # telemetry records — completed/rejected/shed, queue depth, occupancy).
    snapshot = server.telemetry.snapshot()
    print()
    print(format_table(["metric", "value"],
                       [[key, snapshot[key]] for key in sorted(snapshot)],
                       title="Telemetry snapshot", float_format="{:.4f}"))
    # Self-test: the serve path (by default the compiled-plan fast path) must
    # reproduce the define-by-run Tensor oracle bitwise on the identical
    # stream — model.forward below runs the Tensor graph — and drain must
    # complete every request.
    failures = []
    if report.completed != len(stream):
        failures.append(f"drain incomplete: {report.completed}/{len(stream)} requests")
    inputs = np.stack([inputs for inputs, _ in stream])
    reference_logits = []
    with_chunks = range(0, inputs.shape[0], 64)
    for start in with_chunks:
        chunk = inputs[start:start + 64]
        output = model.forward(chunk, args.timesteps)
        reference_logits.append(output.cumulative_numpy())
    reference = DynamicTimestepInference(
        policy=EntropyExitPolicy(policy.threshold), max_timesteps=args.timesteps
    ).infer_from_logits(np.concatenate(reference_logits, axis=1))
    by_id = sorted(report.results, key=lambda r: r.request_id)
    predictions = np.array([r.prediction for r in by_id])
    exits = np.array([r.exit_timestep for r in by_id])
    if not np.array_equal(predictions, reference.predictions):
        failures.append("serve predictions diverge from infer_from_logits")
    if not np.array_equal(exits, reference.exit_timesteps):
        failures.append("serve exit timesteps diverge from infer_from_logits")
    if failures:
        for failure in failures:
            print(f"SELF-TEST FAIL: {failure}")
        return 1
    print(f"SELF-TEST PASS: {len(stream)} requests, serve path bitwise-identical "
          "to infer_from_logits, drain complete")
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    model, test, collected, policy, controller, cost_model = _prepare_serving(args)
    base_threshold = policy.threshold
    rows = []
    for rate in args.rates:
        policy.threshold = base_threshold  # each rate starts from the same knob
        server = _build_server(args, model, policy, controller, cost_model).start()
        stream = request_stream(test, args.num_requests, seed=args.stream_seed)
        generator = LoadGenerator(server, rate=rate, block=not args.shed)
        report = generator.run(stream)
        server.shutdown(drain=True)
        stats = server.stats()
        rows.append([
            rate,
            report.throughput_rps,
            1000.0 * stats.get("latency_p50", 0.0),
            1000.0 * stats.get("latency_p95", 0.0),
            report.average_exit_timesteps(),
            float(report.dropped),
            stats.get("threshold", base_threshold),
        ])
    print(format_table(
        ["offered (req/s)", "achieved (req/s)", "p50 (ms)", "p95 (ms)",
         "avg T", "dropped", "final threshold"],
        rows, title="Load sweep", float_format="{:.2f}"))
    return 0


def _namespace_from_trace(trace, args: argparse.Namespace,
                          with_energy: bool = False) -> argparse.Namespace:
    """Rebuild the identical serving context from a trace header: same seeded
    dataset + in-process training (or checkpoint), threshold pinned to the
    recorded one so calibration cannot drift the decisions.  Shared by
    ``replay`` and ``backtest`` — both must serve the exact recorded model."""
    header = trace.header
    return argparse.Namespace(
        dataset=header.get("dataset", "cifar10"),
        arch=header.get("arch", "vgg"),
        preset=header.get("preset", "tiny"),
        width_multiplier=float(header.get("width_multiplier", 1.0)),
        samples=int(header.get("samples", 400)),
        image_size=int(header.get("image_size", 10)),
        timesteps=int(header.get("max_timesteps", header.get("timesteps", 4))),
        seed=int(header.get("seed", 0)),
        checkpoint=args.checkpoint or header.get("checkpoint"),
        train_epochs=int(header.get("train_epochs", 4)),
        threshold=trace.fixed_threshold(),
        tolerance=float(header.get("tolerance", 0.005)),
        target_p95_ms=None,
        with_energy=with_energy,
        batch_width=(args.batch_width if args.batch_width is not None
                     else int(header.get("batch_width", 8))),
        queue_capacity=(args.queue_capacity if args.queue_capacity is not None
                        else int(header.get("queue_capacity", 64))),
        workers=args.workers,
        replicas=args.replicas,
        reference_path=args.reference_path,
    )


def _command_replay(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    if trace.truncated:
        print("note: trace had a truncated tail; replaying the recovered prefix")
    if not trace.header:
        print("REPLAY FAIL: trace has no header (not a serve --record-trace file?)")
        return 1
    header = trace.header
    ns = _namespace_from_trace(trace, args)
    verify = not args.no_verify
    if ns.threshold is None:
        if trace.epoch_stamped():
            # The threshold moved mid-run, but every record is epoch-stamped
            # with the threshold its engine slot evaluated, so the replayer
            # pins each request to its recorded knobs and bitwise
            # verification is defined again.  The live policy threshold only
            # seeds the server; take it from the header (or first record).
            ns.threshold = float(header.get("threshold",
                                            trace.records[0].threshold))
            if verify:
                print("trace threshold moved mid-run; records are "
                      "epoch-stamped — replaying with per-request pinned "
                      "thresholds")
        elif verify:
            print("REPLAY FAIL: the trace's threshold moved mid-run without "
                  "epoch stamps (pre-epoch recording); bitwise verification "
                  "is undefined — pass --no-verify to use it as a load "
                  "source, or re-record with an epoch-stamping server")
            return 1
    replayer = TraceReplayer(trace, honor_arrivals=args.honor_arrivals,
                             speed=args.speed, verify=verify)
    model, test, collected, policy, controller, cost_model = _prepare_serving(ns)
    server = _build_server(ns, model, policy, controller, cost_model).start()
    try:
        report = replayer.replay(server)
    finally:
        server.shutdown(drain=True)
    composition = (f"{ns.replicas} process replica(s)" if ns.replicas
                   else f"{ns.workers} worker thread(s)")
    rows = [
        ["replayed requests", float(report.offered)],
        ["completed", float(report.completed)],
        ["duration (s)", report.duration],
        ["throughput (req/s)", report.throughput_rps],
        ["latency p95 (ms)", 1000.0 * report.stats.get("latency_p95", 0.0)],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"Trace replay against {composition}",
                       float_format="{:.3f}"))
    if not verify:
        return 0
    if report.exact:
        print(f"REPLAY PASS: {report.offered} decisions bitwise-identical to "
              f"the recorded trace under {composition}")
        return 0
    for mismatch in report.mismatches[:10]:
        print(f"REPLAY FAIL: {mismatch}")
    print(f"REPLAY FAIL: {len(report.mismatches)} of {report.offered} "
          "decisions diverged")
    return 1


def _command_backtest(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    if trace.truncated:
        print("note: trace had a truncated tail; backtesting the recovered prefix")
    if not trace.header:
        print("BACKTEST FAIL: trace has no header (not a serve --record-trace file?)")
        return 1
    ns = _namespace_from_trace(trace, args, with_energy=args.with_energy)
    if ns.threshold is None:
        # A moving-threshold (controller) trace: the backtester pins every
        # request's knobs explicitly, so the live policy threshold only seeds
        # the server — any valid value works.
        ns.threshold = float(trace.header.get("threshold",
                                              trace.records[0].threshold or 0.5))

    horizons = args.horizons if args.horizons else [None]
    candidates = {}
    for threshold in args.thresholds:
        for horizon in horizons:
            name = f"theta={threshold:g}"
            if horizon is not None:
                name += f",T<={int(horizon)}"
            candidates[name] = ThresholdSchedule.constant(threshold, horizon)

    model, test, collected, policy, controller, cost_model = _prepare_serving(ns)

    def run_sweep(workers: int, replicas: int):
        composition = argparse.Namespace(**{**vars(ns), "workers": workers,
                                            "replicas": replicas})
        sweep = BacktestSweep(trace, candidates,
                              include_baseline=not args.no_baseline,
                              cost_model=cost_model)
        server = _build_server(composition, model, policy, controller,
                               cost_model).start()
        try:
            return sweep.run(server)
        finally:
            server.shutdown(drain=True)

    result = run_sweep(args.workers, args.replicas)

    composition = (f"{args.replicas} process replica(s)" if args.replicas
                   else f"{args.workers} worker thread(s)")
    rows = []
    for candidate in result.candidates:
        scores = candidate.score_row()
        rows.append([
            candidate.name + (" *" if candidate.name in result.pareto else ""),
            scores["agreement"],
            -1.0 if scores["accuracy"] is None else scores["accuracy"],
            scores["mean_exit"],
            scores["model_latency_p99"],
            -1.0 if scores["edp_mean"] is None else scores["edp_mean"],
        ])
    print(format_table(
        ["candidate (*=Pareto)", "agreement", "accuracy", "avg exit T",
         "model p99", "EDP mean"],
        rows, title=f"Backtest sweep against {composition}",
        float_format="{:.4f}"))
    print(f"Pareto frontier: {', '.join(result.pareto)}")

    failed = False
    if not args.no_baseline:
        if result.baseline_exact:
            print(f"BACKTEST PASS: recorded baseline reproduced the trace's "
                  f"{len(trace.records)} decisions and telemetry exactly")
        else:
            for mismatch in result.baseline_mismatches[:10]:
                print(f"BACKTEST FAIL: {mismatch}")
            failed = True

    if args.cross_check:
        reference = run_sweep(1, 0)
        try:
            result.assert_decisions_equal(reference)
        except AssertionError as error:
            print(f"BACKTEST FAIL: {error}")
            failed = True
        else:
            print(f"BACKTEST PASS: all {len(result.candidates)} candidates "
                  f"decision-identical between {composition} and 1 worker "
                  "thread(s); Pareto frontier unchanged")

    result.to_json(args.out, include_decisions=not args.no_decisions)
    print(f"sweep artifact written to {args.out} "
          f"(schema v{result.to_document()['schema_version']}, "
          f"render with tools/backtest_report.py)")
    return 1 if failed else 0


_COMMANDS = {
    "train": _command_train,
    "evaluate": _command_evaluate,
    "sweep": _command_sweep,
    "chip-report": _command_chip_report,
    "serve": _command_serve,
    "loadgen": _command_loadgen,
    "replay": _command_replay,
    "backtest": _command_backtest,
}


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro.cli`` (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
