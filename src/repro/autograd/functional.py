"""Differentiable functional operators built on :class:`~repro.autograd.tensor.Tensor`.

These functions are the NumPy-autograd equivalents of ``torch.nn.functional``
used by the original DT-SNN implementation: 2D convolution (via im2col),
average/max pooling, linear layers, softmax / log-softmax, cross-entropy, and
one-hot encoding.

Scalar coefficients (the dropout keep-scale, pooling reciprocals, softmax
shifts) follow the weak-scalar float32 policy of
:mod:`repro.autograd.dtypes`: they adopt the activation dtype, so no
operator here promotes the dataflow to float64 (docs/NUMERICS.md).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .ops import col2im, im2col
from .tensor import Tensor, as_tensor

__all__ = [
    "linear",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "adaptive_avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "one_hot",
    "dropout",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias``.

    ``x`` has shape ``(N, in_features)`` and ``weight`` has shape
    ``(out_features, in_features)`` following the PyTorch convention.
    """
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution over ``(N, C, H, W)`` input using im2col + matmul.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``.  The
    computation graph is recorded through a custom backward closure so both
    the input and the weight receive exact gradients.
    """
    n, c, h, w = x.shape
    out_channels, in_channels, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if in_channels != c:
        raise ValueError(f"input has {c} channels but weight expects {in_channels}")

    cols, out_h, out_w = im2col(x.data, kernel, stride, padding)
    flat_weight = weight.data.reshape(out_channels, -1)
    # (N, P, CKK) @ (CKK, O) -> (N, P, O)
    out_data = cols @ flat_weight.T
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, 1, -1)
    out_data = out_data.transpose(0, 2, 1).reshape(n, out_channels, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        # grad: (N, O, out_h, out_w) -> (N, P, O)
        grad_flat = grad.reshape(n, out_channels, out_h * out_w).transpose(0, 2, 1)
        if weight.requires_grad:
            # (O, P, N) x (N, P, CKK) summed over N and P.
            grad_weight = np.einsum("npo,npk->ok", grad_flat, cols, optimize=True)
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=(0, 1)))
        if x.requires_grad:
            grad_cols = grad_flat @ flat_weight  # (N, P, CKK)
            grad_x = col2im(grad_cols, (n, c, h, w), kernel, stride, padding)
            x._accumulate(grad_x)

    return Tensor._make(out_data.astype(x.data.dtype), parents, backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(x.data, kernel, stride, 0)
    cols = cols.reshape(n, out_h * out_w, c, kernel * kernel)
    out_data = cols.mean(axis=3).transpose(0, 2, 1).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(n, c, out_h * out_w).transpose(0, 2, 1)
        grad_cols = np.repeat(grad_flat[:, :, :, None], kernel * kernel, axis=3)
        grad_cols = grad_cols / float(kernel * kernel)
        grad_cols = grad_cols.reshape(n, out_h * out_w, c * kernel * kernel)
        x._accumulate(col2im(grad_cols, (n, c, h, w), kernel, stride, 0))

    return Tensor._make(out_data.astype(x.data.dtype), (x,), backward)


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over windows; gradient flows to the argmax element."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, out_h, out_w = im2col(x.data, kernel, stride, 0)
    cols = cols.reshape(n, out_h * out_w, c, kernel * kernel)
    argmax = cols.argmax(axis=3)
    out_data = np.take_along_axis(cols, argmax[..., None], axis=3).squeeze(3)
    out_data = out_data.transpose(0, 2, 1).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_flat = grad.reshape(n, c, out_h * out_w).transpose(0, 2, 1)
        grad_cols = np.zeros((n, out_h * out_w, c, kernel * kernel), dtype=grad.dtype)
        np.put_along_axis(grad_cols, argmax[..., None], grad_flat[..., None], axis=3)
        grad_cols = grad_cols.reshape(n, out_h * out_w, c * kernel * kernel)
        x._accumulate(col2im(grad_cols, (n, c, h, w), kernel, stride, 0))

    return Tensor._make(out_data.astype(x.data.dtype), (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only integer-divisible geometries supported."""
    _, _, h, w = x.shape
    if h % output_size or w % output_size:
        raise ValueError("adaptive_avg_pool2d requires divisible spatial dims")
    kernel = h // output_size
    return avg_pool2d(x, kernel, kernel)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (Eq. 6 of the paper)."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)`` float32."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("label out of range for one_hot")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Negative log-likelihood of ``labels`` under ``log_probs`` (mean over batch)."""
    num_classes = log_probs.shape[-1]
    target = Tensor(one_hot(labels, num_classes))
    return -(log_probs * target).sum(axis=-1).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy (Eq. 9 of the paper), averaged over the batch."""
    return nll_loss(log_softmax(logits, axis=-1), labels)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by 1/(1-p) during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)
