"""NumPy-backed reverse-mode automatic differentiation.

This subpackage is the tensor substrate that replaces PyTorch in this
reproduction: a dynamic-graph autodiff engine (:mod:`repro.autograd.tensor`),
raw im2col kernels (:mod:`repro.autograd.ops`), differentiable functional
operators (:mod:`repro.autograd.functional`), and the stack-wide dtype
policy (:mod:`repro.autograd.dtypes`): weak-scalar float32, with
``REPRO_FLOAT64=1`` as the legacy-promotion escape hatch (docs/NUMERICS.md).
"""

from .dtypes import (
    DEFAULT_DTYPE,
    coerce_array,
    float64_enabled,
    scalar_dtype,
    scalar_operand,
)
from .functional import (
    adaptive_avg_pool2d,
    avg_pool2d,
    conv2d,
    cross_entropy,
    dropout,
    linear,
    log_softmax,
    max_pool2d,
    nll_loss,
    one_hot,
    softmax,
)
from .ops import col2im, conv_output_size, im2col
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack, where

__all__ = [
    "DEFAULT_DTYPE",
    "coerce_array",
    "float64_enabled",
    "scalar_dtype",
    "scalar_operand",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "stack",
    "concatenate",
    "where",
    "im2col",
    "col2im",
    "conv_output_size",
    "linear",
    "conv2d",
    "avg_pool2d",
    "max_pool2d",
    "adaptive_avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "one_hot",
    "dropout",
]
