"""Low-level NumPy kernels used by the autograd functional layer.

These are pure ``numpy`` routines (no :class:`~repro.autograd.tensor.Tensor`
involvement) implementing the im2col/col2im transforms that turn 2D
convolution and pooling into matrix multiplication.  Keeping them separate
from the autograd layer makes them independently testable and reusable by the
IMC crossbar mapper, which needs the same unrolled (rows = k*k*C_in) view of a
convolution that the hardware sees.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "pool_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"Invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def pool_output_size(size: int, kernel: int, stride: int) -> int:
    """Spatial output size of a pooling window without padding."""
    return conv_output_size(size, kernel, stride, 0)


def im2col(
    images: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unroll image patches into columns.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.
    kernel, stride, padding:
        Convolution geometry (square kernels).

    Returns
    -------
    cols:
        Array of shape ``(N, out_h * out_w, C * kernel * kernel)``.
    out_h, out_w:
        Output spatial dimensions.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        images = np.pad(
            images, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    strides = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> (N, out_h*out_w, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h * out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into image space.

    ``cols`` has shape ``(N, out_h * out_w, C * kernel * kernel)`` and the
    result has shape ``image_shape`` (the original, unpadded shape).  Overlapping
    patches are summed, which is exactly the gradient of im2col.
    """
    n, c, h, w = image_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    for i in range(kernel):
        for j in range(kernel):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
