"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class used throughout the
reproduction.  It implements a dynamic computation graph (define-by-run) with
reverse-mode differentiation, which is the same programming model the paper's
original PyTorch implementation relies on.  Only the features required by the
spiking-network training stack are implemented, but those features are
implemented completely: broadcasting-aware elementwise arithmetic, matrix
multiplication, reductions, reshaping/indexing, and a mechanism for supplying
custom gradients (used by the surrogate spike function, Eq. 4 of the paper).

Design notes
------------
* ``Tensor.data`` is always a ``numpy.ndarray`` with dtype ``float32``: the
  stack is *weak-scalar float32* (see :mod:`repro.autograd.dtypes` and
  ``docs/NUMERICS.md``), so Python scalars entering an op adopt float32
  instead of promoting the computation to float64.  Setting
  ``REPRO_FLOAT64=1`` restores the legacy behaviour (scalars materialize as
  float64 0-d arrays and float64 inputs pass through construction).
* Gradients are accumulated into ``Tensor.grad`` (a NumPy array of the same
  shape) by :meth:`Tensor.backward`.
* Graph nodes record their parents and a backward closure.  ``backward``
  performs a topological sort and walks the graph once.
* ``no_grad`` disables graph construction, used for inference and for the
  hardware simulator which only needs forward values.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .dtypes import DEFAULT_DTYPE, coerce_array

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    previous = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast operation.

    NumPy broadcasting aligns trailing dimensions; the gradient of a
    broadcast input is the sum of the output gradient over every broadcast
    axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over the leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype)
    return array


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> "Tensor":
    """Convert ``value`` to a :class:`Tensor`, passing tensors through.

    This is the single chokepoint every scalar operand of a Tensor op flows
    through: construction routes the value to
    :func:`repro.autograd.dtypes.coerce_array`, so under the default policy
    a Python scalar becomes a float32 0-d array (weak-scalar float32) and
    under ``REPRO_FLOAT64=1`` it becomes the legacy float64 0-d array that
    promotes everything downstream.
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    __array_priority__ = 1000  # ensure ndarray.__mul__ defers to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        # Dtype policy (docs/NUMERICS.md): float32 storage for everything,
        # including float64 inputs, which the seed silently passed through;
        # REPRO_FLOAT64=1 restores that legacy passthrough.
        self.data: np.ndarray = coerce_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = parents
        self._backward: Optional[Callable[[np.ndarray], None]] = backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, recording the graph only when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if requires:
            return Tensor(data, requires_grad=True, parents=parents, backward=backward)
        return Tensor(data, requires_grad=False)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # Topological order of the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # Comparison operators return plain boolean arrays (no gradient flows).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split the gradient across ties to keep it a valid subgradient.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / np.maximum(denom, 1.0))

        return Tensor._make(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(None) if i < self.ndim - 2 else slice(padding, -padding)
            for i in range(self.ndim)
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # Custom gradients (surrogate spike functions, straight-through, ...)
    # ------------------------------------------------------------------ #
    def custom_grad(
        self,
        forward_fn: Callable[[np.ndarray], np.ndarray],
        grad_fn: Callable[[np.ndarray], np.ndarray],
    ) -> "Tensor":
        """Apply ``forward_fn`` in the forward pass and scale the incoming
        gradient by ``grad_fn(self.data)`` in the backward pass.

        This is the hook used to implement surrogate-gradient spiking (the
        Heaviside firing function with the triangular surrogate of Eq. 4).
        """
        out_data = forward_fn(self.data)
        local_grad = None

        def backward(grad: np.ndarray) -> None:
            nonlocal local_grad
            if self.requires_grad:
                if local_grad is None:
                    local_grad = grad_fn(self.data)
                self._accumulate(grad * local_grad)

        return Tensor._make(np.asarray(out_data, dtype=self.data.dtype), (self,), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, propagating gradients to each input."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    a = as_tensor(a)
    b = as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * (~condition), b.shape))

    return Tensor._make(out_data, (a, b), backward)
