"""The stack-wide dtype policy: weak-scalar float32.

Every array that flows through the reproduction — activations, weights,
membrane potentials, logits — is ``float32``, and Python scalars (``tau``,
``eps``, the ``1/t`` cumulative-mean reciprocal, ...) *adopt the dtype of the
array they combine with* instead of promoting it.  This is NumPy's NEP-50
"weak scalar" rule, applied uniformly to the one place NumPy cannot apply it
for us: scalars that get materialized as 0-d arrays before the arithmetic
happens (``as_tensor(0.5)`` on the Tensor path, the mirrored constants in the
:mod:`repro.runtime` kernels).

History
-------
The seed implementation wrapped Python scalars via ``np.asarray(scalar)``,
i.e. as *float64* 0-d arrays, and 0-d arrays are "strong" under NumPy's
promotion rules.  The result was a silent dtype leak: everything downstream
of the first scalar-touching op (the BN ``var + eps``, the LIF
``membrane * tau``, the cumulative ``* (1/t)``) computed in float64 — in
training *and* inference — roughly doubling GEMM/elementwise cost.  This
module is the single point that decides which regime is active; see
``docs/NUMERICS.md`` for the full policy, the promotion table and the
golden-regeneration recipe.

Escape hatch
------------
Set ``REPRO_FLOAT64=1`` (before models are built / plans are compiled) to
restore the legacy promotion behaviour: scalars materialize as float64 0-d
arrays, float64 inputs pass through :class:`~repro.autograd.Tensor`
construction untouched, and eval-time conv+norm folding is disabled.  The
flag exists so the pre-policy numerics stay reproducible (CI keeps a job
running the fast suite under it); it is read live on every decision point,
so tests can flip it with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "float64_enabled",
    "scalar_dtype",
    "scalar_operand",
    "coerce_array",
]

#: The dtype of every Tensor and every runtime buffer under the default policy.
DEFAULT_DTYPE = np.dtype(np.float32)


_FLOAT64_PARSE = {None: False}


def float64_enabled() -> bool:
    """True when ``REPRO_FLOAT64`` requests the legacy float64-promotion mode.

    Re-reads the environment on every call (tests flip the flag at runtime);
    only the string→bool parse is memoized — this sits on per-compile and
    fold-revalidation paths, so the repeated strip/lower/membership walk
    showed up in profiles.
    """
    raw = os.environ.get("REPRO_FLOAT64")
    try:
        return _FLOAT64_PARSE[raw]
    except KeyError:
        value = raw.strip().lower() in ("1", "true", "on", "yes")
        _FLOAT64_PARSE[raw] = value
        return value


def scalar_dtype(like_dtype) -> np.dtype:
    """Dtype a Python scalar adopts next to an array of ``like_dtype``.

    Default policy: the scalar is *weak* — it takes the array's dtype, so a
    float32 network stays float32 through ``x * tau`` or ``var + eps``.
    Legacy mode (``REPRO_FLOAT64=1``): the scalar materializes as float64
    (what bare ``np.asarray(scalar)`` produces), which then promotes the
    whole downstream computation.
    """
    if float64_enabled():
        return np.dtype(np.float64)
    return np.dtype(like_dtype)


def scalar_operand(value, like_dtype) -> np.ndarray:
    """Materialize a Python scalar as the 0-d array an op should combine with.

    This is the mirror used by the graph-free :mod:`repro.runtime` kernels:
    the Tensor path routes scalars through ``as_tensor`` (ultimately
    :func:`coerce_array`), and ``scalar_operand(value, array.dtype)``
    produces a bitwise-identical constant for the same op on the kernel
    side — in either policy mode.
    """
    return np.asarray(value, dtype=scalar_dtype(like_dtype))


def coerce_array(value) -> np.ndarray:
    """Coerce arbitrary input data to the Tensor storage policy.

    Default policy: everything becomes :data:`DEFAULT_DTYPE` (float32) —
    including Python scalars (``np.asarray`` would make them float64 0-d
    arrays) and explicitly-float64 inputs, which the seed implementation
    silently passed through.  Legacy mode keeps the seed behaviour:
    float32/float64 pass through, everything else casts to float32.
    """
    array = np.asarray(value)
    if array.dtype == DEFAULT_DTYPE:
        return array
    if float64_enabled():
        if array.dtype == np.float64:
            return array
        return array.astype(np.float32)
    return array.astype(DEFAULT_DTYPE)
