"""Procedural image datasets standing in for CIFAR-10/100 and TinyImageNet.

The offline environment has no access to the paper's datasets, so the
benchmark harness uses procedurally generated multi-class image datasets.
What matters for reproducing DT-SNN's behaviour is *not* natural-image
statistics but three properties the generator controls explicitly:

1. **Class structure** — each class has a smooth spatial prototype (random
   Gaussian blobs) so a small convolutional SNN can learn to separate them.
2. **Graded per-sample difficulty** — every sample mixes its class prototype
   with noise and clutter at a per-sample contrast level.  Easy samples (high
   contrast, little noise) are classified confidently after one timestep;
   hard samples need more timesteps, which is exactly the input-dependent
   behaviour DT-SNN exploits (Fig. 5 pie charts, Fig. 8 visualization).
3. **Dataset-level difficulty ordering** — the CIFAR-100-like and
   TinyImageNet-like presets use more classes, lower contrast and more
   clutter than the CIFAR-10-like preset, preserving the paper's accuracy
   ordering (Fig. 2) and the larger average timestep DT-SNN needs on them
   (Table II).

The per-sample difficulty level is stored in ``ArrayDataset.metadata`` so the
Fig. 8 "easy vs hard input" experiment can verify that samples exiting at
T=1 really are the low-difficulty ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..utils.rng import spawn_rng
from ..utils.validation import check_positive, check_probability
from .datasets import ArrayDataset

__all__ = [
    "SyntheticImageConfig",
    "generate_class_prototypes",
    "make_synthetic_images",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_tinyimagenet_like",
    "DATASET_PRESETS",
]


@dataclass
class SyntheticImageConfig:
    """Parameters of the procedural image generator."""

    num_classes: int = 10
    num_samples: int = 512
    image_size: int = 16
    channels: int = 3
    easy_fraction: float = 0.6
    easy_contrast: Tuple[float, float] = (0.8, 1.0)
    hard_contrast: Tuple[float, float] = (0.25, 0.55)
    easy_noise: float = 0.05
    hard_noise: float = 0.35
    clutter_strength: float = 0.2
    num_blobs: int = 4
    seed: int = 0
    name: str = "synthetic"

    def validate(self) -> "SyntheticImageConfig":
        check_positive("num_classes", self.num_classes)
        check_positive("num_samples", self.num_samples)
        check_positive("image_size", self.image_size)
        check_positive("channels", self.channels)
        check_probability("easy_fraction", self.easy_fraction)
        if self.easy_contrast[0] > self.easy_contrast[1]:
            raise ValueError("easy_contrast must be (low, high)")
        if self.hard_contrast[0] > self.hard_contrast[1]:
            raise ValueError("hard_contrast must be (low, high)")
        return self


def generate_class_prototypes(
    num_classes: int,
    image_size: int,
    channels: int,
    num_blobs: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Create one smooth spatial prototype per class.

    Each prototype is a sum of ``num_blobs`` random Gaussian bumps per channel,
    normalized to ``[0, 1]``.  Prototypes are regenerated until no two classes
    are nearly identical (correlation below 0.98) so the task is learnable.
    """
    rng = rng or spawn_rng()
    yy, xx = np.mgrid[0:image_size, 0:image_size].astype(np.float32)
    prototypes = np.zeros((num_classes, channels, image_size, image_size), dtype=np.float32)
    for class_index in range(num_classes):
        for channel in range(channels):
            canvas = np.zeros((image_size, image_size), dtype=np.float32)
            for _ in range(num_blobs):
                cx, cy = rng.uniform(0, image_size, size=2)
                sigma = rng.uniform(image_size / 8.0, image_size / 3.0)
                amplitude = rng.uniform(0.5, 1.0)
                canvas += amplitude * np.exp(
                    -(((xx - cx) ** 2 + (yy - cy) ** 2) / (2.0 * sigma**2))
                )
            canvas -= canvas.min()
            peak = canvas.max()
            if peak > 0:
                canvas /= peak
            prototypes[class_index, channel] = canvas
    return prototypes


def make_synthetic_images(config: SyntheticImageConfig) -> ArrayDataset:
    """Generate a labelled image dataset from ``config``.

    Returns an :class:`ArrayDataset` whose ``metadata`` column holds the
    per-sample difficulty (0 = easy, 1 = hard, values in between for the
    continuous contrast/noise interpolation).
    """
    config = config.validate()
    rng = np.random.default_rng(config.seed)
    prototypes = generate_class_prototypes(
        config.num_classes, config.image_size, config.channels, config.num_blobs, rng
    )
    labels = rng.integers(0, config.num_classes, size=config.num_samples)
    is_hard = rng.random(config.num_samples) >= config.easy_fraction

    images = np.empty(
        (config.num_samples, config.channels, config.image_size, config.image_size),
        dtype=np.float32,
    )
    difficulty = np.empty(config.num_samples, dtype=np.float32)
    for index in range(config.num_samples):
        label = labels[index]
        if is_hard[index]:
            contrast = rng.uniform(*config.hard_contrast)
            noise_level = config.hard_noise
            clutter = config.clutter_strength
            difficulty[index] = 1.0 - contrast
        else:
            contrast = rng.uniform(*config.easy_contrast)
            noise_level = config.easy_noise
            clutter = config.clutter_strength * 0.25
            difficulty[index] = 1.0 - contrast
        sample = contrast * prototypes[label]
        if clutter > 0:
            # Clutter: a faint prototype of a *different* class superimposed,
            # mimicking the "background and object mixed together" hard
            # samples the paper visualizes in Fig. 8.
            other = int(rng.integers(0, config.num_classes))
            if other == label:
                other = (other + 1) % config.num_classes
            sample = sample + clutter * prototypes[other]
        sample = sample + rng.normal(0.0, noise_level, size=sample.shape).astype(np.float32)
        images[index] = np.clip(sample, 0.0, 1.5)
    return ArrayDataset(
        images,
        labels,
        metadata=difficulty,
        num_classes=config.num_classes,
        name=config.name,
    )


def make_cifar10_like(
    num_samples: int = 512, image_size: int = 16, seed: int = 0
) -> ArrayDataset:
    """CIFAR-10 stand-in: 10 classes, mostly easy samples."""
    config = SyntheticImageConfig(
        num_classes=10,
        num_samples=num_samples,
        image_size=image_size,
        easy_fraction=0.65,
        seed=seed,
        name="cifar10-like",
    )
    return make_synthetic_images(config)


def make_cifar100_like(
    num_samples: int = 512, image_size: int = 16, seed: int = 1
) -> ArrayDataset:
    """CIFAR-100 stand-in: more classes, lower contrast, more clutter."""
    config = SyntheticImageConfig(
        num_classes=20,
        num_samples=num_samples,
        image_size=image_size,
        easy_fraction=0.45,
        easy_contrast=(0.65, 0.9),
        hard_contrast=(0.2, 0.5),
        hard_noise=0.4,
        clutter_strength=0.3,
        seed=seed,
        name="cifar100-like",
    )
    return make_synthetic_images(config)


def make_tinyimagenet_like(
    num_samples: int = 512, image_size: int = 20, seed: int = 2
) -> ArrayDataset:
    """TinyImageNet stand-in: most classes, hardest mixture, larger images."""
    config = SyntheticImageConfig(
        num_classes=25,
        num_samples=num_samples,
        image_size=image_size,
        easy_fraction=0.35,
        easy_contrast=(0.6, 0.85),
        hard_contrast=(0.15, 0.45),
        hard_noise=0.45,
        clutter_strength=0.35,
        seed=seed,
        name="tinyimagenet-like",
    )
    return make_synthetic_images(config)


DATASET_PRESETS = {
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "tinyimagenet": make_tinyimagenet_like,
}
