"""Dataset and DataLoader abstractions.

A :class:`ArrayDataset` stores samples in memory as NumPy arrays (all
synthetic datasets in this reproduction are generated procedurally and fit in
memory comfortably).  :class:`DataLoader` provides shuffled mini-batching with
optional per-batch transforms, mirroring the small slice of the PyTorch data
API the original training recipe uses.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import spawn_rng
from ..utils.validation import check_positive

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """An in-memory dataset of ``(input, label)`` pairs.

    Parameters
    ----------
    inputs:
        Array whose first dimension indexes samples (images ``(N, C, H, W)``
        or event streams ``(N, T, C, H, W)``).
    labels:
        Integer class labels ``(N,)``.
    metadata:
        Optional per-sample auxiliary values (e.g. the difficulty level the
        synthetic generator assigned), used by the visualization experiment.
    num_classes:
        Number of classes; inferred from the labels when omitted.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        metadata: Optional[np.ndarray] = None,
        num_classes: Optional[int] = None,
        name: str = "dataset",
    ):
        inputs = np.asarray(inputs, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if inputs.shape[0] != labels.shape[0]:
            raise ValueError(
                f"inputs ({inputs.shape[0]}) and labels ({labels.shape[0]}) disagree on sample count"
            )
        if labels.ndim != 1:
            raise ValueError("labels must be one-dimensional")
        self.inputs = inputs
        self.labels = labels
        self.metadata = None if metadata is None else np.asarray(metadata)
        if self.metadata is not None and self.metadata.shape[0] != labels.shape[0]:
            raise ValueError("metadata must have one entry per sample")
        self.num_classes = int(num_classes if num_classes is not None else labels.max() + 1)
        self.name = name

    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.labels[index]

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        return tuple(self.inputs.shape[1:])

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(
            self.inputs[indices],
            self.labels[indices],
            metadata=None if self.metadata is None else self.metadata[indices],
            num_classes=self.num_classes,
            name=name or f"{self.name}-subset",
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)


def train_test_split(
    dataset: ArrayDataset, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train and test subsets with a shuffled permutation."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    cut = int(round(len(dataset) * (1.0 - test_fraction)))
    if cut == 0 or cut == len(dataset):
        raise ValueError("split would produce an empty subset")
    train = dataset.subset(order[:cut], name=f"{dataset.name}-train")
    test = dataset.subset(order[cut:], name=f"{dataset.name}-test")
    return train, test


class DataLoader:
    """Iterates a dataset in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate.
    batch_size:
        Number of samples per batch (the final batch may be smaller unless
        ``drop_last`` is set).
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    transform:
        Optional callable applied to the input batch (augmentation).
    deterministic:
        When True, every ``__iter__`` re-derives its generator from ``seed``
        so that each epoch — and each loader constructed with the same
        ``seed`` — replays the *identical* sample order and augmentation
        draws.  Serving load generators and equivalence tests use this to
        replay identical request streams.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        drop_last: bool = False,
        transform: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
        seed: Optional[int] = None,
        deterministic: bool = False,
    ):
        check_positive("batch_size", batch_size)
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.transform = transform
        self.deterministic = deterministic
        self._seed = 0 if seed is None else int(seed)
        self._rng = spawn_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        rng = np.random.default_rng(self._seed) if self.deterministic else self._rng
        order = np.arange(len(self.dataset))
        if self.shuffle:
            rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and indices.shape[0] < self.batch_size:
                break
            inputs = self.dataset.inputs[indices]
            labels = self.dataset.labels[indices]
            if self.transform is not None:
                inputs = self.transform(inputs, rng)
            yield inputs, labels
