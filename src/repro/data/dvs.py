"""Synthetic event-stream (DVS-like) dataset.

CIFAR10-DVS is an event-camera recording of CIFAR-10 images; each sample is a
stream of ON/OFF events usually accumulated into per-timestep frames.  The
paper evaluates DT-SNN on it with T=10.  This module generates a synthetic
substitute that exercises the same code path: every sample is a ``(T, C, H, W)``
tensor of sparse, binary-ish event frames whose information content
accumulates over time.

The generator animates a class-specific prototype along a small random
trajectory and emits events where the intensity changes between consecutive
positions — the standard DVS camera model.  Early frames therefore carry
partial information and later frames add more, which reproduces the key DVS
property the paper relies on: accuracy keeps improving with more timesteps,
and DT-SNN needs a larger average T than on static images (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..utils.validation import check_positive, check_probability
from .datasets import ArrayDataset
from .synthetic import generate_class_prototypes

__all__ = ["SyntheticDVSConfig", "make_dvs_like"]


@dataclass
class SyntheticDVSConfig:
    """Parameters of the synthetic event-stream generator."""

    num_classes: int = 10
    num_samples: int = 256
    num_frames: int = 10
    image_size: int = 16
    polarity_channels: int = 2
    easy_fraction: float = 0.5
    event_threshold: float = 0.05
    easy_noise_events: float = 0.01
    hard_noise_events: float = 0.08
    max_shift: int = 2
    seed: int = 0
    name: str = "cifar10-dvs-like"

    def validate(self) -> "SyntheticDVSConfig":
        check_positive("num_classes", self.num_classes)
        check_positive("num_samples", self.num_samples)
        check_positive("num_frames", self.num_frames)
        check_positive("image_size", self.image_size)
        check_positive("polarity_channels", self.polarity_channels)
        check_probability("easy_fraction", self.easy_fraction)
        check_positive("event_threshold", self.event_threshold)
        return self


def _shift_image(image: np.ndarray, dx: int, dy: int) -> np.ndarray:
    """Shift a (H, W) image by integer offsets with zero padding."""
    shifted = np.zeros_like(image)
    h, w = image.shape
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_x = slice(max(0, dx), min(w, w + dx))
    src_y = slice(max(0, -dy), min(h, h - dy))
    dst_y = slice(max(0, dy), min(h, h + dy))
    shifted[dst_y, dst_x] = image[src_y, src_x]
    return shifted


def make_dvs_like(config: Optional[SyntheticDVSConfig] = None) -> ArrayDataset:
    """Generate a synthetic event-stream dataset of shape ``(N, T, C, H, W)``."""
    config = (config or SyntheticDVSConfig()).validate()
    rng = np.random.default_rng(config.seed)
    prototypes = generate_class_prototypes(
        config.num_classes, config.image_size, 1, num_blobs=4, rng=rng
    )[:, 0]  # (K, H, W) single-channel luminance prototypes

    labels = rng.integers(0, config.num_classes, size=config.num_samples)
    is_hard = rng.random(config.num_samples) >= config.easy_fraction
    streams = np.zeros(
        (
            config.num_samples,
            config.num_frames,
            config.polarity_channels,
            config.image_size,
            config.image_size,
        ),
        dtype=np.float32,
    )
    difficulty = np.zeros(config.num_samples, dtype=np.float32)

    for index in range(config.num_samples):
        base = prototypes[labels[index]]
        noise_rate = config.hard_noise_events if is_hard[index] else config.easy_noise_events
        contrast = rng.uniform(0.3, 0.6) if is_hard[index] else rng.uniform(0.7, 1.0)
        difficulty[index] = 1.0 - contrast
        previous = np.zeros_like(base)
        position = np.array([0, 0])
        for frame_index in range(config.num_frames):
            step = rng.integers(-1, 2, size=2)
            position = np.clip(position + step, -config.max_shift, config.max_shift)
            current = contrast * _shift_image(base, int(position[0]), int(position[1]))
            delta = current - previous
            on_events = (delta > config.event_threshold).astype(np.float32)
            off_events = (delta < -config.event_threshold).astype(np.float32)
            # Shot noise: spurious events uniformly over the sensor.
            on_events += (rng.random(on_events.shape) < noise_rate).astype(np.float32)
            off_events += (rng.random(off_events.shape) < noise_rate).astype(np.float32)
            frame = np.stack([on_events, off_events])[: config.polarity_channels]
            streams[index, frame_index] = np.clip(frame, 0.0, 1.0)
            previous = current

    return ArrayDataset(
        streams,
        labels,
        metadata=difficulty,
        num_classes=config.num_classes,
        name=config.name,
    )
