"""Dataset substrate: loaders, synthetic image and event-stream generators."""

from .datasets import ArrayDataset, DataLoader, train_test_split
from .dvs import SyntheticDVSConfig, make_dvs_like
from .synthetic import (
    DATASET_PRESETS,
    SyntheticImageConfig,
    generate_class_prototypes,
    make_cifar10_like,
    make_cifar100_like,
    make_synthetic_images,
    make_tinyimagenet_like,
)
from .transforms import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomCropWithPadding,
    RandomHorizontalFlip,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "SyntheticImageConfig",
    "make_synthetic_images",
    "generate_class_prototypes",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_tinyimagenet_like",
    "DATASET_PRESETS",
    "SyntheticDVSConfig",
    "make_dvs_like",
    "Compose",
    "RandomHorizontalFlip",
    "RandomCropWithPadding",
    "GaussianNoise",
    "Normalize",
]
