"""Batch-level data augmentation transforms.

The original recipe augments CIFAR with random crops and horizontal flips.
These transforms operate on whole NumPy batches ``(N, C, H, W)`` and take the
data loader's random generator so augmentation stays reproducible.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..utils.validation import check_non_negative, check_probability

__all__ = [
    "Compose",
    "RandomHorizontalFlip",
    "RandomCropWithPadding",
    "GaussianNoise",
    "Normalize",
]


class Compose:
    """Apply a sequence of transforms in order."""

    def __init__(self, transforms: Sequence[Callable]):
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5):
        check_probability("p", p)
        self.p = p

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        batch = np.array(batch, copy=True)
        flip = rng.random(batch.shape[0]) < self.p
        batch[flip] = batch[flip, ..., ::-1]
        return batch


class RandomCropWithPadding:
    """Zero-pad the spatial dims by ``padding`` then take a random crop."""

    def __init__(self, padding: int = 2):
        check_non_negative("padding", padding)
        self.padding = int(padding)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return batch
        n = batch.shape[0]
        h, w = batch.shape[-2], batch.shape[-1]
        pad_spec = [(0, 0)] * (batch.ndim - 2) + [
            (self.padding, self.padding),
            (self.padding, self.padding),
        ]
        padded = np.pad(batch, pad_spec)
        out = np.empty_like(batch)
        offsets_y = rng.integers(0, 2 * self.padding + 1, size=n)
        offsets_x = rng.integers(0, 2 * self.padding + 1, size=n)
        for index in range(n):
            oy, ox = offsets_y[index], offsets_x[index]
            out[index] = padded[index, ..., oy : oy + h, ox : ox + w]
        return out


class GaussianNoise:
    """Add zero-mean Gaussian noise (simple robustness augmentation)."""

    def __init__(self, sigma: float = 0.02):
        check_non_negative("sigma", sigma)
        self.sigma = sigma

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return batch
        return batch + rng.normal(0.0, self.sigma, size=batch.shape).astype(batch.dtype)


class Normalize:
    """Per-channel standardization with fixed mean/std."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]):
        mean = np.asarray(mean, dtype=np.float32)
        std = np.asarray(std, dtype=np.float32)
        if np.any(std <= 0):
            raise ValueError("std entries must be positive")
        self.mean = mean.reshape(1, -1, 1, 1)
        self.std = std.reshape(1, -1, 1, 1)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - self.mean) / self.std
