"""Lowering a trained :class:`SpikingNetwork` into a flat inference plan.

The define-by-run path re-discovers the network structure every timestep by
walking Python objects and recording an autograd graph.  For inference the
structure never changes, so :func:`compile_network` walks it *once* and emits
a flat list of ops in execution order — a tiny register-based IR.  Each op
reads one (or two) virtual registers and writes one; the executor then runs
the list with no Module dispatch, no Tensor wrappers and no graph.

The plan also records the *stem*: the prefix of ops before the first LIF
layer.  Those ops are stateless functions of the input frame, so under a
deterministic constant encoder (the paper's direct encoding) their output is
identical at every timestep and can be computed once per input and replayed
— the "im2col patches cached per input" optimization, taken to its fixed
point (the whole pre-spike prefix is cached, not just the patches).

Ops capture live references to :class:`Parameter` objects and norm modules,
not copies of their arrays, so a plan survives ``load_state_dict`` and
in-place optimizer updates; derived constants (the BN denominator, the
folded conv+norm weights) are cached and refresh automatically when a
source parameter/buffer array object is replaced.

Inside :class:`~repro.snn.architectures.ConvSpikeBlock` and
``SpikingResidualBlock``, the conv→norm pair lowers to a *single* GEMM with
the norm folded into the weights (:mod:`repro.snn.folding`) — the same
folded arrays the Tensor path consumes during frozen inference, which is
what keeps the two paths bitwise-identical.  Under ``REPRO_FLOAT64=1`` the
plan reverts to the seed's unfused, float64-promoting op sequence
(:mod:`repro.autograd.dtypes`), and :func:`repro.runtime.plan_for`
recompiles cached plans whenever that mode flag changes.

Anything the lowerer does not recognize raises
:exc:`UnsupportedModuleError`; callers treat that as "use the Tensor oracle",
so exotic models silently keep working at define-by-run speed.
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.dtypes import float64_enabled, scalar_operand
from ..nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Identity, Module, Sequential
from ..snn.architectures import ConvSpikeBlock, SpikingResidualBlock
from ..snn.network import SpikingNetwork
from ..snn.neurons import LIFNeuron
from ..snn.tdbn import TemporalBatchNorm2d
from . import kernels

__all__ = [
    "UnsupportedModuleError",
    "PlanOp",
    "CompiledPlan",
    "compile_network",
]


class UnsupportedModuleError(RuntimeError):
    """The model contains a module the fast path cannot lower."""


# --------------------------------------------------------------------------- #
# Op IR
# --------------------------------------------------------------------------- #
class PlanOp:
    """Base class: read ``src`` (and maybe ``src2``), write ``dst``."""

    __slots__ = ("src", "dst")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst

    @property
    def reads(self) -> Tuple[int, ...]:
        return (self.src,)

    @property
    def is_stateful(self) -> bool:
        return False

    def run(self, regs: List[np.ndarray], scratch, state) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}(r{self.src} -> r{self.dst})"


class ConvOp(PlanOp):
    __slots__ = ("module",)

    def __init__(self, src: int, dst: int, module: Conv2d):
        super().__init__(src, dst)
        self.module = module

    def run(self, regs, scratch, state) -> None:
        m = self.module
        bias = None if m.bias is None else m.bias.data
        regs[self.dst] = kernels.conv2d_step(
            regs[self.src], m.weight.data, bias, m.kernel_size, m.stride, m.padding, scratch
        )


class NormOp(PlanOp):
    """Eval-mode BatchNorm2d / TemporalBatchNorm2d.

    The reciprocal-free denominator ``sqrt(var + eps)`` is cached and
    refreshed whenever the module's ``running_var`` buffer object changes
    (``update_buffer`` replaces the array rather than mutating it).
    """

    __slots__ = ("module", "scale", "_std", "_std_src")

    def __init__(self, src: int, dst: int, module: Module, scale: Optional[float]):
        super().__init__(src, dst)
        self.module = module
        # The scalar adopts the parameter dtype (weak-scalar float32), or
        # float64 under the legacy escape hatch — exactly what as_tensor
        # gives it on the Tensor path.
        self.scale = None if scale is None else scalar_operand(scale, np.float32)
        self._std: Optional[np.ndarray] = None
        self._std_src: Optional[np.ndarray] = None

    def _denominator(self) -> np.ndarray:
        running_var = self.module.running_var
        if self._std is None or self._std_src is not running_var:
            # Exactly the Tensor path: Tensor(var.reshape(1,C,1,1)) + eps,
            # sqrt — with eps materialized at the policy scalar dtype.
            var = running_var.reshape(1, -1, 1, 1)
            self._std = np.sqrt(var + scalar_operand(self.module.eps, var.dtype))
            self._std_src = running_var
        return self._std

    def run(self, regs, scratch, state) -> None:
        m = self.module
        channels = m.num_features
        regs[self.dst] = kernels.batchnorm_step(
            regs[self.src],
            m.running_mean.reshape(1, -1, 1, 1),
            self._denominator(),
            m.weight.data.reshape(1, channels, 1, 1),
            m.bias.data.reshape(1, channels, 1, 1),
            self.scale,
            scratch,
        )


class FoldedConvNormOp(PlanOp):
    """A conv→norm pair executed as one GEMM with the norm folded in.

    The folded ``(weight, bias)`` arrays come from the *shared*
    :class:`~repro.snn.folding.FoldedConvNorm` cache owned by the source
    block — the same object the Tensor path reads during frozen inference —
    so both execution paths consume identical constants and the bitwise
    path-vs-path contract survives folding.  The cache refreshes itself when
    any source parameter/buffer array object is replaced.
    """

    __slots__ = ("conv", "folded")

    def __init__(self, src: int, dst: int, conv: Conv2d, folded):
        super().__init__(src, dst)
        self.conv = conv
        self.folded = folded

    def run(self, regs, scratch, state) -> None:
        weight, bias = self.folded.arrays()
        regs[self.dst] = kernels.conv2d_step(
            regs[self.src], weight, bias,
            self.conv.kernel_size, self.conv.stride, self.conv.padding, scratch,
        )


class LIFOp(PlanOp):
    __slots__ = ("module", "state_index", "collect_statistics")

    def __init__(self, src: int, dst: int, module: LIFNeuron, state_index: int):
        super().__init__(src, dst)
        self.module = module
        self.state_index = state_index
        self.collect_statistics = True

    @property
    def is_stateful(self) -> bool:
        return True

    def run(self, regs, scratch, state) -> None:
        m = self.module
        spikes, membrane, spike_count = kernels.lif_step(
            regs[self.src],
            state[self.state_index],
            m.tau,
            m.v_threshold,
            m.reset,
            scratch,
        )
        state[self.state_index] = membrane
        if self.collect_statistics:
            # Same bookkeeping (and float accumulation order) as the layer.
            size = float(spikes.size)
            m.last_spike_rate = spike_count / size
            m.total_spikes += spike_count
            m.total_neuron_updates += size
        regs[self.dst] = spikes


class AvgPoolOp(PlanOp):
    __slots__ = ("kernel", "stride")

    def __init__(self, src: int, dst: int, kernel: int, stride: int):
        super().__init__(src, dst)
        self.kernel = kernel
        self.stride = stride

    def run(self, regs, scratch, state) -> None:
        regs[self.dst] = kernels.avg_pool_step(regs[self.src], self.kernel, self.stride, scratch)


class MaxPoolOp(PlanOp):
    __slots__ = ("kernel", "stride")

    def __init__(self, src: int, dst: int, kernel: int, stride: int):
        super().__init__(src, dst)
        self.kernel = kernel
        self.stride = stride

    def run(self, regs, scratch, state) -> None:
        regs[self.dst] = kernels.max_pool_step(regs[self.src], self.kernel, self.stride, scratch)


class AdaptiveAvgPoolOp(PlanOp):
    __slots__ = ("output_size",)

    def __init__(self, src: int, dst: int, output_size: int):
        super().__init__(src, dst)
        self.output_size = output_size

    def run(self, regs, scratch, state) -> None:
        x = regs[self.src]
        h, w = x.shape[2], x.shape[3]
        if h % self.output_size or w % self.output_size:
            raise ValueError("adaptive_avg_pool2d requires divisible spatial dims")
        kernel = h // self.output_size
        regs[self.dst] = kernels.avg_pool_step(x, kernel, kernel, scratch)


class FlattenOp(PlanOp):
    __slots__ = ()

    def run(self, regs, scratch, state) -> None:
        x = regs[self.src]
        regs[self.dst] = x.reshape(x.shape[0], -1)


class LinearOp(PlanOp):
    __slots__ = ("module",)

    def __init__(self, src: int, dst: int, module: Linear):
        super().__init__(src, dst)
        self.module = module

    def run(self, regs, scratch, state) -> None:
        m = self.module
        bias = None if m.bias is None else m.bias.data
        regs[self.dst] = kernels.linear_step(regs[self.src], m.weight.data, bias)


class ReLUOp(PlanOp):
    __slots__ = ()

    def run(self, regs, scratch, state) -> None:
        regs[self.dst] = kernels.relu_step(regs[self.src], scratch)


class AddOp(PlanOp):
    __slots__ = ("src2",)

    def __init__(self, src: int, src2: int, dst: int):
        super().__init__(src, dst)
        self.src2 = src2

    @property
    def reads(self) -> Tuple[int, ...]:
        return (self.src, self.src2)

    def run(self, regs, scratch, state) -> None:
        regs[self.dst] = kernels.add_step(regs[self.src], regs[self.src2], scratch)


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #
class _Lowering:
    """Walks modules in forward order, emitting ops and allocating registers."""

    def __init__(self):
        self.ops: List[PlanOp] = []
        self.next_register = 1  # register 0 is the input frame
        self.num_lif = 0

    def new_register(self) -> int:
        register = self.next_register
        self.next_register += 1
        return register

    # ------------------------------------------------------------------ #
    def _lower_conv_norm(self, conv: Module, norm: Module, folded, src: int) -> int:
        """Lower a block's conv→norm pair, folded into one GEMM when the
        Tensor path folds it too (same gate, same shared cache)."""
        if folded is not None and folded.active:
            dst = self.new_register()
            self.ops.append(FoldedConvNormOp(src, dst, conv, folded))
            return dst
        src = self.lower(conv, src)
        return self.lower(norm, src)

    def lower(self, module: Module, src: int) -> int:
        """Emit ops for ``module`` reading register ``src``; return the output register."""
        if isinstance(module, Sequential):
            for child in module:
                src = self.lower(child, src)
            return src
        if isinstance(module, ConvSpikeBlock):
            src = self._lower_conv_norm(module.conv, module.norm, module.folded, src)
            return self.lower(module.lif, src)
        if isinstance(module, SpikingResidualBlock):
            block_in = src
            main = self._lower_conv_norm(module.conv1, module.norm1, module.folded1, block_in)
            main = self.lower(module.lif1, main)
            main = self._lower_conv_norm(module.conv2, module.norm2, module.folded2, main)
            shortcut = self._lower_conv_norm(
                module.shortcut_conv, module.shortcut_norm, module.folded_shortcut, block_in
            )
            summed = self.new_register()
            self.ops.append(AddOp(main, shortcut, summed))
            return self.lower(module.lif2, summed)
        if isinstance(module, Conv2d):
            dst = self.new_register()
            self.ops.append(ConvOp(src, dst, module))
            return dst
        if isinstance(module, TemporalBatchNorm2d):
            dst = self.new_register()
            self.ops.append(NormOp(src, dst, module, scale=module.alpha * module.v_threshold))
            return dst
        if isinstance(module, BatchNorm2d):
            dst = self.new_register()
            self.ops.append(NormOp(src, dst, module, scale=None))
            return dst
        if isinstance(module, LIFNeuron):
            dst = self.new_register()
            self.ops.append(LIFOp(src, dst, module, self.num_lif))
            self.num_lif += 1
            return dst
        if isinstance(module, AvgPool2d):
            dst = self.new_register()
            self.ops.append(AvgPoolOp(src, dst, module.kernel_size, module.stride))
            return dst
        if isinstance(module, MaxPool2d):
            dst = self.new_register()
            self.ops.append(MaxPoolOp(src, dst, module.kernel_size, module.stride))
            return dst
        if isinstance(module, AdaptiveAvgPool2d):
            dst = self.new_register()
            self.ops.append(AdaptiveAvgPoolOp(src, dst, module.output_size))
            return dst
        if isinstance(module, Flatten):
            dst = self.new_register()
            self.ops.append(FlattenOp(src, dst))
            return dst
        if isinstance(module, Linear):
            dst = self.new_register()
            self.ops.append(LinearOp(src, dst, module))
            return dst
        if isinstance(module, ReLU):
            dst = self.new_register()
            self.ops.append(ReLUOp(src, dst))
            return dst
        if isinstance(module, (Identity, Dropout)):
            # Dropout is the identity in eval mode; the plan is eval-only.
            return src
        raise UnsupportedModuleError(
            f"cannot lower {type(module).__name__} into the inference fast path"
        )


class CompiledPlan:
    """A lowered network: flat op list plus the stem-cache metadata.

    Attributes
    ----------
    ops:
        Ops in execution order (features first, classifier last).
    num_registers:
        Size of the virtual register file (register 0 is the input frame).
    output_register:
        Register holding the classifier logits after a full sweep.
    num_lif:
        Number of stateful LIF ops (size of the membrane state vector).
    stem_len:
        Number of leading *stateless* ops (everything before the first LIF).
    stem_registers:
        Registers written inside the stem and read beyond it — the exact set
        an executor must restore to skip the stem from cache.
    """

    def __init__(self, model: SpikingNetwork, ops: Sequence[PlanOp], num_registers: int,
                 output_register: int, num_lif: int):
        # Weak reference only: plans are cached per model in a
        # WeakKeyDictionary, and a strong reference here would pin the key
        # (and the whole parameter set) alive forever.
        self._model_ref = weakref.ref(model)
        self.ops = list(ops)
        self.num_registers = num_registers
        self.output_register = output_register
        self.num_lif = num_lif
        # Dtype-policy mode this plan was lowered under: folding decisions
        # and scalar constants are mode-dependent, so plan_for() recompiles
        # when REPRO_FLOAT64 changes between compilation and use.
        self.float64_mode = float64_enabled()
        self.stem_len = next(
            (i for i, op in enumerate(self.ops) if op.is_stateful), 0
        )
        written = {op.dst for op in self.ops[: self.stem_len]}
        read_later = {r for op in self.ops[self.stem_len :] for r in op.reads}
        self.stem_registers: Tuple[int, ...] = tuple(sorted(written & read_later))
        # Callers alias the returned logits across timesteps (running sums),
        # so the output must be freshly allocated each step.  Only LinearOp
        # allocates; every other op hands back reused scratch or a view of
        # it, and the executor must copy in that case.
        producer = next(
            (op for op in reversed(self.ops) if op.dst == output_register), None
        )
        self.output_needs_copy = not isinstance(producer, LinearOp)

    @property
    def model(self) -> Optional[SpikingNetwork]:
        """The source model, or ``None`` once it has been garbage-collected."""
        return self._model_ref()

    def describe(self) -> str:
        """Human-readable op listing (debugging / tests)."""
        lines = [
            f"CompiledPlan(ops={len(self.ops)}, lif={self.num_lif}, "
            f"stem={self.stem_len}, out=r{self.output_register})"
        ]
        for index, op in enumerate(self.ops):
            marker = "*" if index < self.stem_len else " "
            lines.append(f" {marker} [{index:2d}] {op.describe()}")
        return "\n".join(lines)


def compile_network(model: SpikingNetwork) -> CompiledPlan:
    """Lower ``model.features`` + ``model.classifier`` into a :class:`CompiledPlan`.

    Raises :exc:`UnsupportedModuleError` when the model contains a module the
    fast path cannot express; callers should fall back to the Tensor oracle
    (``use_runtime=False`` / ``REPRO_RUNTIME=0``), which remains available
    everywhere and produces bitwise-identical results.

    Dtype guarantees: under the default weak-scalar float32 policy
    (docs/NUMERICS.md) every register, scratch buffer and membrane the plan
    touches is float32, and block-level conv→norm pairs are folded into
    single GEMMs exactly as the Tensor path folds them during frozen
    inference.  Under ``REPRO_FLOAT64=1`` the plan instead reproduces the
    seed's unfused ops and float64 scalar promotion, bit for bit.  The plan
    records the mode it was compiled under (:attr:`CompiledPlan.float64_mode`);
    :func:`repro.runtime.plan_for` recompiles on a mode mismatch.
    """
    lowering = _Lowering()
    features_out = lowering.lower(model.features, 0)
    output_register = lowering.lower(model.classifier, features_out)
    return CompiledPlan(
        model=model,
        ops=lowering.ops,
        num_registers=lowering.next_register,
        output_register=output_register,
        num_lif=lowering.num_lif,
    )
