"""Lowering a trained :class:`SpikingNetwork` into a flat inference plan.

The define-by-run path re-discovers the network structure every timestep by
walking Python objects and recording an autograd graph.  For inference the
structure never changes, so :func:`compile_network` walks it *once* and emits
a flat list of ops in execution order — a tiny register-based IR.  Each op
reads one (or two) virtual registers and writes one; the executor then runs
the list with no Module dispatch, no Tensor wrappers and no graph.

The plan also records the *stem*: the prefix of ops before the first LIF
layer.  Those ops are stateless functions of the input frame, so under a
deterministic constant encoder (the paper's direct encoding) their output is
identical at every timestep and can be computed once per input and replayed
— the "im2col patches cached per input" optimization, taken to its fixed
point (the whole pre-spike prefix is cached, not just the patches).

Ops capture live references to :class:`Parameter` objects and norm modules,
not copies of their arrays, so a plan survives ``load_state_dict`` and
in-place optimizer updates; derived constants (the BN denominator, the
folded conv+norm weights) are cached and refresh automatically when a
source parameter/buffer array object is replaced.

Inside :class:`~repro.snn.architectures.ConvSpikeBlock` and
``SpikingResidualBlock``, the conv→norm pair lowers to a *single* GEMM with
the norm folded into the weights (:mod:`repro.snn.folding`) — the same
folded arrays the Tensor path consumes during frozen inference, which is
what keeps the two paths bitwise-identical.  Under ``REPRO_FLOAT64=1`` the
plan reverts to the seed's unfused, float64-promoting op sequence
(:mod:`repro.autograd.dtypes`), and :func:`repro.runtime.plan_for`
recompiles cached plans whenever that mode flag changes.

Plans are **immutable after lowering** and shared: the process-wide
:data:`plan_registry` hands every consumer of a model instance — including N
multi-worker serve replicas on N threads — the same :class:`CompiledPlan`,
while all mutable session state lives in each
:class:`~repro.runtime.PlanExecutor`.  For time-varying deterministic
encoders (event streams) the plan also owns a shared content-keyed
:class:`StemCache` memoizing stem outputs by exact frame bytes, so replayed
DVS clips skip the stem on every replica.

Anything the lowerer does not recognize raises
:exc:`UnsupportedModuleError`; callers treat that as "use the Tensor oracle",
so exotic models silently keep working at define-by-run speed.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.lockorder import named_lock
from ..autograd.dtypes import float64_enabled, scalar_operand
from ..nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Identity, Module, Sequential
from ..snn.architectures import ConvSpikeBlock, SpikingResidualBlock
from ..snn.network import SpikingNetwork
from ..snn.neurons import LIFNeuron
from ..snn.tdbn import TemporalBatchNorm2d
from . import kernels

__all__ = [
    "UnsupportedModuleError",
    "PlanOp",
    "CompiledPlan",
    "StemCache",
    "PlanRegistry",
    "plan_registry",
    "compile_network",
]


class UnsupportedModuleError(RuntimeError):
    """The model contains a module the fast path cannot lower."""


def _stem_cache_capacity(default: int = 1024) -> int:
    """Per-plan stem-memo capacity (entries); 0 disables the memo.

    Read from ``REPRO_STEM_CACHE_CAPACITY`` once per plan compile.  Sizing
    note: one entry holds the stem output rows for one frame (conv1 output,
    e.g. 256 KB for a 64x32x32 float32 map) plus the frame bytes as key, so
    the default bounds a large-model memo at a few hundred MB; shrink it for
    memory-tight deployments or grow it for large replay working sets.
    """
    raw = os.environ.get("REPRO_STEM_CACHE_CAPACITY", "").strip()
    if not raw:
        return default
    try:
        capacity = int(raw)
    except ValueError:
        return default
    return max(0, capacity)


# --------------------------------------------------------------------------- #
# Op IR
# --------------------------------------------------------------------------- #
class PlanOp:
    """Base class: read ``src`` (and maybe ``src2``), write ``dst``.

    Ops are *immutable* after lowering: a plan is shared read-only between
    every executor built on it (multi-engine serving runs one plan under N
    worker threads), so all per-session knobs — scratch buffers, membrane
    state, the ``stats`` statistics toggle — travel through :meth:`run`'s
    arguments instead of op attributes.
    """

    __slots__ = ("src", "dst")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst

    @property
    def reads(self) -> Tuple[int, ...]:
        return (self.src,)

    @property
    def is_stateful(self) -> bool:
        return False

    def run(self, regs: List[np.ndarray], scratch, state, stats: bool = True) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}(r{self.src} -> r{self.dst})"


class ConvOp(PlanOp):
    __slots__ = ("module",)

    def __init__(self, src: int, dst: int, module: Conv2d):
        super().__init__(src, dst)
        self.module = module

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        m = self.module
        bias = None if m.bias is None else m.bias.data
        regs[self.dst] = kernels.conv2d_step(
            regs[self.src], m.weight.data, bias, m.kernel_size, m.stride, m.padding, scratch
        )


class NormOp(PlanOp):
    """Eval-mode BatchNorm2d / TemporalBatchNorm2d.

    The reciprocal-free denominator ``sqrt(var + eps)`` is cached and
    refreshed whenever the module's ``running_var`` buffer object changes
    (``update_buffer`` replaces the array rather than mutating it).
    """

    __slots__ = ("module", "scale", "_std", "_std_src")

    def __init__(self, src: int, dst: int, module: Module, scale: Optional[float]):
        super().__init__(src, dst)
        self.module = module
        # The scalar adopts the parameter dtype (weak-scalar float32), or
        # float64 under the legacy escape hatch — exactly what as_tensor
        # gives it on the Tensor path.
        self.scale = None if scale is None else scalar_operand(scale, np.float32)
        self._std: Optional[np.ndarray] = None
        self._std_src: Optional[np.ndarray] = None

    def _denominator(self) -> np.ndarray:
        running_var = self.module.running_var
        if self._std is None or self._std_src is not running_var:
            # Exactly the Tensor path: Tensor(var.reshape(1,C,1,1)) + eps,
            # sqrt — with eps materialized at the policy scalar dtype.
            var = running_var.reshape(1, -1, 1, 1)
            self._std = np.sqrt(var + scalar_operand(self.module.eps, var.dtype))
            self._std_src = running_var
        return self._std

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        m = self.module
        channels = m.num_features
        regs[self.dst] = kernels.batchnorm_step(
            regs[self.src],
            m.running_mean.reshape(1, -1, 1, 1),
            self._denominator(),
            m.weight.data.reshape(1, channels, 1, 1),
            m.bias.data.reshape(1, channels, 1, 1),
            self.scale,
            scratch,
        )


class FoldedConvNormOp(PlanOp):
    """A conv→norm pair executed as one GEMM with the norm folded in.

    The folded ``(weight, bias)`` arrays come from the *shared*
    :class:`~repro.snn.folding.FoldedConvNorm` cache owned by the source
    block — the same object the Tensor path reads during frozen inference —
    so both execution paths consume identical constants and the bitwise
    path-vs-path contract survives folding.  The cache refreshes itself when
    any source parameter/buffer array object is replaced.
    """

    __slots__ = ("conv", "folded")

    def __init__(self, src: int, dst: int, conv: Conv2d, folded):
        super().__init__(src, dst)
        self.conv = conv
        self.folded = folded

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        weight, bias = self.folded.arrays()
        regs[self.dst] = kernels.conv2d_step(
            regs[self.src], weight, bias,
            self.conv.kernel_size, self.conv.stride, self.conv.padding, scratch,
        )


class LIFOp(PlanOp):
    __slots__ = ("module", "state_index")

    def __init__(self, src: int, dst: int, module: LIFNeuron, state_index: int):
        super().__init__(src, dst)
        self.module = module
        self.state_index = state_index

    @property
    def is_stateful(self) -> bool:
        return True

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        m = self.module
        spikes, membrane, spike_count = kernels.lif_step(
            regs[self.src],
            state[self.state_index],
            m.tau,
            m.v_threshold,
            m.reset,
            scratch,
        )
        state[self.state_index] = membrane
        if stats:
            # Same bookkeeping (and float accumulation order) as the layer.
            size = float(spikes.size)
            m.last_spike_rate = spike_count / size
            m.total_spikes += spike_count
            m.total_neuron_updates += size
        regs[self.dst] = spikes


class AvgPoolOp(PlanOp):
    __slots__ = ("kernel", "stride")

    def __init__(self, src: int, dst: int, kernel: int, stride: int):
        super().__init__(src, dst)
        self.kernel = kernel
        self.stride = stride

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        regs[self.dst] = kernels.avg_pool_step(regs[self.src], self.kernel, self.stride, scratch)


class MaxPoolOp(PlanOp):
    __slots__ = ("kernel", "stride")

    def __init__(self, src: int, dst: int, kernel: int, stride: int):
        super().__init__(src, dst)
        self.kernel = kernel
        self.stride = stride

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        regs[self.dst] = kernels.max_pool_step(regs[self.src], self.kernel, self.stride, scratch)


class AdaptiveAvgPoolOp(PlanOp):
    __slots__ = ("output_size",)

    def __init__(self, src: int, dst: int, output_size: int):
        super().__init__(src, dst)
        self.output_size = output_size

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        x = regs[self.src]
        h, w = x.shape[2], x.shape[3]
        if h % self.output_size or w % self.output_size:
            raise ValueError("adaptive_avg_pool2d requires divisible spatial dims")
        kernel = h // self.output_size
        regs[self.dst] = kernels.avg_pool_step(x, kernel, kernel, scratch)


class FlattenOp(PlanOp):
    __slots__ = ()

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        x = regs[self.src]
        regs[self.dst] = x.reshape(x.shape[0], -1)


class LinearOp(PlanOp):
    __slots__ = ("module",)

    def __init__(self, src: int, dst: int, module: Linear):
        super().__init__(src, dst)
        self.module = module

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        m = self.module
        bias = None if m.bias is None else m.bias.data
        regs[self.dst] = kernels.linear_step(regs[self.src], m.weight.data, bias)


class ReLUOp(PlanOp):
    __slots__ = ()

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        regs[self.dst] = kernels.relu_step(regs[self.src], scratch)


class AddOp(PlanOp):
    __slots__ = ("src2",)

    def __init__(self, src: int, src2: int, dst: int):
        super().__init__(src, dst)
        self.src2 = src2

    @property
    def reads(self) -> Tuple[int, ...]:
        return (self.src, self.src2)

    def run(self, regs, scratch, state, stats: bool = True) -> None:
        regs[self.dst] = kernels.add_step(regs[self.src], regs[self.src2], scratch)


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #
class _Lowering:
    """Walks modules in forward order, emitting ops and allocating registers."""

    def __init__(self):
        self.ops: List[PlanOp] = []
        self.next_register = 1  # register 0 is the input frame
        self.num_lif = 0

    def new_register(self) -> int:
        register = self.next_register
        self.next_register += 1
        return register

    # ------------------------------------------------------------------ #
    def _lower_conv_norm(self, conv: Module, norm: Module, folded, src: int) -> int:
        """Lower a block's conv→norm pair, folded into one GEMM when the
        Tensor path folds it too (same gate, same shared cache)."""
        if folded is not None and folded.active:
            dst = self.new_register()
            self.ops.append(FoldedConvNormOp(src, dst, conv, folded))
            return dst
        src = self.lower(conv, src)
        return self.lower(norm, src)

    def lower(self, module: Module, src: int) -> int:
        """Emit ops for ``module`` reading register ``src``; return the output register."""
        if isinstance(module, Sequential):
            for child in module:
                src = self.lower(child, src)
            return src
        if isinstance(module, ConvSpikeBlock):
            src = self._lower_conv_norm(module.conv, module.norm, module.folded, src)
            return self.lower(module.lif, src)
        if isinstance(module, SpikingResidualBlock):
            block_in = src
            main = self._lower_conv_norm(module.conv1, module.norm1, module.folded1, block_in)
            main = self.lower(module.lif1, main)
            main = self._lower_conv_norm(module.conv2, module.norm2, module.folded2, main)
            shortcut = self._lower_conv_norm(
                module.shortcut_conv, module.shortcut_norm, module.folded_shortcut, block_in
            )
            summed = self.new_register()
            self.ops.append(AddOp(main, shortcut, summed))
            return self.lower(module.lif2, summed)
        if isinstance(module, Conv2d):
            dst = self.new_register()
            self.ops.append(ConvOp(src, dst, module))
            return dst
        if isinstance(module, TemporalBatchNorm2d):
            dst = self.new_register()
            self.ops.append(NormOp(src, dst, module, scale=module.alpha * module.v_threshold))
            return dst
        if isinstance(module, BatchNorm2d):
            dst = self.new_register()
            self.ops.append(NormOp(src, dst, module, scale=None))
            return dst
        if isinstance(module, LIFNeuron):
            dst = self.new_register()
            self.ops.append(LIFOp(src, dst, module, self.num_lif))
            self.num_lif += 1
            return dst
        if isinstance(module, AvgPool2d):
            dst = self.new_register()
            self.ops.append(AvgPoolOp(src, dst, module.kernel_size, module.stride))
            return dst
        if isinstance(module, MaxPool2d):
            dst = self.new_register()
            self.ops.append(MaxPoolOp(src, dst, module.kernel_size, module.stride))
            return dst
        if isinstance(module, AdaptiveAvgPool2d):
            dst = self.new_register()
            self.ops.append(AdaptiveAvgPoolOp(src, dst, module.output_size))
            return dst
        if isinstance(module, Flatten):
            dst = self.new_register()
            self.ops.append(FlattenOp(src, dst))
            return dst
        if isinstance(module, Linear):
            dst = self.new_register()
            self.ops.append(LinearOp(src, dst, module))
            return dst
        if isinstance(module, ReLU):
            dst = self.new_register()
            self.ops.append(ReLUOp(src, dst))
            return dst
        if isinstance(module, (Identity, Dropout)):
            # Dropout is the identity in eval mode; the plan is eval-only.
            return src
        raise UnsupportedModuleError(
            f"cannot lower {type(module).__name__} into the inference fast path"
        )


class StemCache:
    """Content-keyed memo of stem outputs for *time-varying* deterministic encoders.

    The aligned per-slot stem cache (``PlanExecutor(stem_cache=True)``) only
    works under direct encoding, where a sample's frame is constant across
    timesteps.  Event-stream encoders feed a *different* frame per timestep,
    but serve traffic replays the same DVS clips over and over — so the stem
    output for a given ``(sample, t)`` pair recurs across requests.  This
    cache memoizes it, keyed by the **exact bytes of the encoded frame row**
    (shape/dtype-prefixed by the serving engine): that key subsumes
    ``(sample, t)`` (the frame *is* ``clip[t]``), cannot collide the way a
    content hash could, and gets extra hits for free when short recordings
    pad by repeating their last frame.  Value-wise the cache inherits the
    serving layer's per-sample batch-width invariance contract (a stem row
    computed at one batch width must equal the same row at another width —
    the property compaction and mid-horizon splicing already rely on, and
    ``tests/equivalence`` enforces per platform); where that contract holds,
    caching is bit-invisible.

    Entries are pure functions of the plan's stem weights and the frame
    bytes, so they are valid across executors, serve slots, engine restarts
    and ``fail_active`` aborts; nothing ever needs row-surgery here.  The
    cache is therefore shared by every executor of a plan (it lives on the
    :class:`CompiledPlan`) and guarded by a lock for multi-worker serving.
    Dtype-mode flips invalidate it indirectly (:class:`PlanRegistry`
    consumers compile a fresh plan, which carries a fresh cache); *weight
    updates* invalidate it directly: executors revalidate the cache against
    :meth:`CompiledPlan.stem_signature` — the identity tuple of every source
    array the stem reads — before each keyed lookup round, and a changed
    signature flushes the entries (arrays are replaced, never mutated, by
    the optimizer / ``load_state_dict`` / ``update_buffer``, the same
    convention the folded-weight caches rely on).  Capacity is a bounded LRU
    so replayed working sets stay resident while one-off traffic cannot
    grow it without limit; the default can be tuned (or the memo disabled
    with ``0``) via the ``REPRO_STEM_CACHE_CAPACITY`` environment variable,
    read once at plan-compile time.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("StemCache capacity must be >= 1")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self._lock = named_lock("runtime.stem_cache")
        self._signature: Optional[Tuple] = None
        self._entries: "OrderedDict[bytes, Tuple[np.ndarray, ...]]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def validate(self, signature: Tuple) -> None:
        """Flush every entry unless ``signature`` matches the cached one.

        ``signature`` is an identity tuple of source arrays (see
        :meth:`CompiledPlan.stem_signature`); entries computed under replaced
        weights must never be served.
        """
        with self._lock:
            self._validate_locked(signature)

    def _matches_locked(self, signature: Tuple) -> bool:
        current = self._signature
        return (
            current is not None
            and len(signature) == len(current)
            and all(a is b for a, b in zip(signature, current))
        )

    def _validate_locked(self, signature: Tuple) -> None:
        if self._matches_locked(signature):
            return
        # Unconditional: entries stored before the first validation (the
        # signature-less store() API) have unknown weight provenance and
        # must not survive signature adoption either.
        self._entries.clear()
        self._signature = signature

    def lookup(self, key: bytes) -> Optional[Tuple[np.ndarray, ...]]:
        """The cached stem-register rows for ``key``, or ``None`` (counted)."""
        return self.lookup_many((key,))[0]

    def lookup_many(
        self, keys: Sequence[bytes], signature: Optional[Tuple] = None
    ) -> List[Optional[Tuple[np.ndarray, ...]]]:
        """Batched :meth:`lookup` under ONE lock acquisition (the serving hot
        loop calls this once per timestep, not once per row).  When
        ``signature`` is given, :meth:`validate` runs inside the same
        critical section first."""
        with self._lock:
            if signature is not None:
                self._validate_locked(signature)
            entries: List[Optional[Tuple[np.ndarray, ...]]] = []
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    self.misses += 1
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                entries.append(entry)
            return entries

    def store(self, key: bytes, rows: Tuple[np.ndarray, ...]) -> None:
        """Insert one sample's stem rows (one array per stem register)."""
        self.store_many(((key, rows),))

    def store_many(
        self,
        items: Sequence[Tuple[bytes, Tuple[np.ndarray, ...]]],
        signature: Optional[Tuple] = None,
    ) -> None:
        """Batched :meth:`store` under one lock acquisition.

        ``signature`` is the weight signature the rows were *computed* under
        (captured at lookup time).  If another thread flushed the cache to a
        new signature in between — an in-place weight reload landing between
        a worker's stem run and its store — the insert is silently dropped:
        rows from old weights must never outlive the flush.
        """
        with self._lock:
            if signature is not None and not self._matches_locked(signature):
                return
            for key, rows in items:
                self._entries[key] = rows
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


class CompiledPlan:
    """A lowered network: flat op list plus the stem-cache metadata.

    Attributes
    ----------
    ops:
        Ops in execution order (features first, classifier last).
    num_registers:
        Size of the virtual register file (register 0 is the input frame).
    output_register:
        Register holding the classifier logits after a full sweep.
    num_lif:
        Number of stateful LIF ops (size of the membrane state vector).
    stem_len:
        Number of leading *stateless* ops (everything before the first LIF).
    stem_registers:
        Registers written inside the stem and read beyond it — the exact set
        an executor must restore to skip the stem from cache.
    """

    def __init__(self, model: SpikingNetwork, ops: Sequence[PlanOp], num_registers: int,
                 output_register: int, num_lif: int):
        # Weak reference only: plans are cached per model in a
        # WeakKeyDictionary, and a strong reference here would pin the key
        # (and the whole parameter set) alive forever.
        self._model_ref = weakref.ref(model)
        self.ops = list(ops)
        self.num_registers = num_registers
        self.output_register = output_register
        self.num_lif = num_lif
        # Dtype-policy mode this plan was lowered under: folding decisions
        # and scalar constants are mode-dependent, so plan_for() recompiles
        # when REPRO_FLOAT64 changes between compilation and use.
        self.float64_mode = float64_enabled()
        self.stem_len = next(
            (i for i, op in enumerate(self.ops) if op.is_stateful), 0
        )
        written = {op.dst for op in self.ops[: self.stem_len]}
        read_later = {r for op in self.ops[self.stem_len :] for r in op.reads}
        self.stem_registers: Tuple[int, ...] = tuple(sorted(written & read_later))
        # Callers alias the returned logits across timesteps (running sums),
        # so the output must be freshly allocated each step.  Only LinearOp
        # allocates; every other op hands back reused scratch or a view of
        # it, and the executor must copy in that case.
        producer = next(
            (op for op in reversed(self.ops) if op.dst == output_register), None
        )
        self.output_needs_copy = not isinstance(producer, LinearOp)
        # Shared content-keyed stem memo for time-varying deterministic
        # encoders (event streams).  One cache per plan: every executor of a
        # shared plan reads and fills the same memo; a recompiled plan
        # (dtype-mode flip) starts from an empty one, and in-place weight
        # reloads flush it through the stem_signature check.  Capacity 0
        # (via REPRO_STEM_CACHE_CAPACITY) disables the memo entirely.
        capacity = _stem_cache_capacity()
        self.stem_cache: Optional[StemCache] = (
            StemCache(capacity) if self.stem_len > 0 and capacity > 0 else None
        )

    def stem_signature(self) -> Tuple:
        """Identity tuple of every source array the stem ops read.

        Parameters and buffers are *replaced*, never mutated (the repo-wide
        staleness convention), so ``is``-comparing this tuple detects weight
        updates exactly; :class:`StemCache` flushes on mismatch.
        """
        sources: List[object] = []
        for op in self.ops[: self.stem_len]:
            if isinstance(op, FoldedConvNormOp):
                sources.extend(op.folded._current_sources())
            elif isinstance(op, NormOp):
                module = op.module
                sources.extend(
                    (module.weight.data, module.bias.data,
                     module.running_mean, module.running_var)
                )
            elif isinstance(op, (ConvOp, LinearOp)):
                module = op.module
                sources.append(module.weight.data)
                if module.bias is not None:
                    sources.append(module.bias.data)
        return tuple(sources)

    @property
    def model(self) -> Optional[SpikingNetwork]:
        """The source model, or ``None`` once it has been garbage-collected."""
        return self._model_ref()

    def describe(self) -> str:
        """Human-readable op listing (debugging / tests)."""
        lines = [
            f"CompiledPlan(ops={len(self.ops)}, lif={self.num_lif}, "
            f"stem={self.stem_len}, out=r{self.output_register})"
        ]
        for index, op in enumerate(self.ops):
            marker = "*" if index < self.stem_len else " "
            lines.append(f" {marker} [{index:2d}] {op.describe()}")
        return "\n".join(lines)


def compile_network(model: SpikingNetwork) -> CompiledPlan:
    """Lower ``model.features`` + ``model.classifier`` into a :class:`CompiledPlan`.

    Raises :exc:`UnsupportedModuleError` when the model contains a module the
    fast path cannot express; callers should fall back to the Tensor oracle
    (``use_runtime=False`` / ``REPRO_RUNTIME=0``), which remains available
    everywhere and produces bitwise-identical results.  Raises
    :exc:`repro.analysis.planverify.PlanVerificationError` when lowering
    produced an IR that breaks an executor contract — that is a compiler
    bug, so it deliberately does *not* trigger the oracle fallback.

    Dtype guarantees: under the default weak-scalar float32 policy
    (docs/NUMERICS.md) every register, scratch buffer and membrane the plan
    touches is float32, and block-level conv→norm pairs are folded into
    single GEMMs exactly as the Tensor path folds them during frozen
    inference.  Under ``REPRO_FLOAT64=1`` the plan instead reproduces the
    seed's unfused ops and float64 scalar promotion, bit for bit.  The plan
    records the mode it was compiled under (:attr:`CompiledPlan.float64_mode`);
    :func:`repro.runtime.plan_for` recompiles on a mode mismatch.
    """
    lowering = _Lowering()
    features_out = lowering.lower(model.features, 0)
    output_register = lowering.lower(model.classifier, features_out)
    # Warm every op's lazily-derived constants (folded conv+norm arrays, BN
    # denominators) while the plan is still private to this thread: N shared-
    # plan workers would otherwise race the first-touch initialization of
    # FoldedConvNorm.arrays() / NormOp._denominator() at cold start.  After
    # warming, concurrent refreshes only happen if a source array object is
    # replaced mid-serve (unsupported while serving), and are idempotent
    # recomputes from the same sources anyway.
    for op in lowering.ops:
        if isinstance(op, FoldedConvNormOp):
            op.folded.arrays()
        elif isinstance(op, NormOp):
            op._denominator()
    plan = CompiledPlan(
        model=model,
        ops=lowering.ops,
        num_registers=lowering.next_register,
        output_register=output_register,
        num_lif=lowering.num_lif,
    )
    # Every compile goes through the plan-IR verifier (docs/ANALYSIS.md):
    # register SSA, shape/dtype propagation against the stored constants,
    # stem/liveness metadata, and the fold-mode invariants.  O(#ops), no
    # array math — per-compile cost, never per-step.  The import is deferred
    # because repro.analysis.planverify imports this module.
    from ..analysis.planverify import verify_plan

    return verify_plan(plan)


# --------------------------------------------------------------------------- #
# Shared-plan registry
# --------------------------------------------------------------------------- #
class PlanRegistry:
    """One compiled plan per model instance, shared by every consumer.

    Plans are immutable after lowering and hold only *references* to the
    model's parameters, so N engine replicas serving the same model need only
    one plan between them: the registry is the keying point that makes the
    sharing happen (vLLM-style read-only execution state across workers).
    Each replica still builds its own :class:`~repro.runtime.PlanExecutor` —
    membranes, scratch and the aligned stem rows are per-session state.

    Lookups are keyed on the model instance (weakly, so a dropped model frees
    its plan and parameters) and validated against the current
    ``REPRO_FLOAT64`` dtype-policy mode: folding decisions and scalar
    constants are mode-dependent, so a mode flip *invalidates* the cached
    plan and the next lookup recompiles.  Models that fail to lower are
    negatively cached until :meth:`invalidate`.  All operations take the
    registry lock — multi-worker servers race their first lookups.
    """

    _UNSUPPORTED = object()

    def __init__(self):
        self._lock = named_lock("runtime.plan_registry")
        self._plans: "weakref.WeakKeyDictionary[SpikingNetwork, object]" = (
            weakref.WeakKeyDictionary()
        )

    def get(self, model: SpikingNetwork) -> Optional[CompiledPlan]:
        """The shared plan for ``model`` (compiling on first use), or ``None``
        when the model cannot lower (use the Tensor oracle)."""
        with self._lock:
            cached = self._plans.get(model)
            if cached is self._UNSUPPORTED:
                return None
            if cached is not None and cached.float64_mode == float64_enabled():
                return cached
            try:
                plan = compile_network(model)
            except UnsupportedModuleError:
                self._plans[model] = self._UNSUPPORTED
                return None
            self._plans[model] = plan
            return plan

    def invalidate(self, model: SpikingNetwork) -> bool:
        """Drop the cached plan (or negative entry) for ``model``.

        Executors built on the old plan keep running it (they are mode- and
        plan-bound at construction); only *new* lookups recompile.  Returns
        whether an entry existed.
        """
        with self._lock:
            return self._plans.pop(model, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: Process-wide registry used by :func:`repro.runtime.plan_for`.
plan_registry = PlanRegistry()
