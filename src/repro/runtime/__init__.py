"""repro.runtime — graph-free fused inference fast path.

Inference does not need the define-by-run autograd machinery, but the seed
implementation paid for it on every timestep anyway: each op allocated a
:class:`~repro.autograd.Tensor`, recorded parents and a backward closure, and
every intermediate was a fresh allocation.  This package removes that
constant factor while keeping the results **bitwise identical**:

* :func:`~repro.runtime.plan.compile_network` lowers a trained
  :class:`~repro.snn.SpikingNetwork` into a flat register-based op list
  (conv / norm / fused-LIF / pool / linear / residual-add).
* :class:`~repro.runtime.executor.PlanExecutor` runs the list one timestep at
  a time with preallocated scratch buffers (resized only when the live batch
  width changes) and per-row state surgery mirroring the Tensor model.
* Under direct encoding, the stateless pre-spike prefix (conv1 + norm1 — the
  im2col patches *and* the GEMM they feed) is computed once per input and
  replayed across all timesteps and across serve-slot lifetimes.
* Plans are immutable and shared through the process-wide
  :data:`plan_registry` (one plan per model instance, N executors — e.g. N
  serving workers — each with private state), and time-varying deterministic
  encoders get a shared content-keyed stem memo
  (:class:`~repro.runtime.plan.StemCache`) that lets replayed event-stream
  clips skip the stem too.

The whole pipeline runs weak-scalar float32 (docs/NUMERICS.md): plans,
scratch buffers and membrane state never contain a float64 array unless the
``REPRO_FLOAT64=1`` legacy escape hatch is set, in which case the kernels
reproduce the seed's float64 scalar promotion bit for bit and conv/norm
folding is disabled.

The Tensor path stays available everywhere as the *reference oracle*: pass
``use_runtime=False`` (or set ``REPRO_RUNTIME=0``) to
:class:`~repro.core.DynamicTimestepInference`,
:class:`~repro.serve.InferenceEngine` / :class:`~repro.serve.Server`, or
:func:`~repro.training.collect_cumulative_logits`.  ``tests/equivalence``
asserts the two paths agree bitwise on predictions, exit timesteps and
accumulated logits across architectures, encoders and batch compositions.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..autograd.dtypes import scalar_operand
from ..snn.encoding import DirectEncoder
from ..snn.network import SpikingNetwork
from .arena import ArenaAttachment, ArenaSpec, PlanArena, attach_arena
from .executor import PlanExecutor
from .rings import (
    PoolRings,
    ReplicaRings,
    RingIntegrityError,
    RingSpec,
    attach_rings,
)
from .plan import (
    CompiledPlan,
    PlanRegistry,
    StemCache,
    UnsupportedModuleError,
    compile_network,
    plan_registry,
)

__all__ = [
    "ArenaAttachment",
    "ArenaSpec",
    "CompiledPlan",
    "PlanArena",
    "PlanExecutor",
    "PlanRegistry",
    "PoolRings",
    "ReplicaRings",
    "RingIntegrityError",
    "RingSpec",
    "StemCache",
    "UnsupportedModuleError",
    "attach_arena",
    "attach_rings",
    "compile_network",
    "runtime_enabled",
    "plan_for",
    "plan_registry",
    "executor_for",
    "run_cumulative_logits",
]


def runtime_enabled(override: Optional[bool] = None) -> bool:
    """Resolve a ``use_runtime`` flag: explicit argument wins, else the
    ``REPRO_RUNTIME`` environment variable (default: enabled)."""
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_RUNTIME", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def plan_for(model: SpikingNetwork) -> Optional[CompiledPlan]:
    """The shared compiled plan for ``model`` (compiling on first use).

    Returns ``None`` when the model contains modules the fast path cannot
    lower — the caller should silently use the Tensor oracle.

    Plans live in the process-wide :data:`plan_registry`, so N engines /
    workers serving the same model instance share one plan (each with its
    own :class:`PlanExecutor` state).  A cached plan is reused only when it
    was compiled under the current ``REPRO_FLOAT64`` dtype-policy mode;
    flipping the mode (legacy float64 promotion vs weak-scalar float32 +
    conv/norm folding) invalidates it and recompiles.
    """
    return plan_registry.get(model)


def executor_for(
    model: SpikingNetwork,
    use_runtime: Optional[bool] = None,
    collect_statistics: bool = True,
) -> Optional[PlanExecutor]:
    """A fresh executor for ``model``, or ``None`` to use the Tensor path.

    The *aligned* stem cache engages only under :class:`DirectEncoder` — the
    one encoder whose frame is constant across timesteps for a given sample.
    Other deterministic encoders that replay cacheable frames (event
    streams; ``encoder.frame_cacheable``) get the plan's shared content-
    keyed stem memo instead: callers that pass per-row ``stem_keys`` to
    :meth:`PlanExecutor.step` recover the stem skip for replayed clips, and
    callers that don't (e.g. single-pass batch inference) pay nothing.
    """
    if not runtime_enabled(use_runtime):
        return None
    plan = plan_for(model)
    if plan is None:
        return None
    encoder = model.encoder
    deterministic = getattr(encoder, "deterministic", False)
    if isinstance(encoder, DirectEncoder) and deterministic:
        return PlanExecutor(plan, stem_cache=True,
                            collect_statistics=collect_statistics)
    memo = (
        plan.stem_cache
        if deterministic and getattr(encoder, "frame_cacheable", False)
        else None
    )
    return PlanExecutor(plan, collect_statistics=collect_statistics,
                        stem_memo=memo)


def run_cumulative_logits(
    model: SpikingNetwork,
    executor: PlanExecutor,
    inputs: np.ndarray,
    timesteps: int,
) -> np.ndarray:
    """Fast-path equivalent of ``model.forward(x, T).cumulative_numpy()``.

    Runs the compiled plan over the horizon and accumulates the running-mean
    logits with the exact float operations of
    :func:`~repro.snn.network.cumulative_mean_logits` (sum, then multiply by
    the reciprocal at the policy scalar dtype), so the returned ``(T, N, K)``
    array is bitwise identical to the Tensor path's.
    """
    executor.reset_state()
    inputs = np.asarray(inputs, dtype=np.float32)
    running: Optional[np.ndarray] = None
    levels = []
    for t in range(timesteps):
        frame = model.encoder(inputs, t).data
        logits = executor.step(frame)
        running = logits if running is None else running + logits
        # The reciprocal adopts the logits dtype exactly like as_tensor does
        # on the Tensor path (float64 under the legacy escape hatch).
        levels.append(running * scalar_operand(1.0 / (t + 1), running.dtype))
    return np.stack(levels, axis=0)
