"""Fixed-slot shared-memory rings for replica dispatch (zero-copy IPC).

The replica pool's original transport pickled every input frame through a
``multiprocessing`` queue and every completion back through a pipe.  Both
copies are pure overhead: the frame is already a contiguous ``float32``
array, and a completion is ten scalars.  This module replaces the payload
path with preallocated shared memory, leaving the existing pipes/queues to
carry only *cursors* and control messages:

* **Request slab** (parent writer, replica reader) — ``slots`` fixed-width
  slots per replica, each a 64-byte header (sequence, byte count, CRC32)
  followed by ``slot_bytes`` of payload capacity.  The forwarder copies the
  frame into a free slot exactly once at dispatch and ships a *ticket*
  (slot index, sequence, CRC, shape, dtype) over the work queue; the
  replica validates the header against the ticket and binds a read-only
  ``np.ndarray`` view — zero copies on the consume side.
* **Completion ring** (replica writer, parent reader) — fixed-width
  96-byte records (:data:`COMPLETION_RECORD`), each sequence- and
  CRC-guarded.  The replica appends finished rounds and sends only the
  ``(start, count)`` cursor range over its result pipe; the pipe write is
  the cross-process memory barrier, so the ring itself needs no shared
  cursors or atomics.

Safety model: slots are parent-owned.  A request slot is allocated before
dispatch and freed only after its completion (or failure) resolves, and the
window semaphore bounds in-flight work per replica — so ``slots >= window``
guarantees the writer never reuses a slot a replica may still read, and
``completion_slots > window`` guarantees the replica never overwrites an
unread record.  Sequence numbers make reuse *detectable* anyway: a stale
ticket (or a torn/corrupted record) fails validation loudly with
:class:`RingIntegrityError` instead of serving wrong bytes.

Everything is preallocated at pool construction (one segment for the whole
fleet); steady-state dispatch performs no allocation in shared memory.
Oversized payloads simply don't get a ticket — callers fall back to the
legacy inline-pickle path, which also remains available wholesale as the
``transport="pipe"`` knob (the benchmark baseline).
"""

from __future__ import annotations

import os
import secrets
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.lockorder import named_lock

__all__ = [
    "COMPLETION_RECORD",
    "CompletionReader",
    "PoolRings",
    "ReplicaRings",
    "RequestRingWriter",
    "RingIntegrityError",
    "RingSpec",
    "RingTicket",
    "attach_rings",
]

_ALIGNMENT = 64
DEFAULT_SLOT_BYTES = 1 << 18  # 256 KiB of payload capacity per request slot.

# Request-slot header: exactly one cache line ahead of the payload.
_SLOT_HEADER = np.dtype([
    ("seq", "<u8"),
    ("nbytes", "<u8"),
    ("crc", "<u4"),
    ("_pad", "V44"),
])
assert _SLOT_HEADER.itemsize == _ALIGNMENT

# One completed request, fixed width.  Optional fields collapse onto
# sentinels (``-1`` for absent epoch/horizon) plus presence bits in
# ``flags`` so ``None`` survives the round trip exactly.  The CRC is the
# last field and covers every byte before it.
COMPLETION_RECORD = np.dtype([
    ("seq", "<u8"),
    ("request_id", "<i8"),
    ("prediction", "<i8"),
    ("exit_timestep", "<i8"),
    ("epoch", "<i8"),
    ("horizon", "<i8"),
    ("score", "<f8"),
    ("threshold", "<f8"),
    ("start_time", "<f8"),
    ("finish_time", "<f8"),
    ("flags", "<u2"),
    ("_pad", "V10"),
    ("crc", "<u4"),
])
assert COMPLETION_RECORD.itemsize == 96

_FLAG_BROWNOUT = 1 << 0
_FLAG_HAS_THRESHOLD = 1 << 1
_FLAG_HAS_EPOCH = 1 << 2
_FLAG_HAS_HORIZON = 1 << 3

# A ticket travels over the work queue in place of the payload:
# (slot, seq, crc, nbytes, shape, dtype string).
RingTicket = Tuple[int, int, int, int, Tuple[int, ...], str]


class RingIntegrityError(RuntimeError):
    """A ring record failed sequence or CRC validation.

    Raised replica-side when a ticket no longer matches its slot header
    (stale reuse) or the payload bytes fail CRC, and parent-side when a
    completion record is torn or corrupted.  Both are protocol violations,
    never expected in normal operation — the caller surfaces them as a
    rejected request rather than serving wrong bytes.
    """


def _crc(view) -> int:
    return zlib.crc32(view) & 0xFFFFFFFF


# Payload CRCs cover a bounded span — the first and last ``_CRC_SPAN``
# bytes — not the whole frame: crc32 runs at ~1 GB/s, so a full-payload
# checksum on both ends would cost more than the pickle copies the ring
# exists to remove.  The *sequence* number is the guard against the only
# systematic hazard (stale slot reuse); the bounded CRC adds torn-write
# detection at both ends of the payload at O(1) cost in the frame size.
_CRC_SPAN = 4096


def _payload_crc(payload, nbytes: int) -> int:
    if nbytes <= 2 * _CRC_SPAN:
        return zlib.crc32(payload[:nbytes]) & 0xFFFFFFFF
    crc = zlib.crc32(payload[:_CRC_SPAN])
    return zlib.crc32(payload[nbytes - _CRC_SPAN:nbytes], crc) & 0xFFFFFFFF


def _align(value: int) -> int:
    return (value + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


@dataclass(frozen=True)
class RingSpec:
    """Picklable layout of one fleet's ring segment.

    One shared-memory segment holds, for each replica, a request slab
    (``slots`` x (header + ``slot_bytes``)) and a completion ring
    (``completion_slots`` x :data:`COMPLETION_RECORD`).  Offsets are
    precomputed parent-side so both ends bind views without negotiation.
    """

    name: str
    size: int
    num_replicas: int
    slots: int
    slot_bytes: int
    completion_slots: int
    request_offsets: Tuple[int, ...]
    completion_offsets: Tuple[int, ...]
    owner_pid: int = 0

    @classmethod
    def layout(
        cls,
        num_replicas: int,
        *,
        slots: int,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        completion_slots: Optional[int] = None,
    ) -> "RingSpec":
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        slot_bytes = _align(int(slot_bytes))
        if completion_slots is None:
            # The window bound keeps written-unread <= slots; the margin is
            # pure paranoia against off-by-one at the boundary.
            completion_slots = slots + 2
        slot_stride = _ALIGNMENT + slot_bytes
        request_bytes = _align(slots * slot_stride)
        completion_bytes = _align(completion_slots * COMPLETION_RECORD.itemsize)
        request_offsets: List[int] = []
        completion_offsets: List[int] = []
        offset = 0
        for _ in range(num_replicas):
            request_offsets.append(offset)
            offset += request_bytes
            completion_offsets.append(offset)
            offset += completion_bytes
        name = f"repro-rings-{os.getpid()}-{secrets.token_hex(4)}"
        return cls(
            name=name,
            size=offset,
            num_replicas=num_replicas,
            slots=slots,
            slot_bytes=slot_bytes,
            completion_slots=int(completion_slots),
            request_offsets=tuple(request_offsets),
            completion_offsets=tuple(completion_offsets),
            owner_pid=os.getpid(),
        )


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #
class RequestRingWriter:
    """Parent-side writer over one replica's request slab.

    Single logical producer (the replica's forwarder thread), but slot
    *release* happens from collector and monitor threads, so the free list
    is lock-protected.  ``try_write`` either copies the frame into a free
    slot and returns a ticket, or returns ``None`` (no free slot, or the
    payload exceeds slot capacity) — the caller then falls back to the
    inline pipe payload.
    """

    def __init__(self, spec: RingSpec, buffer: memoryview, index: int):
        self.spec = spec
        base = spec.request_offsets[index]
        stride = _ALIGNMENT + spec.slot_bytes
        self._headers = [
            np.ndarray((1,), dtype=_SLOT_HEADER, buffer=buffer,
                       offset=base + slot * stride)
            for slot in range(spec.slots)
        ]
        self._payloads = [
            buffer[base + slot * stride + _ALIGNMENT:
                   base + slot * stride + _ALIGNMENT + spec.slot_bytes]
            for slot in range(spec.slots)
        ]
        self._lock = named_lock(f"runtime.rings.writer{index}")
        self._free: List[int] = list(range(spec.slots))
        self._seq = 0

    def close(self) -> None:
        """Drop the buffer views so the owner's mapping can close."""
        self._headers = []
        self._payloads = []

    def try_write(self, array: np.ndarray) -> Optional[RingTicket]:
        data = np.ascontiguousarray(array)
        nbytes = data.nbytes
        if nbytes > self.spec.slot_bytes:
            return None
        with self._lock:
            if not self._free:
                return None
            slot = self._free.pop()
            self._seq += 1
            seq = self._seq
        payload = self._payloads[slot]
        dest = np.ndarray(data.shape, dtype=data.dtype, buffer=payload)
        dest[...] = data
        crc = _payload_crc(payload, nbytes)
        self._headers[slot][0] = (seq, nbytes, crc, b"")
        return (slot, seq, crc, nbytes, data.shape, data.dtype.str)

    def release(self, slot: int) -> None:
        """Return a slot to the free list once its request resolved."""
        with self._lock:
            if slot in self._free:
                raise RuntimeError(f"request slot {slot} double-released")
            self._free.append(slot)

    def free_slots(self) -> int:
        with self._lock:
            return len(self._free)


class CompletionReader:
    """Parent-side reader over one replica's completion ring.

    The replica sends ``(start, count)`` cursor ranges over its result pipe;
    :meth:`read` validates each record's sequence continuity and CRC and
    decodes it back into the 10-tuple wire form the resolver already speaks.
    """

    def __init__(self, spec: RingSpec, buffer: memoryview, index: int):
        self.spec = spec
        self._records = np.ndarray(
            (spec.completion_slots,), dtype=COMPLETION_RECORD, buffer=buffer,
            offset=spec.completion_offsets[index],
        )

    def close(self) -> None:
        """Drop the buffer view so the owner's mapping can close."""
        self._records = None

    def read(self, start: int, count: int) -> List[tuple]:
        completions = []
        for position in range(start, start + count):
            record = self._records[position % self.spec.completion_slots].copy()
            expected = _crc(record.tobytes()[:-4])
            # One .item() call decodes the whole record to Python scalars —
            # an order of magnitude cheaper than 13 structured-field reads.
            (seq, request_id, prediction, exit_timestep, epoch, horizon,
             score, threshold, start_time, finish_time, flags, _pad,
             crc) = record.item()
            if seq != position or crc != expected:
                raise RingIntegrityError(
                    f"completion record at cursor {position} failed "
                    f"validation (seq={seq}, crc mismatch={crc != expected})"
                )
            completions.append((
                request_id,
                prediction,
                exit_timestep,
                score,
                threshold if flags & _FLAG_HAS_THRESHOLD else None,
                start_time,
                finish_time,
                epoch if flags & _FLAG_HAS_EPOCH else None,
                bool(flags & _FLAG_BROWNOUT),
                horizon if flags & _FLAG_HAS_HORIZON else None,
            ))
        return completions


class PoolRings:
    """Owner of the fleet's ring segment (parent process only).

    Created once at pool construction, destroyed at drain/abort.  Like the
    plan arena, a ``weakref.finalize`` parachute unlinks the segment if the
    pool is garbage-collected without a drain, and the multiprocessing
    resource tracker covers a crashed parent.
    """

    def __init__(self, spec: RingSpec, segment: shared_memory.SharedMemory):
        self.spec = spec
        self._segment = segment
        self._destroyed = False
        self._writers: List[RequestRingWriter] = []
        self._readers: List[CompletionReader] = []
        self._finalizer = weakref.finalize(self, _release_segment, segment)

    @classmethod
    def create(
        cls,
        num_replicas: int,
        *,
        slots: int,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        completion_slots: Optional[int] = None,
    ) -> "PoolRings":
        spec = RingSpec.layout(
            num_replicas, slots=slots, slot_bytes=slot_bytes,
            completion_slots=completion_slots,
        )
        segment = shared_memory.SharedMemory(
            name=spec.name, create=True, size=spec.size,
        )
        # Zero the headers so a never-written slot can never pass a seq
        # check (ticket sequences start at 1).  /dev/shm pages are
        # zero-filled on first touch anyway; this documents the reliance.
        return cls(spec, segment)

    def writer(self, index: int) -> RequestRingWriter:
        writer = RequestRingWriter(self.spec, self._segment.buf, index)
        self._writers.append(writer)
        return writer

    def reader(self, index: int) -> CompletionReader:
        reader = CompletionReader(self.spec, self._segment.buf, index)
        self._readers.append(reader)
        return reader

    @property
    def destroyed(self) -> bool:
        return self._destroyed

    def destroy(self) -> None:
        """Unlink the segment.  Idempotent; callers must have stopped every
        writer/reader (the pool destroys rings only after replicas exit)."""
        if self._destroyed:
            return
        self._destroyed = True
        # Drop every view handed out through writer()/reader() first, so
        # the mapping's exported-pointer count reaches zero and close()
        # actually releases the memory now instead of at interpreter GC.
        for writer in self._writers:
            writer.close()
        for reader in self._readers:
            reader.close()
        self._writers = []
        self._readers = []
        self._finalizer.detach()
        _release_segment(self._segment, unlink=True)


def _release_segment(segment: shared_memory.SharedMemory, unlink: bool = True) -> None:
    # Unlink FIRST: it only needs the name, and it is the part that keeps
    # /dev/shm clean.  close() may legitimately fail with BufferError while
    # writer/reader numpy views are still alive (their mapping dies with
    # the objects; the name must not outlive the pool either way).
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
    try:
        segment.close()
    except (OSError, BufferError):
        pass


# --------------------------------------------------------------------- #
# Replica side
# --------------------------------------------------------------------- #
class ReplicaRings:
    """One replica's view of the segment: request reader, completion writer.

    The replica is the *single* writer of its completion ring, so the local
    ``_cursor`` needs no synchronization — the cursor range shipped over the
    result pipe tells the parent exactly which records to read, and the pipe
    write orders the shared-memory stores before the parent's loads.
    """

    def __init__(self, spec: RingSpec, index: int):
        self.spec = spec
        self.index = index
        self._segment = shared_memory.SharedMemory(name=spec.name)
        buffer = self._segment.buf
        base = spec.request_offsets[index]
        stride = _ALIGNMENT + spec.slot_bytes
        self._headers = [
            np.ndarray((1,), dtype=_SLOT_HEADER, buffer=buffer,
                       offset=base + slot * stride)
            for slot in range(spec.slots)
        ]
        self._payloads = [
            buffer[base + slot * stride + _ALIGNMENT:
                   base + slot * stride + _ALIGNMENT + spec.slot_bytes]
            for slot in range(spec.slots)
        ]
        self._records = np.ndarray(
            (spec.completion_slots,), dtype=COMPLETION_RECORD, buffer=buffer,
            offset=spec.completion_offsets[index],
        )
        self._cursor = 0
        self._scratch = np.zeros((1,), dtype=COMPLETION_RECORD)

    # -- request side -------------------------------------------------- #
    def request_view(self, ticket: RingTicket) -> np.ndarray:
        """Bind a zero-copy read-only view of a dispatched frame.

        Validates the slot header against the ticket (a mismatched sequence
        means the parent reused the slot — a protocol violation the window
        invariant is supposed to prevent) and the payload CRC before
        trusting a single byte.
        """
        slot, seq, crc, nbytes, shape, dtype_str = ticket
        header_seq, header_nbytes, header_crc, _pad = self._headers[slot][0].item()
        if header_seq != seq:
            raise RingIntegrityError(
                f"request slot {slot} sequence mismatch: ticket {seq}, "
                f"header {header_seq} (stale slot reuse)"
            )
        if header_nbytes != nbytes or header_crc != crc:
            raise RingIntegrityError(
                f"request slot {slot} header does not match ticket"
            )
        payload = self._payloads[slot]
        if _payload_crc(payload, nbytes) != crc:
            raise RingIntegrityError(
                f"request slot {slot} payload failed CRC validation"
            )
        view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=payload)
        view.flags.writeable = False
        return view

    # -- completion side ----------------------------------------------- #
    def write_completions(
        self, completions: Sequence[tuple],
    ) -> Optional[Tuple[int, int]]:
        """Append fixed-width records; return the ``(start, count)`` cursor
        range to ship over the pipe, or ``None`` if the batch cannot fit in
        one ring revolution (caller falls back to the inline pipe payload).
        """
        count = len(completions)
        if count == 0 or count > self.spec.completion_slots:
            return None
        start = self._cursor
        scratch = self._scratch
        for offset, completion in enumerate(completions):
            (request_id, prediction, exit_timestep, score, threshold,
             start_time, finish_time, epoch, brownout, horizon) = completion
            flags = 0
            if brownout:
                flags |= _FLAG_BROWNOUT
            if threshold is not None:
                flags |= _FLAG_HAS_THRESHOLD
            if epoch is not None:
                flags |= _FLAG_HAS_EPOCH
            if horizon is not None:
                flags |= _FLAG_HAS_HORIZON
            # Single tuple assignment: one structured store instead of 12.
            scratch[0] = (
                start + offset, request_id, prediction, exit_timestep,
                -1 if epoch is None else epoch,
                -1 if horizon is None else horizon,
                score, 0.0 if threshold is None else threshold,
                start_time, finish_time, flags, b"", 0,
            )
            scratch["crc"] = _crc(scratch.tobytes()[:-4])
            self._records[(start + offset) % self.spec.completion_slots] = scratch[0]
        self._cursor = start + count
        return (start, count)

    def close(self) -> None:
        # Drop our own views first so the mapping can actually close; any
        # request_view() arrays still held by the engine keep it pinned.
        self._headers = []
        self._payloads = []
        self._records = None
        try:
            self._segment.close()
        except (OSError, BufferError):
            # Engine views may still be alive; the OS reclaims the mapping
            # at process exit.
            pass


def attach_rings(spec: RingSpec, index: int) -> ReplicaRings:
    """Attach one replica's ring views inside a spawned worker process."""
    return ReplicaRings(spec, index)
