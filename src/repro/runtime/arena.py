"""Shared-memory arena holding a model's plan constants for process replicas.

Thread workers (``Server(num_workers=N)``) share one :class:`CompiledPlan`
for free because they share the parent's address space — but they also share
its GIL: the GEMMs release it, the op-dispatch loop does not, so thread
scaling saturates one core's worth of Python.  Process replicas remove the
GIL from the picture, and this module removes the memory and serialization
cost that would otherwise come with them: every constant array a replica's
plan reads — parameters, norm running stats, the *folded* conv+norm GEMM
weights — is exported **once** into a single ``multiprocessing.shared_memory``
segment, and each replica attaches zero-copy numpy views over that segment.
N replicas hold one copy of the weights between them.

The pieces:

* :meth:`PlanArena.export` (parent) — walk the model's constant arrays in a
  canonical order, copy them into one fresh segment behind a small header,
  and remember the identity of every source array.
* :meth:`PlanArena.skeleton` (parent) — pickle the model *structure* with
  every exported array replaced by a persistent-id token, so the bytes a
  replica receives carry layer metadata only, never weights.
* :func:`attach_arena` / :class:`ArenaAttachment` (child) — open the
  segment, rebuild the model from the skeleton with read-only views spliced
  in where the arrays were, and compile a private plan/executor over them.
* :meth:`PlanArena.refresh` (parent) + :meth:`ArenaAttachment.reattach`
  (child) — in-place weight reload propagation.  The repo-wide staleness
  convention is that arrays are *replaced, never mutated* (folded caches,
  ``NormOp``, :meth:`CompiledPlan.stem_signature` all key on array object
  identity), and a shared segment cannot replace objects across a process
  boundary.  The segment holds TWO full constant generations: ``refresh``
  copies the new values into the *inactive* generation, flips the
  active-generation header word, and bumps the version counter — a
  transactional reload.  A replica that observes the bump rebinds **fresh
  view objects** over the newly-flipped (complete) generation, which flips
  every identity in one stroke — the folded caches recompute their sources,
  ``stem_signature`` changes, and the shared stem memo flushes itself
  through the executor's existing signature gate — and can never bind
  memory a copy is still streaming into.

Lifecycle: the parent owns the segment and holds one reference per attached
replica (:meth:`acquire` at spawn, :meth:`release` when the replica exits).
:meth:`destroy` — called at server drain — unlinks the ``/dev/shm`` entry as
soon as the last reference drops, so a drained server leaves no segment
behind; unlinking while a straggler still maps the memory is safe on POSIX
(the name disappears, the pages live until the last map closes).
"""

from __future__ import annotations

import io
import os
import pickle
import secrets
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from multiprocessing import shared_memory

from ..analysis.lockorder import named_lock
from ..nn.module import Module
from ..snn.folding import FoldedConvNorm
from ..snn.network import SpikingNetwork

__all__ = ["ArenaSpec", "PlanArena", "ArenaAttachment", "attach_arena"]

# One cache line of header: entry 0 is the weight-generation version bumped
# by PlanArena.refresh(); entry 1 is the index (0/1) of the ACTIVE constant
# generation — the segment holds two full copies of the constants and
# refresh() writes the inactive one, then flips this word.  The rest is
# reserved.
_HEADER_BYTES = 64
_ALIGNMENT = 64
# Block attributes holding FoldedConvNorm caches (see runtime.plan._Lowering).
_FOLDED_ATTRS = ("folded", "folded1", "folded2", "folded_shortcut")


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Unlink + close one segment, tolerating the benign failure modes
    (already unlinked by the owner; views still alive at interpreter GC)."""
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double unlink race
        pass
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a leaked external view
        pass


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of an exported arena (ships to replicas)."""

    name: str
    size: int
    #: one (byte offset, shape, dtype string) triple per constant slot, in
    #: the canonical _constant_slots order of the exported model.  Offsets
    #: address generation 0; generation 1 lives ``generation_stride`` bytes
    #: further.
    entries: Tuple[Tuple[int, Tuple[int, ...], str], ...]
    #: pid of the exporting process — the only resource-tracker owner.
    owner_pid: int = 0
    #: byte distance between the two constant generations (0 = legacy
    #: single-generation layout: both generation indices alias the same
    #: offsets).
    generation_stride: int = 0


# --------------------------------------------------------------------------- #
# Canonical constant walk
# --------------------------------------------------------------------------- #
def _constant_slots(model: Module) -> List[Tuple[str, object, str]]:
    """Every location in ``model`` that holds a plan constant array.

    Returns ``(kind, owner, key)`` triples in a deterministic order (the
    module tree is OrderedDict-backed), *without* materializing any array —
    the same walk drives export, refresh and replica-side reattach, which is
    what keeps the three views of the arena aligned slot for slot.
    """
    slots: List[Tuple[str, object, str]] = []
    for name, parameter in model.named_parameters():
        slots.append(("param", parameter, name))
    for module_name, module in model.named_modules():
        for buffer_name in module._buffers:
            slots.append(("buffer", module, buffer_name))
    for module_name, module in model.named_modules():
        for attr in _FOLDED_ATTRS:
            folded = getattr(module, attr, None)
            if isinstance(folded, FoldedConvNorm) and folded.active:
                # Folded arrays are derived constants, but they are the
                # arrays the serving hot path actually reads (both the
                # Tensor path and FoldedConvNormOp); exporting them spares
                # every replica a private recomputed copy of each folded
                # conv weight.
                slots.append(("folded_weight", folded, attr))
                slots.append(("folded_bias", folded, attr))
    return slots


def _slot_array(kind: str, owner: object, key: str) -> np.ndarray:
    """The current array behind one constant slot (materializing folds)."""
    if kind == "param":
        return owner.data
    if kind == "buffer":
        return owner._buffers[key]
    weight, bias = owner.arrays()
    return weight if kind == "folded_weight" else bias


def _assign_slot(kind: str, owner: object, key: str, view: np.ndarray) -> None:
    """Rebind one constant slot to ``view`` (replica-side attach/reattach)."""
    if kind == "param":
        owner.data = view
    elif kind == "buffer":
        # Mirror register_buffer without the dtype coercion: the exported
        # array already went through the policy on the parent side, and a
        # copy here would break the zero-copy sharing.
        owner._buffers[key] = view
        object.__setattr__(owner, key, view)
    elif kind == "folded_weight":
        owner._weight = view
    else:
        owner._bias = view


# --------------------------------------------------------------------------- #
# Skeleton pickling
# --------------------------------------------------------------------------- #
class _SkeletonPickler(pickle.Pickler):
    """Pickles a model with every arena-resident array tokenized away.

    Arrays in ``drop_ids`` (gradient buffers) become ``None`` in the
    replica instead of traveling by value — replicas never train, and this
    keeps a mid-training-session export from shipping (or requiring the
    caller to clear) a full extra copy of the weights.
    """

    _DROP = "drop"

    def __init__(self, file, index_by_id: Dict[int, int], drop_ids):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._index_by_id = index_by_id
        self._drop_ids = drop_ids

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray):
            if id(obj) in self._drop_ids:
                return self._DROP
            return self._index_by_id.get(id(obj))
        return None


class _SkeletonUnpickler(pickle.Unpickler):
    def __init__(self, file, resolve: Callable[[int], np.ndarray]):
        super().__init__(file)
        self._resolve = resolve

    def persistent_load(self, token):
        if token == _SkeletonPickler._DROP:
            return None
        return self._resolve(token)


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class PlanArena:
    """Parent-side owner of one exported constant segment.

    Construction is via :meth:`export`.  The arena remembers the *identity*
    of every source array it copied (the same convention as
    :meth:`CompiledPlan.stem_signature`), so :meth:`refresh` can detect an
    in-place weight reload — ``load_state_dict`` replaces array objects —
    and propagate exactly the slots that changed.
    """

    _sequence = 0
    _sequence_lock = named_lock("runtime.arena.sequence")

    def __init__(self, shm: shared_memory.SharedMemory, spec: ArenaSpec,
                 model: SpikingNetwork, slots, sources: List[np.ndarray]):
        self._shm = shm
        # GC parachute: an arena that is exported but never drained (a
        # Server constructed and discarded without start()) must not leak
        # its segment for the parent's lifetime.  The finalizer holds only
        # the SharedMemory handle, never self.
        self._finalizer = weakref.finalize(self, _release_segment, shm)
        self.spec = spec
        self._model_ref = weakref.ref(model)
        self._slots = slots
        # Per-generation source identities: _sources[g][i] is the model
        # array whose values generation g currently holds for slot i.  Both
        # generations start in sync at export.
        self._sources = [list(sources), list(sources)]
        self._lock = named_lock("runtime.arena")
        self._refs = 0
        self._destroy_pending = False
        self._unlinked = False
        self._header: Optional[np.ndarray] = np.ndarray(
            (_HEADER_BYTES // 8,), dtype=np.uint64, buffer=shm.buf
        )
        self._views: Optional[List[List[np.ndarray]]] = [
            [
                np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=shm.buf,
                    offset=offset + generation * spec.generation_stride,
                )
                for offset, shape, dtype in spec.entries
            ]
            for generation in (0, 1)
        ]
        self._skeleton: Optional[bytes] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def export(cls, model: SpikingNetwork) -> "PlanArena":
        """Copy every plan constant of ``model`` into a fresh shared segment.

        The model should be in eval mode with state reset (the serving
        precondition); gradient buffers are never exported — the skeleton
        drops them in transit, so replicas rebuild with ``grad=None`` while
        the caller's model keeps its own.  Folded conv+norm arrays are
        materialized (and thereby warmed) as part of the walk.
        """
        slots = _constant_slots(model)
        arrays: List[np.ndarray] = []
        entries: List[Tuple[int, Tuple[int, ...], str]] = []
        offset = _HEADER_BYTES
        index_check: Dict[int, int] = {}
        for kind, owner, key in slots:
            # Track the model's REAL array object (identity is what the
            # skeleton tokens and refresh() key on); the strided view
            # assignment below copies values correctly even if a source is
            # non-contiguous.
            array = _slot_array(kind, owner, key)
            if id(array) in index_check:
                raise ValueError(
                    "arena export found one array in two constant slots; "
                    "aliased parameters/buffers are not supported"
                )
            index_check[id(array)] = len(arrays)
            offset = _align(offset)
            entries.append((offset, tuple(array.shape), array.dtype.str))
            arrays.append(array)
            offset += array.nbytes
        with cls._sequence_lock:
            cls._sequence += 1
            sequence = cls._sequence
        name = f"repro-arena-{os.getpid()}-{sequence}-{secrets.token_hex(3)}"
        # Two full constant generations: refresh() writes the inactive one
        # and flips header[1], so replicas only ever bind a COMPLETE
        # generation — never memory a copy is still streaming into.
        stride = _align(offset - _HEADER_BYTES)
        size = max(_HEADER_BYTES + 2 * stride, _HEADER_BYTES + 1)
        shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        spec = ArenaSpec(name=shm.name.lstrip("/"), size=shm.size,
                         entries=tuple(entries), owner_pid=os.getpid(),
                         generation_stride=stride)
        arena = cls(shm, spec, model, slots, arrays)
        for views in arena._views:
            for view, array in zip(views, arrays):
                view[...] = array
        arena._header[0] = 1
        arena._header[1] = 0
        return arena

    # ------------------------------------------------------------------ #
    @property
    def model(self) -> Optional[SpikingNetwork]:
        return self._model_ref()

    @property
    def version(self) -> int:
        """Current weight generation (bumped by every :meth:`refresh`)."""
        header = self._header
        if header is None:
            raise RuntimeError("arena has been destroyed")
        return int(header[0])

    def skeleton(self) -> bytes:
        """The model structure with arena tokens in place of the arrays.

        Computed once and cached: the token indices stay valid across
        :meth:`refresh` (replicas read values from the segment, not from the
        pickle), so later-spawned replicas reuse the same bytes.
        """
        if self._skeleton is None:
            model = self.model
            if model is None:
                raise RuntimeError("the exported model has been garbage-collected")
            sources = self._sources[self.active_generation]
            index_by_id = {id(array): i for i, array in enumerate(sources)}
            drop_ids = {
                id(parameter.grad)
                for parameter in model.parameters()
                if parameter.grad is not None
            }
            buffer = io.BytesIO()
            _SkeletonPickler(buffer, index_by_id, drop_ids).dump(model)
            self._skeleton = buffer.getvalue()
        return self._skeleton

    @property
    def active_generation(self) -> int:
        """Index (0/1) of the constant generation replicas currently bind."""
        header = self._header
        if header is None:
            raise RuntimeError("arena has been destroyed")
        return int(header[1])

    def refresh(self) -> int:
        """Propagate replaced source arrays into the *inactive* generation.

        Re-walks the model's constant slots; if any slot's array object
        changed identity vs. the active generation (``load_state_dict`` /
        ``update_buffer`` / a fresh fold), the inactive generation is synced
        to the model's current values, the active-generation word flips, and
        the header version bumps once so attached replicas rebind.  Returns
        the number of slots that changed vs. what replicas were serving.

        The flip makes the reload transactional: replicas keep reading the
        old generation until they observe the version bump at a round
        boundary, then rebind views over the NEW generation — a complete
        copy by construction, never memory mid-write.  Callers that issue
        back-to-back refreshes must wait for replicas to rebind before the
        next call reuses the generation a straggler may still read
        (:meth:`repro.serve.replica.ReplicaPool.refresh_weights` does).
        """
        model = self.model
        if model is None:
            raise RuntimeError("the exported model has been garbage-collected")
        with self._lock:
            if self._views is None:
                raise RuntimeError("arena has been destroyed")
            active = int(self._header[1])
            target = 1 - active
            changed = sum(
                1 for index, (kind, owner, key) in enumerate(self._slots)
                if _slot_array(kind, owner, key) is not self._sources[active][index]
            )
            if changed == 0:
                return 0
            # The target generation may lag by MORE slots than just changed
            # (it missed the previous flip), so sync every slot that differs
            # from the target's own sources.  Validate the whole walk BEFORE
            # copying anything: a mid-walk mismatch must not leave a
            # half-updated generation that a later refresh could flip live.
            updates: List[Tuple[int, np.ndarray]] = []
            for index, (kind, owner, key) in enumerate(self._slots):
                array = _slot_array(kind, owner, key)
                if array is self._sources[target][index]:
                    continue
                view = self._views[target][index]
                if array.shape != view.shape or array.dtype != view.dtype:
                    raise ValueError(
                        f"arena refresh: slot {index} ({kind} {key!r}) changed "
                        f"shape/dtype {view.shape}/{view.dtype} -> "
                        f"{array.shape}/{array.dtype}; re-export instead"
                    )
                updates.append((index, array))
            for index, array in updates:
                self._views[target][index][...] = array
                self._sources[target][index] = array
            self._header[1] = target
            self._header[0] += 1
            return changed

    # ------------------------------------------------------------------ #
    # Refcounted lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self) -> None:
        """Take one reference (one per spawned replica)."""
        with self._lock:
            if self._unlinked:
                raise RuntimeError("arena has been destroyed")
            self._refs += 1

    def release(self) -> None:
        """Drop one reference; unlinks if destroy() already ran."""
        with self._lock:
            self._refs = max(0, self._refs - 1)
            if self._refs == 0 and self._destroy_pending:
                self._unlink_locked()

    def destroy(self) -> None:
        """Unlink the segment as soon as the last reference is released.

        Called at server drain; idempotent.  With all replicas joined the
        refcount is already zero and the ``/dev/shm`` entry disappears here.
        """
        with self._lock:
            self._destroy_pending = True
            if self._refs == 0:
                self._unlink_locked()

    def _unlink_locked(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        # Drop our own views before closing: numpy arrays hold buffer
        # exports that would make mmap.close() raise.
        self._views = None
        self._header = None
        self._finalizer.detach()
        _release_segment(self._shm)

    @property
    def destroyed(self) -> bool:
        with self._lock:
            return self._unlinked


# --------------------------------------------------------------------------- #
# Replica side
# --------------------------------------------------------------------------- #
def _attach(spec: ArenaSpec) -> shared_memory.SharedMemory:
    """Attach to an existing arena segment.

    Replicas are spawned by the exporting process, so every member of the
    family talks to the *same* ``multiprocessing.resource_tracker`` process
    (its fd travels in the spawn preparation data).  The attach-side
    ``register`` the stdlib performs is therefore a set no-op against the
    creator's registration, and nobody may ``unregister`` here: that would
    cancel the creator's entry and make the eventual unlink trip the
    tracker.  The one registration is also the crash parachute — if the
    whole family dies without draining, the tracker unlinks the segment at
    family exit instead of leaking ``/dev/shm``.
    """
    return shared_memory.SharedMemory(name=spec.name)


class ArenaAttachment:
    """Replica-side handle: the rebuilt model plus the rebind machinery."""

    def __init__(self, spec: ArenaSpec, skeleton: bytes):
        self.spec = spec
        self._skeleton = skeleton
        self._shm = _attach(spec)
        self._header = np.ndarray(
            (_HEADER_BYTES // 8,), dtype=np.uint64, buffer=self._shm.buf
        )
        self.model: Optional[SpikingNetwork] = None
        self._slots = None
        self._version_seen = 0

    # ------------------------------------------------------------------ #
    def _view(self, index: int, generation: int) -> np.ndarray:
        """A fresh read-only view over entry ``index`` of ``generation``
        (fresh object = fresh identity, which is exactly what reattach
        relies on)."""
        offset, shape, dtype = self.spec.entries[index]
        offset += generation * self.spec.generation_stride
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf,
                          offset=offset)
        view.flags.writeable = False
        return view

    def load_model(self) -> SpikingNetwork:
        """Rebuild the model with arena views in place of every constant.

        The skeleton's persistent tokens resolve through a per-load memo, so
        an array referenced from several places (a parameter and a folded
        cache's source tuple) resolves to *one* view object and every
        identity-keyed cache in the rebuilt model starts out coherent.
        """
        # Version before generation: if a flip lands between the two reads
        # we bind the NEW (complete) generation under the old version and
        # the next stale() poll triggers a harmless extra rebind.
        self._version_seen = int(self._header[0])
        generation = int(self._header[1])
        memo: Dict[int, np.ndarray] = {}

        def resolve(index: int) -> np.ndarray:
            if index not in memo:
                memo[index] = self._view(index, generation)
            return memo[index]

        model = _SkeletonUnpickler(io.BytesIO(self._skeleton), resolve).load()
        self.model = model
        self._slots = _constant_slots(model)
        if len(self._slots) != len(self.spec.entries):
            raise RuntimeError(
                f"arena attach: model walk found {len(self._slots)} constant "
                f"slots but the spec exports {len(self.spec.entries)} — "
                "parent and replica disagree on the model structure"
            )
        return model

    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        return int(self._header[0])

    @property
    def generation(self) -> int:
        """The active-generation word (0/1) as the parent last flipped it."""
        return int(self._header[1])

    def stale(self) -> bool:
        """True when the parent refreshed the arena since our last (re)bind."""
        return self.version != self._version_seen

    def reattach(self) -> None:
        """Rebind fresh view objects after a parent-side :meth:`refresh`.

        The refresh wrote the *other* generation and flipped the header, so
        rebinding serves two purposes at once: the fresh views point at the
        newly-flipped (complete) generation, and the new object identities
        invalidate ``NormOp``'s cached denominator and change
        :meth:`CompiledPlan.stem_signature`, so the shared stem memo and the
        executor's aligned stem rows computed under the old weights can
        never be served again.
        """
        if self.model is None:
            raise RuntimeError("load_model() before reattach()")
        # Read the version before the generation (mirroring load_model): a
        # refresh landing mid-rebind leaves us stale and the next poll
        # rebinds again.
        self._version_seen = self.version
        generation = self.generation
        folded: List[FoldedConvNorm] = []
        for index, (kind, owner, key) in enumerate(self._slots):
            _assign_slot(kind, owner, key, self._view(index, generation))
            if kind == "folded_weight":
                folded.append(owner)
        # Seed the folded caches *after* all sources were rebound, so their
        # remembered source identities match the new views and arrays()
        # serves the arena copies instead of recomputing private ones.
        for fold in folded:
            fold._sources = fold._current_sources()

    def close(self) -> None:
        """Release the mapping (the model's views die with the process)."""
        self._header = None
        try:
            self._shm.close()
        except BufferError:
            # Model views still alive — the OS reclaims the mapping at
            # process exit; never let cleanup mask a real error path.
            pass


def attach_arena(spec: ArenaSpec, skeleton: bytes) -> ArenaAttachment:
    """Open an exported arena and rebuild its model (replica entry point)."""
    attachment = ArenaAttachment(spec, skeleton)
    attachment.load_model()
    return attachment
