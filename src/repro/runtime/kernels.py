"""Fused, graph-free NumPy kernels for the inference fast path.

Every kernel in this module is a *bitwise-faithful* re-implementation of the
forward half of one autograd operator (see :mod:`repro.autograd.functional`
and :class:`repro.snn.neurons.LIFNeuron`): it performs the exact same NumPy
operations, on the same shapes, in the same order — it only skips the graph
bookkeeping (Tensor allocation, parent tuples, backward closures) and reuses
scratch buffers across timesteps.  That is what makes the compiled-plan
executor provably equivalent to the define-by-run path: the floating-point
work is *identical*, not merely close.

Dtype discipline
----------------
The stack is weak-scalar float32 (:mod:`repro.autograd.dtypes`,
docs/NUMERICS.md): scalars that the Tensor path routes through
``as_tensor`` adopt the dtype of the array they combine with, so every
buffer here is float32 under the default policy.  The kernels materialize
their scalar constants through the same
:func:`~repro.autograd.dtypes.scalar_operand` helper, which keeps them
bitwise-faithful in *either* mode — under ``REPRO_FLOAT64=1`` the helper
reproduces the seed's float64 0-d scalars and the buffers promote exactly
like the legacy Tensor path did.  The ``np.result_type`` plumbing is kept
for that reason: it collapses to float32 everywhere by default and tracks
the legacy promotion chain under the escape hatch.

Buffer discipline
-----------------
Kernels receive a per-op ``scratch`` dict owned by the executor.  Buffers are
keyed by name and reallocated only when the requested shape (or dtype)
changes — i.e. when the live batch width changes; passing ``scratch=None``
runs the kernel in allocate-everything mode, which is used for one-off side
computations such as the stem rows of a freshly admitted serve request.

In-place NumPy ufuncs (``np.add(a, b, out=buf)``) produce results bitwise
identical to their allocating forms (``a + b``) as long as ``buf`` has the
promoted result dtype, so buffer reuse never perturbs the equivalence
contract.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd.dtypes import scalar_operand
from ..autograd.ops import conv_output_size

__all__ = [
    "ensure_buffer",
    "im2col_cached",
    "conv2d_step",
    "batchnorm_step",
    "lif_step",
    "avg_pool_step",
    "max_pool_step",
    "linear_step",
    "relu_step",
    "add_step",
]

Scratch = Optional[Dict[str, np.ndarray]]


def ensure_buffer(scratch: Scratch, key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Fetch a reusable scratch array, reallocating only on shape/dtype change."""
    if scratch is None:
        return np.empty(shape, dtype=dtype)
    buffer = scratch.get(key)
    if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
        buffer = np.empty(shape, dtype=dtype)
        scratch[key] = buffer
    return buffer


def _padded_view(images: np.ndarray, padding: int, scratch: Scratch) -> np.ndarray:
    """Zero-padded copy of ``images`` with a reused border buffer.

    ``np.pad`` (the Tensor path) builds a fresh zero array each call; here the
    border is zeroed once at allocation and only the interior is rewritten, so
    the values are identical while the allocation amortizes to nothing.
    """
    n, c, h, w = images.shape
    shape = (n, c, h + 2 * padding, w + 2 * padding)
    if scratch is None:
        padded = np.zeros(shape, dtype=images.dtype)
    else:
        padded = scratch.get("pad")
        if padded is None or padded.shape != shape or padded.dtype != images.dtype:
            padded = np.zeros(shape, dtype=images.dtype)
            scratch["pad"] = padded
    padded[:, :, padding : padding + h, padding : padding + w] = images
    return padded


def im2col_cached(
    images: np.ndarray, kernel: int, stride: int, padding: int, scratch: Scratch
) -> Tuple[np.ndarray, int, int]:
    """Patch unrolling with reused column/pad buffers.

    Value-identical to :func:`repro.autograd.ops.im2col` (same strided window
    view, same transpose order); the contiguous copy lands in a reused buffer
    instead of a fresh ``ascontiguousarray`` allocation.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        images = _padded_view(images, padding, scratch)
    cols = ensure_buffer(scratch, "cols", (n, out_h * out_w, c * kernel * kernel), images.dtype)
    cols_view = cols.reshape(n, out_h, out_w, c, kernel, kernel)
    # One strided copy per kernel tap instead of a single 6-D gather: the
    # values land in exactly the im2col layout, but each copy is a simple 4-D
    # slice NumPy moves far faster than the tiny-inner-loop window view.
    for i in range(kernel):
        for j in range(kernel):
            tap = images[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride]
            cols_view[:, :, :, :, i, j] = tap.transpose(0, 2, 3, 1)
    return cols, out_h, out_w


def conv2d_step(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    kernel: int,
    stride: int,
    padding: int,
    scratch: Scratch,
) -> np.ndarray:
    """Forward of ``functional.conv2d``: im2col + batched GEMM, buffers reused.

    The GEMM keeps the Tensor path's exact ``(N, P, CKK) @ (CKK, O)`` shape —
    a stack of per-sample matrix products — so every sample's result is
    independent of batch composition (the property the serving layer's slot
    splicing and the stem cache both rely on).  The result is cast to the
    input dtype, mirroring the Tensor path's trailing ``astype``.
    """
    n = x.shape[0]
    out_channels = weight.shape[0]
    cols, out_h, out_w = im2col_cached(x, kernel, stride, padding, scratch)
    flat_weight = weight.reshape(out_channels, -1)
    gemm_dtype = np.result_type(cols.dtype, flat_weight.dtype)
    gemm = ensure_buffer(scratch, "gemm", (n, out_h * out_w, out_channels), gemm_dtype)
    np.matmul(cols, flat_weight.T, out=gemm)
    if bias is not None:
        np.add(gemm, bias.reshape(1, 1, -1), out=gemm)
    out = ensure_buffer(scratch, "out", (n, out_channels, out_h, out_w), x.dtype)
    np.copyto(out.reshape(n, out_channels, out_h * out_w), gemm.transpose(0, 2, 1))
    return out


def batchnorm_step(
    x: np.ndarray,
    mean: np.ndarray,
    std: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    scale: Optional[np.ndarray],
    scratch: Scratch,
) -> np.ndarray:
    """Eval-mode (temporal) batch norm as one fused elementwise chain.

    Mirrors the Tensor op order *and dtype promotion* exactly — subtract in
    the input dtype, divide by the ``sqrt(var + eps)`` denominator, scale by
    gamma, (tdBN threshold scale,) add beta.  Regrouping the constants here
    would change float rounding relative to the unfused Tensor modules, so
    this kernel stays op-faithful.  Under the default policy it runs only
    for norm layers standing *outside* a conv→norm block pair (those fold
    into the conv GEMM via :mod:`repro.snn.folding` on both paths); under
    ``REPRO_FLOAT64=1`` folding is disabled and block norms run through
    this kernel too, reproducing the legacy promotion chain.
    """
    sub = ensure_buffer(scratch, "sub", x.shape, np.result_type(x.dtype, mean.dtype))
    np.subtract(x, mean, out=sub)
    out = ensure_buffer(scratch, "out", x.shape, np.result_type(sub.dtype, std.dtype))
    np.divide(sub, std, out=out)
    np.multiply(out, gamma, out=out)
    if scale is not None:
        np.multiply(out, scale, out=out)
    np.add(out, beta, out=out)
    return out


def lif_step(
    current: np.ndarray,
    membrane: Optional[np.ndarray],
    tau: float,
    v_threshold: float,
    reset: str,
    scratch: Scratch,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """One LIF timestep fused into a single kernel: charge, fire, reset.

    Replicates :meth:`LIFNeuron.forward` op for op — ``u = m*tau + I``, hard
    reset ``u * (1 - s)`` or soft reset ``u - s*V_th`` — and returns
    ``(spikes, new_membrane, spike_count)``.  A ``membrane`` of ``None`` (or
    of a stale shape) is a fresh state, matching the layer's semantics.  The
    scalars ``tau`` and ``V_th`` are materialized with
    :func:`~repro.autograd.dtypes.scalar_operand`, exactly the dtype
    ``as_tensor`` gives them on the Tensor path (float32 under the default
    policy, float64 under ``REPRO_FLOAT64=1``).
    """
    if membrane is not None and membrane.shape != current.shape:
        membrane = None
    if membrane is None:
        u = current
    else:
        tau_scalar = scalar_operand(tau, membrane.dtype)
        u = ensure_buffer(
            scratch, "u", current.shape,
            np.result_type(membrane.dtype, tau_scalar.dtype, current.dtype),
        )
        np.multiply(membrane, tau_scalar, out=u)
        np.add(u, current, out=u)

    fired = ensure_buffer(scratch, "fired", u.shape, np.bool_)
    np.greater(u, v_threshold, out=fired)
    spikes = ensure_buffer(scratch, "spikes", u.shape, u.dtype)
    np.copyto(spikes, fired)

    if reset == "hard":
        # membrane * (ones_like(spikes) - spikes): stays in the spike dtype,
        # then promotes against u.
        tmp = ensure_buffer(scratch, "tmp", u.shape, spikes.dtype)
        np.subtract(1.0, spikes, out=tmp)  # dtype-ok: NEP-50 weak scalar: 1.0 adopts the spikes dtype, same as the Tensor path's ones_like
    else:
        # membrane - spikes * V_th: the scalar adopts the spike dtype (or
        # promotes to float64 under the legacy escape hatch).
        v_th_scalar = scalar_operand(v_threshold, spikes.dtype)
        tmp = ensure_buffer(
            scratch, "tmp", u.shape, np.result_type(spikes.dtype, v_th_scalar.dtype)
        )
        np.multiply(spikes, v_th_scalar, out=tmp)
    new_membrane = ensure_buffer(
        scratch, "membrane", u.shape, np.result_type(u.dtype, tmp.dtype)
    )
    if reset == "hard":
        np.multiply(u, tmp, out=new_membrane)
    else:
        np.subtract(u, tmp, out=new_membrane)
    spike_count = float(spikes.sum())
    return spikes, new_membrane, spike_count


def _pool_taps(x: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int):
    """The ``kernel**2`` strided slices of ``x``, in im2col column order."""
    for i in range(kernel):
        for j in range(kernel):
            yield x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride]


def avg_pool_step(x: np.ndarray, kernel: int, stride: int, scratch: Scratch) -> np.ndarray:
    """Forward of ``functional.avg_pool2d`` with reused buffers.

    For small windows (``kernel**2 <= 8``, i.e. the ubiquitous 2x2 pool) the
    window mean is accumulated directly from strided slices: NumPy's pairwise
    summation degenerates to a plain sequential loop for reductions of at
    most eight elements, so adding the taps in im2col column order produces
    the exact same float grouping as ``cols.mean(axis=3)`` — without
    materializing the patch matrix at all.  Larger windows (the ResNet global
    pool) keep the faithful im2col + ``mean`` path.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    if kernel * kernel <= 8:
        acc = ensure_buffer(scratch, "acc", (n, c, out_h, out_w), x.dtype)
        first = True
        for tap in _pool_taps(x, kernel, stride, out_h, out_w):
            if first:
                np.copyto(acc, tap)
                first = False
            else:
                np.add(acc, tap, out=acc)
        np.divide(acc, kernel * kernel, out=acc)
        return acc
    cols, out_h, out_w = im2col_cached(x, kernel, stride, 0, scratch)
    cols4 = cols.reshape(n, out_h * out_w, c, kernel * kernel)
    pooled = ensure_buffer(scratch, "pooled", (n, out_h * out_w, c), x.dtype)
    cols4.mean(axis=3, out=pooled)
    out = ensure_buffer(scratch, "out", (n, c, out_h, out_w), x.dtype)
    np.copyto(out.reshape(n, c, out_h * out_w), pooled.transpose(0, 2, 1))
    return out


def max_pool_step(x: np.ndarray, kernel: int, stride: int, scratch: Scratch) -> np.ndarray:
    """Forward of ``functional.max_pool2d`` (values only; no argmax needed).

    ``max`` is an order-invariant reduction, so the strided-slice form is
    exact for every window size.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    acc = ensure_buffer(scratch, "acc", (n, c, out_h, out_w), x.dtype)
    first = True
    for tap in _pool_taps(x, kernel, stride, out_h, out_w):
        if first:
            np.copyto(acc, tap)
            first = False
        else:
            np.maximum(acc, tap, out=acc)
    return acc


def linear_step(x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]) -> np.ndarray:
    """Forward of ``functional.linear``.

    Deliberately allocates a fresh output: the classifier logits outlive the
    timestep (running sums, cumulative means), so handing callers a reused
    buffer would force defensive copies at every call site.
    """
    out = np.matmul(x, weight.T)
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def relu_step(x: np.ndarray, scratch: Scratch) -> np.ndarray:
    """Forward of ``Tensor.relu`` (``x * (x > 0)``)."""
    mask = ensure_buffer(scratch, "mask", x.shape, np.bool_)
    np.greater(x, 0, out=mask)
    out = ensure_buffer(scratch, "out", x.shape, x.dtype)
    np.multiply(x, mask, out=out)
    return out


def add_step(a: np.ndarray, b: np.ndarray, scratch: Scratch) -> np.ndarray:
    """Residual sum (``Tensor.__add__`` forward)."""
    out = ensure_buffer(scratch, "out", a.shape, np.result_type(a.dtype, b.dtype))
    np.add(a, b, out=out)
    return out
