"""Stateful executor for a :class:`~repro.runtime.plan.CompiledPlan`.

One executor is one *inference session*: it owns the per-LIF membrane state,
the stem cache, and every op's scratch buffers.  The state-surgery API
(``compact_rows`` / ``extend_rows`` / ``reset_rows``) mirrors
:class:`~repro.snn.SpikingNetwork` row for row, so the serving engine and the
dynamic-timestep loop drive the fast path exactly the way they drove the
Tensor model — the membrane rows of the plan and the slots of the batcher
stay in lockstep.

Scratch buffers are preallocated per op and reused across timesteps, across
requests and across the whole serve session; they are reallocated only when
the live batch width changes (early exits compact the batch, admissions grow
it).  Because every kernel is bitwise-faithful to its autograd counterpart
(see :mod:`repro.runtime.kernels`), an executor's logits are *identical* to
the define-by-run path's logits, not merely close — which is what the
equivalence test harness asserts.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from .plan import CompiledPlan, StemCache

__all__ = ["PlanExecutor"]


def _trace_ops_enabled() -> bool:
    """``REPRO_TRACE_OPS=1`` turns on per-op wall-clock timing.

    Read at executor construction (like ``REPRO_RUNTIME``/``REPRO_FLOAT64``):
    the hot loop then branches on a bound attribute, so the default-off cost
    is one attribute check per step, not an environment lookup per op.
    """
    return os.environ.get("REPRO_TRACE_OPS", "").strip() in {"1", "true", "yes"}


class PlanExecutor:
    """Runs a compiled plan one timestep at a time with persistent state.

    Parameters
    ----------
    plan:
        The lowered network.  Plans are immutable and may be *shared*: N
        executors (e.g. multi-worker serve replicas of one model) can run
        the same plan concurrently, because everything mutable — membranes,
        scratch, registers, the aligned stem rows, the statistics toggle —
        lives on the executor.
    stem_cache:
        Enable the *aligned* cache of the stateless pre-spike prefix: one
        stem row per live batch row, replayed every timestep.  Only valid
        when the per-timestep input frame is constant for each sample
        (direct encoding); the caller is responsible for that guarantee.
    collect_statistics:
        Update each source LIF layer's spike counters exactly like the
        Tensor path does (the IMC energy model reads them).  Disable when
        several executors share one model's LIF modules across threads —
        the counters are plain Python floats and would race.
    stem_memo:
        Optional content-keyed :class:`~repro.runtime.plan.StemCache` for
        time-varying deterministic encoders (event streams): callers pass
        per-row frame keys to :meth:`step` and recurring frames (replayed
        DVS clips) skip the stem.  Mutually exclusive with ``stem_cache``.

    Dtype guarantees
    ----------------
    Under the default weak-scalar float32 policy (docs/NUMERICS.md) every
    array an executor owns — registers, scratch buffers, membranes, stem
    rows, returned logits — is float32 (boolean fire/relu masks aside), and
    the results are bitwise-identical to the define-by-run Tensor oracle
    (``use_runtime=False`` / ``REPRO_RUNTIME=0``), which remains available
    everywhere as the reference.  Under ``REPRO_FLOAT64=1`` the same
    bitwise contract holds against the legacy float64-promoting Tensor
    path.  Executors are mode-bound at construction: flip the flag, then
    build a fresh executor (``plan_for`` recompiles automatically).
    """

    def __init__(self, plan: CompiledPlan, stem_cache: bool = False,
                 collect_statistics: bool = True,
                 stem_memo: Optional[StemCache] = None):
        self.plan = plan
        self.stem_enabled = bool(stem_cache) and plan.stem_len > 0
        self.collect_statistics = bool(collect_statistics)
        if self.stem_enabled and stem_memo is not None:
            raise ValueError(
                "stem_cache (aligned, direct encoding) and stem_memo (keyed, "
                "event streams) are mutually exclusive stem strategies"
            )
        self._memo = stem_memo if plan.stem_len > 0 else None
        self._membranes: List[Optional[np.ndarray]] = [None] * plan.num_lif
        self._stem: Optional[Dict[int, np.ndarray]] = None
        self._registers: List[Optional[np.ndarray]] = [None] * plan.num_registers
        self._scratch: List[Dict[str, np.ndarray]] = [dict() for _ in plan.ops]
        self.trace_ops = _trace_ops_enabled()
        self._op_seconds = [0.0] * len(plan.ops)
        self._op_calls = [0] * len(plan.ops)

    # ------------------------------------------------------------------ #
    @property
    def memo_enabled(self) -> bool:
        """True when a content-keyed stem memo is attached (event streams)."""
        return self._memo is not None

    @property
    def stem_memo(self) -> Optional[StemCache]:
        return self._memo

    # ------------------------------------------------------------------ #
    # State management (mirrors SpikingNetwork's per-row surgery)
    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        """Fresh membranes and an empty aligned stem (between sample streams).

        The content-keyed stem memo is deliberately *not* cleared: its
        entries are pure functions of the plan's frozen weights and the
        frame bytes, so they stay valid across sessions, aborted replicas
        and server restarts — clearing it would only forfeit replay hits.
        """
        self._membranes = [None] * self.plan.num_lif
        self._stem = None

    def invalidate_stem(self) -> None:
        """Drop the aligned stem rows without touching membrane state.

        Called after an in-place weight reload lands on a live executor (a
        replica rebinding arena views): the cached rows were computed under
        the old weights and must be recomputed at the next step, while the
        in-flight membrane trajectories continue.  The content-keyed memo
        needs no call here — it revalidates against the plan's
        ``stem_signature`` on every lookup round.
        """
        self._stem = None

    def compact_rows(self, keep: np.ndarray) -> None:
        """Drop the state rows of samples that left the batch (early exit)."""
        self._membranes = [
            None if membrane is None else membrane[keep] for membrane in self._membranes
        ]
        if self._stem is not None:
            self._stem = {reg: value[keep] for reg, value in self._stem.items()}

    def extend_rows(self, count: int, frames: Optional[np.ndarray] = None) -> None:
        """Append ``count`` fresh rows (newly admitted samples).

        Membrane rows start at zero via the ``None == fresh`` identity (a
        ``None`` membrane only materializes on the first integration, exactly
        like :meth:`LIFNeuron.extend_state_rows`).  When the stem cache is
        active, ``frames`` must hold the new samples' encoder frames so their
        stem rows can be computed once and appended; omitting it invalidates
        the cache, which is safe but forfeits the reuse until the next full
        stem run.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._membranes = [
            None
            if membrane is None
            else np.concatenate(
                [membrane, np.zeros((count,) + membrane.shape[1:], dtype=membrane.dtype)],
                axis=0,
            )
            for membrane in self._membranes
        ]
        if self._stem is None:
            return
        if frames is None or frames.shape[0] != count:
            self._stem = None
            return
        fresh = self._run_stem(frames, scratch=None)
        self._stem = {
            reg: np.concatenate([value, fresh[reg]], axis=0)
            for reg, value in self._stem.items()
        }

    def reset_rows(self, rows: np.ndarray) -> None:
        """Zero the membranes of specific batch rows (recycled slots)."""
        for membrane in self._membranes:
            if membrane is not None:
                membrane[rows] = 0.0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _run_stem(self, frame: np.ndarray, scratch) -> Dict[int, np.ndarray]:
        """Run the stateless prefix on ``frame``; return the live registers.

        ``scratch=None`` allocates fresh arrays (used for admission-time stem
        rows, so the main batch's reusable buffers are not disturbed).
        """
        plan = self.plan
        registers: List[Optional[np.ndarray]] = [None] * plan.num_registers
        registers[0] = frame
        if self.trace_ops:
            timer = time.perf_counter
            for index in range(plan.stem_len):
                began = timer()
                plan.ops[index].run(
                    registers,
                    self._scratch[index] if scratch is not None else None,
                    self._membranes, self.collect_statistics,
                )
                self._op_seconds[index] += timer() - began
                self._op_calls[index] += 1
        else:
            for index in range(plan.stem_len):
                op = plan.ops[index]
                op.run(registers,
                       self._scratch[index] if scratch is not None else None,
                       self._membranes, self.collect_statistics)
        return {reg: registers[reg] for reg in plan.stem_registers}

    def _memo_stem(self, frame: np.ndarray, keys: Sequence[bytes]) -> Dict[int, np.ndarray]:
        """Resolve the stem registers for ``frame`` through the keyed memo.

        Rows whose key is cached are restored without running the stem; the
        misses run through the stem in **one** batched pass and are inserted.
        All memo bookkeeping for the round happens under two lock
        acquisitions (one batched lookup incl. the weight-signature check,
        one batched store), not one per row — this sits on the per-timestep
        serving hot path under N worker threads.

        The cache leans on the same per-sample batch invariance contract as
        the rest of the serving layer: a stem computed at miss-subset width
        must equal one computed at full batch width, exactly like compaction
        (``PR 2``'s width-changing splices) already requires — and
        ``tests/equivalence`` enforces — for every post-stem op.  Key
        aliasing is the caller's contract: the serving engine interns
        128-bit clip digests plus the encoder's recorded-frame index
        (~2^-64 collision probability; see
        :meth:`repro.serve.InferenceEngine._intern_stem_key`), falling back
        to exact shape-prefixed frame bytes (alias-free by construction)
        for encoders without a frame-index rule.
        """
        plan = self.plan
        rows = frame.shape[0]
        if len(keys) != rows:
            raise ValueError(
                f"stem_keys length {len(keys)} does not match batch width {rows}"
            )
        # The signature check flushes the memo if any stem source array was
        # replaced since the entries were cached (in-place weight reload on
        # a live plan) — frame keys alone cannot see that.  The same
        # signature gates the stores below: rows computed under it are
        # dropped if another thread's reload flushes the cache in between.
        signature = plan.stem_signature()
        cached = self._memo.lookup_many(keys, signature=signature)
        miss_rows = [i for i, entry in enumerate(cached) if entry is None]
        if len(miss_rows) == rows:
            # Fully cold batch: run at full width and publish every row.
            fresh = self._run_stem(frame, scratch=None)
            self._memo.store_many([
                (key, tuple(fresh[reg][i].copy() for reg in plan.stem_registers))
                for i, key in enumerate(keys)
            ], signature=signature)
            return fresh
        fresh = (
            self._run_stem(frame[miss_rows], scratch=None) if miss_rows else None
        )
        if fresh is not None:
            self._memo.store_many([
                (keys[i], tuple(fresh[reg][j].copy() for reg in plan.stem_registers))
                for j, i in enumerate(miss_rows)
            ], signature=signature)
        assembled: Dict[int, np.ndarray] = {}
        for position, reg in enumerate(plan.stem_registers):
            template = (
                fresh[reg][0] if fresh is not None
                else next(entry for entry in cached if entry is not None)[position]
            )
            out = np.empty((rows,) + template.shape, dtype=template.dtype)
            if fresh is not None:
                out[miss_rows] = fresh[reg]
            for i, entry in enumerate(cached):
                if entry is not None:
                    out[i] = entry[position]
            assembled[reg] = out
        return assembled

    def step(self, frame: np.ndarray,
             stem_keys: Optional[Sequence[bytes]] = None) -> np.ndarray:
        """Advance one timestep; returns the classifier logits.

        ``stem_keys`` (one key of frame-row bytes per batch row) routes the
        stateless prefix through the content-keyed stem memo when one is
        attached — the event-stream counterpart of the aligned direct-
        encoding cache.  The returned array is freshly allocated each call
        (safe to alias across timesteps — callers build running sums from
        it).  Intermediate activations live in reused scratch buffers and
        are only valid until the next call.
        """
        plan = self.plan
        model = plan.model
        if model is not None and model.training:
            raise RuntimeError(
                "the compiled plan is inference-only; call model.eval() first "
                "(training-mode BatchNorm/Dropout need the autograd path)"
            )
        registers = self._registers
        registers[0] = frame
        start = 0
        if self.stem_enabled:
            stem = self._stem
            rows = frame.shape[0]
            if stem is not None and all(v.shape[0] == rows for v in stem.values()):
                for reg, value in stem.items():
                    registers[reg] = value
            else:
                self._stem = self._run_stem(frame, scratch=self._scratch)
                for reg, value in self._stem.items():
                    registers[reg] = value
            start = plan.stem_len
        elif self._memo is not None and stem_keys is not None:
            for reg, value in self._memo_stem(frame, stem_keys).items():
                registers[reg] = value
            start = plan.stem_len
        if self.trace_ops:
            timer = time.perf_counter
            seconds, calls = self._op_seconds, self._op_calls
            for index in range(start, len(plan.ops)):
                began = timer()
                plan.ops[index].run(registers, self._scratch[index],
                                    self._membranes, self.collect_statistics)
                seconds[index] += timer() - began
                calls[index] += 1
        else:
            for index in range(start, len(plan.ops)):
                plan.ops[index].run(registers, self._scratch[index],
                                    self._membranes, self.collect_statistics)
        output = registers[plan.output_register]
        # Uphold the freshness contract when the producing op hands back
        # reused scratch (anything but a Linear head): the next step() would
        # otherwise overwrite the caller's running sum in place.
        return output.copy() if plan.output_needs_copy else output

    # ------------------------------------------------------------------ #
    def op_timings(self) -> List[Dict[str, object]]:
        """Accumulated per-op wall-clock profile (``REPRO_TRACE_OPS=1``).

        One entry per plan op, in execution order: op index, the op's class
        name, call count and total seconds.  All zeros when tracing is off —
        callers can tell from :attr:`trace_ops`.  The profile accumulates
        over the executor's lifetime (the whole serve session), which is the
        useful granularity for a breakdown report; it is cheap to reset by
        building a fresh executor.
        """
        return [
            {
                "index": index,
                "op": type(op).__name__,
                "calls": self._op_calls[index],
                "seconds": self._op_seconds[index],
            }
            for index, op in enumerate(self.plan.ops)
        ]

    # ------------------------------------------------------------------ #
    @property
    def batch_rows(self) -> Optional[int]:
        """Current state width, or ``None`` when no state has materialized."""
        for membrane in self._membranes:
            if membrane is not None:
                return int(membrane.shape[0])
        if self._stem:
            return int(next(iter(self._stem.values())).shape[0])
        return None
