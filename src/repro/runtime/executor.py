"""Stateful executor for a :class:`~repro.runtime.plan.CompiledPlan`.

One executor is one *inference session*: it owns the per-LIF membrane state,
the stem cache, and every op's scratch buffers.  The state-surgery API
(``compact_rows`` / ``extend_rows`` / ``reset_rows``) mirrors
:class:`~repro.snn.SpikingNetwork` row for row, so the serving engine and the
dynamic-timestep loop drive the fast path exactly the way they drove the
Tensor model — the membrane rows of the plan and the slots of the batcher
stay in lockstep.

Scratch buffers are preallocated per op and reused across timesteps, across
requests and across the whole serve session; they are reallocated only when
the live batch width changes (early exits compact the batch, admissions grow
it).  Because every kernel is bitwise-faithful to its autograd counterpart
(see :mod:`repro.runtime.kernels`), an executor's logits are *identical* to
the define-by-run path's logits, not merely close — which is what the
equivalence test harness asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .plan import CompiledPlan

__all__ = ["PlanExecutor"]


class PlanExecutor:
    """Runs a compiled plan one timestep at a time with persistent state.

    Parameters
    ----------
    plan:
        The lowered network.
    stem_cache:
        Enable caching of the stateless pre-spike prefix.  Only valid when
        the per-timestep input frame is constant for each sample (direct
        encoding); the caller is responsible for that guarantee.
    collect_statistics:
        Update each source LIF layer's spike counters exactly like the
        Tensor path does (the IMC energy model reads them).

    Dtype guarantees
    ----------------
    Under the default weak-scalar float32 policy (docs/NUMERICS.md) every
    array an executor owns — registers, scratch buffers, membranes, stem
    rows, returned logits — is float32 (boolean fire/relu masks aside), and
    the results are bitwise-identical to the define-by-run Tensor oracle
    (``use_runtime=False`` / ``REPRO_RUNTIME=0``), which remains available
    everywhere as the reference.  Under ``REPRO_FLOAT64=1`` the same
    bitwise contract holds against the legacy float64-promoting Tensor
    path.  Executors are mode-bound at construction: flip the flag, then
    build a fresh executor (``plan_for`` recompiles automatically).
    """

    def __init__(self, plan: CompiledPlan, stem_cache: bool = False,
                 collect_statistics: bool = True):
        self.plan = plan
        self.stem_enabled = bool(stem_cache) and plan.stem_len > 0
        self._membranes: List[Optional[np.ndarray]] = [None] * plan.num_lif
        self._stem: Optional[Dict[int, np.ndarray]] = None
        self._registers: List[Optional[np.ndarray]] = [None] * plan.num_registers
        self._scratch: List[Dict[str, np.ndarray]] = [dict() for _ in plan.ops]
        for op in plan.ops:
            if hasattr(op, "collect_statistics"):
                op.collect_statistics = collect_statistics

    # ------------------------------------------------------------------ #
    # State management (mirrors SpikingNetwork's per-row surgery)
    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        """Fresh membranes and an empty stem cache (between sample streams)."""
        self._membranes = [None] * self.plan.num_lif
        self._stem = None

    def compact_rows(self, keep: np.ndarray) -> None:
        """Drop the state rows of samples that left the batch (early exit)."""
        self._membranes = [
            None if membrane is None else membrane[keep] for membrane in self._membranes
        ]
        if self._stem is not None:
            self._stem = {reg: value[keep] for reg, value in self._stem.items()}

    def extend_rows(self, count: int, frames: Optional[np.ndarray] = None) -> None:
        """Append ``count`` fresh rows (newly admitted samples).

        Membrane rows start at zero via the ``None == fresh`` identity (a
        ``None`` membrane only materializes on the first integration, exactly
        like :meth:`LIFNeuron.extend_state_rows`).  When the stem cache is
        active, ``frames`` must hold the new samples' encoder frames so their
        stem rows can be computed once and appended; omitting it invalidates
        the cache, which is safe but forfeits the reuse until the next full
        stem run.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._membranes = [
            None
            if membrane is None
            else np.concatenate(
                [membrane, np.zeros((count,) + membrane.shape[1:], dtype=membrane.dtype)],
                axis=0,
            )
            for membrane in self._membranes
        ]
        if self._stem is None:
            return
        if frames is None or frames.shape[0] != count:
            self._stem = None
            return
        fresh = self._run_stem(frames, scratch=None)
        self._stem = {
            reg: np.concatenate([value, fresh[reg]], axis=0)
            for reg, value in self._stem.items()
        }

    def reset_rows(self, rows: np.ndarray) -> None:
        """Zero the membranes of specific batch rows (recycled slots)."""
        for membrane in self._membranes:
            if membrane is not None:
                membrane[rows] = 0.0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _run_stem(self, frame: np.ndarray, scratch) -> Dict[int, np.ndarray]:
        """Run the stateless prefix on ``frame``; return the live registers.

        ``scratch=None`` allocates fresh arrays (used for admission-time stem
        rows, so the main batch's reusable buffers are not disturbed).
        """
        plan = self.plan
        registers: List[Optional[np.ndarray]] = [None] * plan.num_registers
        registers[0] = frame
        for index in range(plan.stem_len):
            op = plan.ops[index]
            op.run(registers, self._scratch[index] if scratch is not None else None,
                   self._membranes)
        return {reg: registers[reg] for reg in plan.stem_registers}

    def step(self, frame: np.ndarray) -> np.ndarray:
        """Advance one timestep; returns the classifier logits.

        The returned array is freshly allocated each call (safe to alias
        across timesteps — callers build running sums from it).  Intermediate
        activations live in reused scratch buffers and are only valid until
        the next call.
        """
        plan = self.plan
        model = plan.model
        if model is not None and model.training:
            raise RuntimeError(
                "the compiled plan is inference-only; call model.eval() first "
                "(training-mode BatchNorm/Dropout need the autograd path)"
            )
        registers = self._registers
        registers[0] = frame
        start = 0
        if self.stem_enabled:
            stem = self._stem
            rows = frame.shape[0]
            if stem is not None and all(v.shape[0] == rows for v in stem.values()):
                for reg, value in stem.items():
                    registers[reg] = value
            else:
                self._stem = self._run_stem(frame, scratch=self._scratch)
                for reg, value in self._stem.items():
                    registers[reg] = value
            start = plan.stem_len
        for index in range(start, len(plan.ops)):
            plan.ops[index].run(registers, self._scratch[index], self._membranes)
        output = registers[plan.output_register]
        # Uphold the freshness contract when the producing op hands back
        # reused scratch (anything but a Linear head): the next step() would
        # otherwise overwrite the caller's running sum in place.
        return output.copy() if plan.output_needs_copy else output

    # ------------------------------------------------------------------ #
    @property
    def batch_rows(self) -> Optional[int]:
        """Current state width, or ``None`` when no state has materialized."""
        for membrane in self._membranes:
            if membrane is not None:
                return int(membrane.shape[0])
        if self._stem:
            return int(next(iter(self._stem.values())).shape[0])
        return None
