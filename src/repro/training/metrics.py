"""Evaluation metrics: accuracy (overall and per-timestep), confusion matrix.

The per-timestep accuracy sweep is the measurement behind Fig. 2 of the
paper ("accuracy grows with the number of timesteps") and behind the static
points of the accuracy-EDP curves in Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autograd import no_grad
from ..data.datasets import DataLoader
from ..runtime import executor_for, run_cumulative_logits
from ..snn.network import SpikingNetwork

__all__ = [
    "accuracy_from_logits",
    "confusion_matrix",
    "evaluate_accuracy",
    "evaluate_per_timestep_accuracy",
    "collect_cumulative_logits",
]


def accuracy_from_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a ``(N, K)`` logits array against integer labels."""
    predictions = np.argmax(logits, axis=-1)
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Row = true class, column = predicted class."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, predicted in zip(labels, predictions):
        matrix[int(true), int(predicted)] += 1
    return matrix


def collect_cumulative_logits(
    model: SpikingNetwork,
    loader: DataLoader,
    timesteps: Optional[int] = None,
    use_runtime: Optional[bool] = None,
) -> Dict[str, np.ndarray]:
    """Run the model over a loader and collect cumulative logits per timestep.

    Returns a dict with ``logits`` of shape ``(T, N, K)`` (running-mean
    classifier outputs, i.e. ``f_t(x)``) and ``labels`` of shape ``(N,)``.
    This single pass is reused by the accuracy sweep, the DT-SNN threshold
    calibration and the benchmark harness, so the expensive SNN forward runs
    once per dataset.

    When the model lowers into the :mod:`repro.runtime` compiled plan (and
    ``use_runtime`` is not disabled) the sweep executes through the
    graph-free fast path; the returned logits are bitwise identical to the
    Tensor path's (``use_runtime=False``), so thresholds calibrated on one
    path are exact on the other.  The logits are float32 end to end — the
    ``1/t`` averaging follows the weak-scalar dtype policy
    (docs/NUMERICS.md) on both paths.
    """
    was_training = model.training
    model.eval()
    horizon = timesteps or model.default_timesteps
    executor = executor_for(model, use_runtime)
    all_logits: List[np.ndarray] = []
    all_labels: List[np.ndarray] = []
    try:
        with no_grad():
            for inputs, labels in loader:
                if executor is None:
                    output = model.forward(inputs, horizon)
                    all_logits.append(output.cumulative_numpy())
                else:
                    all_logits.append(
                        run_cumulative_logits(model, executor, inputs, horizon)
                    )
                all_labels.append(labels)
    finally:
        model.train(was_training)
    logits = np.concatenate(all_logits, axis=1)
    labels = np.concatenate(all_labels, axis=0)
    return {"logits": logits, "labels": labels}


def evaluate_accuracy(
    model: SpikingNetwork, loader: DataLoader, timesteps: Optional[int] = None
) -> float:
    """Full-horizon (static SNN) top-1 accuracy."""
    collected = collect_cumulative_logits(model, loader, timesteps)
    return accuracy_from_logits(collected["logits"][-1], collected["labels"])


def evaluate_per_timestep_accuracy(
    model: SpikingNetwork, loader: DataLoader, timesteps: Optional[int] = None
) -> List[float]:
    """Accuracy of the cumulative prediction at every horizon t = 1..T (Fig. 2)."""
    collected = collect_cumulative_logits(model, loader, timesteps)
    labels = collected["labels"]
    return [accuracy_from_logits(step_logits, labels) for step_logits in collected["logits"]]
