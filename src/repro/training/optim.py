"""Optimizers: SGD with momentum/weight decay and Adam.

The paper trains with SGD (lr 0.1, cosine decay, L2 regularization 5e-4); Adam
is included because it converges faster on the small synthetic benchmark
configurations and is useful for quick example scripts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter
from ..utils.validation import check_non_negative, check_positive

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        check_positive("lr", lr)
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        check_positive("lr", lr)
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        nesterov: bool = False,
    ):
        super().__init__(parameters, lr)
        check_non_negative("momentum", momentum)
        check_non_negative("weight_decay", weight_decay)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with optional weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        check_non_negative("weight_decay", weight_decay)
        self.betas = tuple(betas)
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param), np.zeros_like(param.data))
            v = self._v.get(id(param), np.zeros_like(param.data))
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
