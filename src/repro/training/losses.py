"""Training losses for static SNNs and DT-SNNs.

Three losses from the paper and its baselines:

* :class:`FinalTimestepLoss` — Eq. 9: cross-entropy on the full-horizon
  averaged output ``f_T(x)`` only (the static-SNN default).
* :class:`PerTimestepLoss` — Eq. 10: the DT-SNN loss, averaging cross-entropy
  over every cumulative horizon ``f_t(x)``, which gives explicit supervision
  to the early-timestep outputs so entropy-based early exits stay accurate.
* :class:`TETLoss` — the "temporal efficient training" variant that applies
  cross-entropy to each *instantaneous* timestep output rather than the
  running mean; included as an ablation point.

All losses consume a :class:`~repro.snn.network.TemporalOutput` so the
trainer can switch between them with a single configuration string.

The ``1/T`` averaging reciprocals adopt the loss dtype (weak-scalar float32,
docs/NUMERICS.md) instead of promoting the backward pass to float64.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..autograd import Tensor, cross_entropy
from ..snn.network import TemporalOutput
from ..utils.registry import Registry

__all__ = [
    "SNNLoss",
    "FinalTimestepLoss",
    "PerTimestepLoss",
    "TETLoss",
    "LOSSES",
    "build_loss",
]

LOSSES = Registry("training loss")


class SNNLoss:
    """Base class: callable mapping ``(TemporalOutput, labels) -> scalar Tensor``."""

    name = "base"

    def __call__(self, output: TemporalOutput, labels: np.ndarray) -> Tensor:
        raise NotImplementedError


@LOSSES.register("final")
class FinalTimestepLoss(SNNLoss):
    """Cross-entropy on the full-horizon prediction only (Eq. 9)."""

    name = "final"

    def __call__(self, output: TemporalOutput, labels: np.ndarray) -> Tensor:
        return cross_entropy(output.final(), labels)


@LOSSES.register("per_timestep")
class PerTimestepLoss(SNNLoss):
    """Average cross-entropy over every cumulative horizon (Eq. 10)."""

    name = "per_timestep"

    def __call__(self, output: TemporalOutput, labels: np.ndarray) -> Tensor:
        cumulative = output.cumulative()
        total = cross_entropy(cumulative[0], labels)
        for logits in cumulative[1:]:
            total = total + cross_entropy(logits, labels)
        return total * (1.0 / len(cumulative))


@LOSSES.register("tet")
class TETLoss(SNNLoss):
    """Cross-entropy on each instantaneous timestep output (TET baseline)."""

    name = "tet"

    def __call__(self, output: TemporalOutput, labels: np.ndarray) -> Tensor:
        per_timestep: List[Tensor] = output.per_timestep
        total = cross_entropy(per_timestep[0], labels)
        for logits in per_timestep[1:]:
            total = total + cross_entropy(logits, labels)
        return total * (1.0 / len(per_timestep))


def build_loss(name: str, **kwargs) -> SNNLoss:
    """Instantiate a loss by registry name (``final``, ``per_timestep``, ``tet``)."""
    return LOSSES.create(name, **kwargs)
