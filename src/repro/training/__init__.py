"""Training substrate: optimizers, schedules, losses, metrics, trainer."""

from .losses import LOSSES, FinalTimestepLoss, PerTimestepLoss, SNNLoss, TETLoss, build_loss
from .metrics import (
    accuracy_from_logits,
    collect_cumulative_logits,
    confusion_matrix,
    evaluate_accuracy,
    evaluate_per_timestep_accuracy,
)
from .optim import SGD, Adam, Optimizer
from .schedulers import ConstantLR, CosineAnnealingLR, LRScheduler, StepLR
from .trainer import Trainer, TrainingConfig, TrainingResult, train_model

__all__ = [
    "SNNLoss",
    "FinalTimestepLoss",
    "PerTimestepLoss",
    "TETLoss",
    "LOSSES",
    "build_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "CosineAnnealingLR",
    "StepLR",
    "ConstantLR",
    "accuracy_from_logits",
    "confusion_matrix",
    "collect_cumulative_logits",
    "evaluate_accuracy",
    "evaluate_per_timestep_accuracy",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
    "train_model",
]
