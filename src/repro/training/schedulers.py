"""Learning-rate schedules.

The paper's recipe uses a cosine decay over the training run; step decay and
constant schedules are provided for the ablation scripts.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..utils.validation import check_non_negative, check_positive
from .optim import Optimizer

__all__ = ["LRScheduler", "CosineAnnealingLR", "StepLR", "ConstantLR"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.set_lr(lr)
        return lr

    def current_lr(self) -> float:
        return self.optimizer.lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base learning rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 1e-5):
        super().__init__(optimizer)
        check_positive("total_epochs", total_epochs)
        check_non_negative("min_lr", min_lr)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` at each milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1):
        super().__init__(optimizer)
        check_positive("gamma", gamma)
        self.milestones: List[int] = sorted(int(m) for m in milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        decays = sum(1 for milestone in self.milestones if epoch >= milestone)
        return self.base_lr * (self.gamma**decays)


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (useful for short ablation runs)."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr
