"""Training loop for spiking networks.

:class:`Trainer` reproduces the paper's recipe at configurable scale:
surrogate-gradient BPTT over ``T`` timesteps, SGD with momentum and L2
regularization, cosine learning-rate decay, and a choice between the Eq. 9
(final-timestep) and Eq. 10 (per-timestep) losses.  The same trainer is used
for static SNN baselines, DT-SNN models, the tdBN/Dspike comparison points of
Fig. 6(A), and the loss ablation of Fig. 7 — only the configuration differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.datasets import DataLoader
from ..snn.network import SpikingNetwork
from ..utils.logging import MetricLogger
from ..utils.validation import check_positive
from .losses import SNNLoss, build_loss
from .metrics import evaluate_accuracy
from .optim import Optimizer, SGD
from .schedulers import ConstantLR, CosineAnnealingLR, LRScheduler

__all__ = ["TrainingConfig", "TrainingResult", "Trainer", "train_model"]


@dataclass
class TrainingConfig:
    """Hyperparameters of a training run (paper defaults, scaled down)."""

    epochs: int = 5
    timesteps: int = 4
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    loss: str = "per_timestep"
    optimizer: str = "sgd"
    scheduler: str = "cosine"
    min_lr: float = 1e-4
    grad_clip: Optional[float] = 5.0
    verbose: bool = False

    def validate(self) -> "TrainingConfig":
        check_positive("epochs", self.epochs)
        check_positive("timesteps", self.timesteps)
        check_positive("learning_rate", self.learning_rate)
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'")
        if self.scheduler not in ("cosine", "constant"):
            raise ValueError("scheduler must be 'cosine' or 'constant'")
        return self


@dataclass
class TrainingResult:
    """Summary of a completed training run."""

    train_loss_history: List[float] = field(default_factory=list)
    train_accuracy_history: List[float] = field(default_factory=list)
    eval_accuracy_history: List[float] = field(default_factory=list)
    final_eval_accuracy: float = 0.0
    epochs_run: int = 0

    def best_eval_accuracy(self) -> float:
        return max(self.eval_accuracy_history) if self.eval_accuracy_history else 0.0


class Trainer:
    """Runs surrogate-gradient BPTT training of a :class:`SpikingNetwork`."""

    def __init__(
        self,
        model: SpikingNetwork,
        config: Optional[TrainingConfig] = None,
        loss: Optional[SNNLoss] = None,
        optimizer: Optional[Optimizer] = None,
    ):
        self.model = model
        self.config = (config or TrainingConfig()).validate()
        self.loss = loss or build_loss(self.config.loss)
        self.optimizer = optimizer or self._build_optimizer()
        self.scheduler = self._build_scheduler()
        self.logger = MetricLogger("trainer", verbose=self.config.verbose)

    def _build_optimizer(self) -> Optimizer:
        if self.config.optimizer == "adam":
            from .optim import Adam

            return Adam(
                self.model.parameters(),
                lr=self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            )
        return SGD(
            self.model.parameters(),
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def _build_scheduler(self) -> LRScheduler:
        if self.config.scheduler == "cosine":
            return CosineAnnealingLR(self.optimizer, self.config.epochs, min_lr=self.config.min_lr)
        return ConstantLR(self.optimizer)

    def _clip_gradients(self) -> None:
        limit = self.config.grad_clip
        if limit is None:
            return
        for param in self.model.parameters():
            if param.grad is not None:
                np.clip(param.grad, -limit, limit, out=param.grad)

    # ------------------------------------------------------------------ #
    def train_epoch(self, loader: DataLoader) -> Dict[str, float]:
        """One pass over the training loader; returns mean loss and accuracy."""
        self.model.train()
        total_loss = 0.0
        total_correct = 0.0
        total_samples = 0
        for inputs, labels in loader:
            self.optimizer.zero_grad()
            output = self.model.forward(inputs, self.config.timesteps)
            loss = self.loss(output, labels)
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()

            batch = labels.shape[0]
            total_loss += float(loss.data) * batch
            predictions = np.argmax(output.final().data, axis=-1)
            total_correct += float(np.sum(predictions == labels))
            total_samples += batch
        if total_samples == 0:
            raise ValueError("training loader produced no batches")
        return {
            "loss": total_loss / total_samples,
            "accuracy": total_correct / total_samples,
        }

    def fit(
        self,
        train_loader: DataLoader,
        eval_loader: Optional[DataLoader] = None,
    ) -> TrainingResult:
        """Train for ``config.epochs`` epochs, evaluating after each epoch."""
        result = TrainingResult()
        for epoch in range(self.config.epochs):
            stats = self.train_epoch(train_loader)
            result.train_loss_history.append(stats["loss"])
            result.train_accuracy_history.append(stats["accuracy"])
            if eval_loader is not None:
                eval_accuracy = evaluate_accuracy(
                    self.model, eval_loader, timesteps=self.config.timesteps
                )
                result.eval_accuracy_history.append(eval_accuracy)
            self.scheduler.step()
            result.epochs_run = epoch + 1
            self.logger.log(
                step=epoch,
                train_loss=stats["loss"],
                train_accuracy=stats["accuracy"],
                eval_accuracy=result.eval_accuracy_history[-1] if eval_loader else float("nan"),
                lr=self.optimizer.lr,
            )
        if eval_loader is not None and result.eval_accuracy_history:
            result.final_eval_accuracy = result.eval_accuracy_history[-1]
        return result


def train_model(
    model: SpikingNetwork,
    train_loader: DataLoader,
    eval_loader: Optional[DataLoader] = None,
    config: Optional[TrainingConfig] = None,
) -> TrainingResult:
    """Convenience wrapper: build a trainer and fit."""
    return Trainer(model, config=config).fit(train_loader, eval_loader)
