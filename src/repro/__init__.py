"""repro — reproduction of "Input-Aware Dynamic Timestep Spiking Neural Networks
for Efficient In-Memory Computing" (DAC 2023).

The package is organized as a stack of substrates with the paper's
contribution (DT-SNN) on top:

* :mod:`repro.autograd` — NumPy reverse-mode autodiff (the tensor backend).
* :mod:`repro.nn` — neural-network module system and layers.
* :mod:`repro.snn` — spiking substrate: LIF neurons, surrogate gradients,
  encoders, temporally-unrolled networks, spiking VGG/ResNet builders.
* :mod:`repro.data` — synthetic image and event-stream datasets with graded
  per-sample difficulty.
* :mod:`repro.training` — optimizers, schedules, the Eq. 9 / Eq. 10 losses
  and the trainer.
* :mod:`repro.core` — DT-SNN: entropy-thresholded dynamic-timestep inference,
  threshold calibration, exit statistics and per-sample cost accounting.
* :mod:`repro.imc` — the tiled RRAM in-memory-computing chip model: mapping,
  energy/latency/area, sigma-E module, device variation.
* :mod:`repro.processors` — general digital processor throughput models.
* :mod:`repro.runtime` — the graph-free inference fast path: trained
  networks lower into a flat plan of fused NumPy kernels (stem caching,
  preallocated buffers) that is bitwise-identical to the define-by-run
  path and roughly halves the per-timestep forward cost.
* :mod:`repro.serve` — the continuous-batching serving layer: a bounded
  admission queue, a slot-based engine that refills early-exit slots
  mid-horizon, a threaded server with backpressure and graceful drain,
  serving telemetry (latency percentiles, exit histograms, per-request
  energy/EDP) and an SLA-aware adaptive threshold controller.

The most common entry points are re-exported here for convenience::

    from repro import spiking_vgg, Trainer, TrainingConfig
    from repro import DynamicTimestepInference, EntropyExitPolicy, IMCChip
    from repro import Server, LoadGenerator, request_stream
"""

from .core import (
    CostReport,
    DynamicInferenceResult,
    DynamicTimestepInference,
    EntropyExitPolicy,
    account_result,
    calibrate_threshold,
    compare_to_static,
    normalized_entropy,
    softmax_probabilities,
    sweep_thresholds,
)
from .data import (
    ArrayDataset,
    DataLoader,
    make_cifar10_like,
    make_cifar100_like,
    make_dvs_like,
    make_tinyimagenet_like,
    train_test_split,
)
from .imc import HardwareConfig, IMCChip, with_device_variation
from .processors import DigitalProcessorModel, WallClockProfiler
from .runtime import CompiledPlan, PlanExecutor, compile_network
from .serve import (
    AdaptiveThresholdController,
    ContinuousBatcher,
    InferenceEngine,
    LoadGenerator,
    Server,
    Telemetry,
    calibrated_threshold_bounds,
    request_stream,
)
from .snn import SpikingNetwork, spiking_resnet, spiking_vgg
from .training import Trainer, TrainingConfig, evaluate_per_timestep_accuracy, train_model
from .utils import seed_everything

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "seed_everything",
    "spiking_vgg",
    "spiking_resnet",
    "SpikingNetwork",
    "Trainer",
    "TrainingConfig",
    "train_model",
    "evaluate_per_timestep_accuracy",
    "DynamicTimestepInference",
    "DynamicInferenceResult",
    "EntropyExitPolicy",
    "normalized_entropy",
    "softmax_probabilities",
    "sweep_thresholds",
    "calibrate_threshold",
    "account_result",
    "compare_to_static",
    "CostReport",
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_tinyimagenet_like",
    "make_dvs_like",
    "HardwareConfig",
    "IMCChip",
    "with_device_variation",
    "DigitalProcessorModel",
    "WallClockProfiler",
    "CompiledPlan",
    "PlanExecutor",
    "compile_network",
    "Server",
    "InferenceEngine",
    "ContinuousBatcher",
    "Telemetry",
    "AdaptiveThresholdController",
    "calibrated_threshold_bounds",
    "LoadGenerator",
    "request_stream",
]
