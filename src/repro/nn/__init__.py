"""Neural-network module system (layers, parameters, initialization)."""

from . import init
from .layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)
from .module import Identity, Module, ModuleList, Parameter, Sequential

__all__ = [
    "init",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Identity",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "Dropout",
    "ReLU",
]
