"""Module/Parameter system mirroring the ``torch.nn`` programming model.

A :class:`Module` owns named :class:`Parameter` tensors and child modules,
supports train/eval mode switching, parameter iteration for the optimizer,
and flat ``state_dict`` export/import for checkpointing and for handing the
trained weights to the IMC crossbar mapper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, coerce_array

__all__ = ["Parameter", "Module", "Sequential", "ModuleList", "Identity"]


def _coerce_buffer(value) -> np.ndarray:
    """Apply the dtype policy (docs/NUMERICS.md) to a buffer array.

    Float buffers follow the same weak-scalar float32 rule as Tensor data —
    in particular a checkpoint whose running stats arrive as float64 must
    not smuggle float64 into the dataflow (it would poison the folded
    conv+norm cache on the fast path while the Tensor path re-coerces,
    breaking the bitwise path-vs-path contract).  Non-float buffers pass
    through untouched.
    """
    array = np.asarray(value)
    if np.issubdtype(array.dtype, np.floating):
        return coerce_array(array)
    return array


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True, name: str = ""):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network components."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Attribute interception for automatic registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the state dict."""
        self._buffers[name] = _coerce_buffer(value)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer (e.g. BN running stats)."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = _coerce_buffer(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # Iteration helpers
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def modules(self) -> List["Module"]:
        return [module for _, module in self.named_modules()]

    def children(self) -> List["Module"]:
        return list(self._modules.values())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self._buffers.items():
            yield (f"{prefix}{name}", value)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------ #
    # Train/eval and gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"{name}"] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{module_name}.{buf_name}" if module_name else buf_name
                own_buffer_owners[full] = (module, buf_name)

        missing = []
        for name, param in own_params.items():
            if name in state:
                value = np.asarray(state[name], dtype=param.data.dtype)
                if value.shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: checkpoint {value.shape} vs model {param.shape}"
                    )
                param.data = value.copy()
            else:
                missing.append(name)
        for name, (module, buf_name) in own_buffer_owners.items():
            if name in state:
                module.update_buffer(buf_name, np.asarray(state[name]))
            else:
                missing.append(name)
        unexpected = [k for k in state if k not in own_params and k not in own_buffer_owners]
        if strict and (missing or unexpected):
            raise KeyError(f"load_state_dict mismatch: missing={missing}, unexpected={unexpected}")

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"{type(self).__name__}({self.extra_repr()})"]
        for name, child in self._modules.items():
            child_repr = repr(child).splitlines()
            lines.append(f"  ({name}): {child_repr[0]}")
            lines.extend(f"  {line}" for line in child_repr[1:])
        return "\n".join(lines)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x):
        for module in self:
            x = module(x)
        return x


class ModuleList(Module):
    """Holds an ordered list of sub-modules without defining forward."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class Identity(Module):
    """Pass-through module (used for optional normalization slots)."""

    def forward(self, x):
        return x
