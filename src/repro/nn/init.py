"""Weight initialization schemes.

The original DT-SNN training recipe uses Kaiming (He) initialization for
convolutions and linear layers; the spiking-specific literature keeps the
same scheme because LIF neurons behave like a leaky ReLU at initialization.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..utils.rng import global_rng

__all__ = [
    "calculate_fan",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "zeros",
    "ones",
]


def calculate_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a linear or convolutional weight."""
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        out_channels, in_channels, kh, kw = shape
        receptive = kh * kw
        fan_in = in_channels * receptive
        fan_out = out_channels * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], gain: float = math.sqrt(2.0),
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He normal initialization: N(0, gain^2 / fan_in)."""
    rng = rng or global_rng()
    fan_in, _ = calculate_fan(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], gain: float = math.sqrt(2.0),
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He uniform initialization: U(-bound, bound) with bound = gain*sqrt(3/fan_in)."""
    rng = rng or global_rng()
    fan_in, _ = calculate_fan(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot uniform initialization."""
    rng = rng or global_rng()
    fan_in, fan_out = calculate_fan(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero array (bias / BN-beta initialization)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one array (BN-gamma initialization)."""
    return np.ones(shape, dtype=np.float32)
