"""Standard neural-network layers used to assemble the spiking architectures.

Layers follow the PyTorch calling convention (``(N, C, H, W)`` feature maps,
``(out, in)`` linear weights) so that the architectures in
:mod:`repro.snn.architectures` read like their original definitions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, functional as F
from ..utils.rng import spawn_rng
from ..utils.validation import check_positive, check_probability
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "AvgPool2d",
    "MaxPool2d",
    "AdaptiveAvgPool2d",
    "Flatten",
    "Dropout",
    "ReLU",
]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}"


class Conv2d(Module):
    """2D convolution with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
    ):
        super().__init__()
        check_positive("in_channels", in_channels)
        check_positive("out_channels", out_channels)
        check_positive("kernel_size", kernel_size)
        check_positive("stride", stride)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size)),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"in={self.in_channels}, out={self.out_channels}, k={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of ``(N, C, H, W)``.

    During SNN training this is applied independently at every timestep, which
    is the "optional normalization layer placed between conv and LIF" the
    paper describes (Sec. II).  The threshold-dependent variant used by the
    tdBN baseline lives in :mod:`repro.snn.tdbn`.

    The scalar ``eps`` in ``var + eps`` adopts the activation dtype (weak-
    scalar float32; docs/NUMERICS.md), so normalization no longer promotes
    everything downstream to float64 the way the seed implementation did.
    When this layer directly follows a convolution inside a
    :class:`~repro.snn.ConvSpikeBlock` / ``SpikingResidualBlock``, frozen
    inference folds it into the conv GEMM entirely
    (:mod:`repro.snn.folding`).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        check_positive("num_features", num_features)
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="gamma")
        self.bias = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got shape {x.shape}")
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            batch_mean = mean.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * batch_mean,
            )
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * batch_var,
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalized = (x - mean) / (var + self.eps).sqrt()
        gamma = self.weight.reshape(1, self.num_features, 1, 1)
        beta = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * gamma + beta

    def extra_repr(self) -> str:
        return f"features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class AvgPool2d(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        check_positive("kernel_size", kernel_size)
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, stride={self.stride}"


class MaxPool2d(Module):
    """Max pooling with a square window."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        check_positive("kernel_size", kernel_size)
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, stride={self.stride}"


class AdaptiveAvgPool2d(Module):
    """Average pooling to a fixed output size (divisible geometries only)."""

    def __init__(self, output_size: int = 1):
        super().__init__()
        check_positive("output_size", output_size)
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    """Inverted dropout."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None):
        super().__init__()
        check_probability("p", p)
        self.p = p
        self._rng = spawn_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class ReLU(Module):
    """Rectified linear unit (used by the ANN early-exit baseline)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()
