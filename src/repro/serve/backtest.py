"""Offline SLA backtesting: what-if threshold schedules over recorded traces.

The serving stack's single inference-time knob is the exit threshold (plus
its storm-mode companions, horizon cap and brown-out), and the live SLA
controller moves it under feedback.  Choosing the *right* schedule — one
constant θ?  a peak-hours/off-hours piecewise split?  a harsher brown-out? —
is a question you want answered **offline**, against traffic you actually
served, before any knob moves in production.

This module is that engine.  It leans on two invariants the serving layer
already proves:

* **Per-sample batch invariance** — a request's prediction and exit timestep
  depend only on its own clip and its own (threshold, horizon) knobs, never
  on batch packing, worker count, or replica placement
  (``tests/serve/test_multi_engine.py``).
* **Threshold-epoch pinning** — ``Server.submit(threshold=..., horizon=...)``
  stamps a frozen :class:`~repro.serve.ThresholdEpoch` and the engine
  evaluates the slot under exactly those knobs (docs/RESILIENCE.md).

Together they make a backtest *decision-exact*: replaying a recorded trace
(:mod:`repro.serve.trace`) through a live server with per-request pinned
candidate knobs produces, for each candidate, the same bitwise decisions on
every composition — {1, 2 worker threads} × {1, 2 process replicas} — so the
sweep can fan candidates across the multi-worker stack for speed without the
parallelism touching a single decision.

Scoring is split into two strictly separated families:

* **Decision-derived scores** (deterministic, composition-invariant):
  agreement against the full-horizon oracle (each unique clip run once with
  ``threshold=0.0`` — normalized entropy is never below zero, so the exit
  rule never fires and the prediction is the paper's static-SNN answer),
  label accuracy when the trace recorded labels, the exit histogram, mean
  exit timesteps, and energy / EDP / modeled latency priced per request
  through the same :func:`~repro.serve.batcher.price_request` path the live
  server uses.  These are the Pareto axes.
* **Measured wall-clock stats** (informational, composition-dependent):
  latency percentiles and throughput of the backtest run itself.  Useful
  for sizing, never part of the determinism contract.

The :func:`pareto_frontier` over (maximize agreement, minimize EDP, minimize
modeled p99) is emitted as a schema-v1 JSON artifact
(:meth:`SweepResult.to_json`) rendered by ``tools/backtest_report.py`` and
produced end to end by the ``backtest`` CLI subcommand, which rebuilds the
model from the trace header exactly like ``replay`` does.
"""

from __future__ import annotations

import hashlib
import json
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.accounting import InferenceCostModel
from .batcher import price_request
from .server import Server
from .trace import Trace, TraceRecord, load_trace

__all__ = [
    "BACKTEST_SCHEMA_VERSION",
    "ThresholdSchedule",
    "RecordedSchedule",
    "ScheduleSegment",
    "CandidateResult",
    "SweepResult",
    "Backtester",
    "BacktestSweep",
    "pareto_frontier",
    "decision_digest",
]

BACKTEST_SCHEMA_VERSION = 1

#: The threshold that provably never fires the entropy exit rule: normalized
#: entropy is >= 0 and the policy exits on ``score < threshold``, so pinning
#: θ = 0.0 runs every clip to the full horizon — the static-SNN oracle.
ORACLE_THRESHOLD = 0.0


# --------------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScheduleSegment:
    """One piecewise-constant segment: knobs in force from ``start`` onward.

    ``start`` is an arrival offset in trace time (seconds since the trace's
    first recorded arrival).  ``horizon`` of ``None`` means the server's full
    ``max_timesteps``.
    """

    start: float
    threshold: float
    horizon: Optional[int] = None


class ThresholdSchedule:
    """A piecewise-constant (threshold, horizon) schedule over trace time.

    Segments partition trace time into half-open intervals: segment *i*
    covers ``[start_i, start_{i+1})`` and the last segment is open-ended, so
    every arrival offset — including every segment boundary — belongs to
    **exactly one** segment (``tests/property`` pins this algebra).  The
    first segment must start at 0.0 and also absorbs negative offsets
    (WAL arrival offsets are relative to the first *completed* request, so
    requests that arrived earlier carry small negative offsets): a schedule
    is total over any trace span by construction, never partial.
    """

    def __init__(self, segments: Sequence[ScheduleSegment]):
        if not segments:
            raise ValueError("a schedule needs at least one segment")
        segments = [
            seg if isinstance(seg, ScheduleSegment) else ScheduleSegment(*seg)
            for seg in segments
        ]
        if float(segments[0].start) != 0.0:
            raise ValueError(
                "the first segment must start at offset 0.0 so the schedule "
                "is total over the trace span"
            )
        for earlier, later in zip(segments, segments[1:]):
            if not float(later.start) > float(earlier.start):
                raise ValueError(
                    "segment starts must be strictly increasing "
                    f"({earlier.start} then {later.start})"
                )
        for seg in segments:
            if not 0.0 <= float(seg.threshold) <= 1.0:
                raise ValueError(
                    f"threshold {seg.threshold} outside [0, 1] (normalized "
                    "entropy)"
                )
            if seg.horizon is not None and int(seg.horizon) < 1:
                raise ValueError("segment horizon must be >= 1")
        self.segments: Tuple[ScheduleSegment, ...] = tuple(segments)
        self._starts = [float(seg.start) for seg in self.segments]

    # ------------------------------------------------------------------ #
    @classmethod
    def constant(
        cls, threshold: float, horizon: Optional[int] = None
    ) -> "ThresholdSchedule":
        """A single-segment schedule: one θ (and horizon) for the whole trace."""
        return cls([ScheduleSegment(0.0, float(threshold), horizon)])

    @classmethod
    def piecewise(
        cls, points: Sequence[Tuple[float, float]], horizon: Optional[int] = None
    ) -> "ThresholdSchedule":
        """Build from ``(start_offset, threshold)`` pairs sharing one horizon."""
        return cls([ScheduleSegment(float(s), float(t), horizon)
                    for s, t in points])

    @classmethod
    def from_trace(cls, trace: Trace) -> "ThresholdSchedule":
        """The recorded knob trajectory as a piecewise schedule.

        Starts a new segment at the arrival offset of the first record whose
        (threshold, horizon) differ from the previous record's — a lossless
        reconstruction when knob changes happen *between* arrivals (the
        epoch-stamped common case).  For per-request pinning that is exact
        even under same-offset knob changes, use :class:`RecordedSchedule`.
        """
        records = sorted(trace.records,
                         key=lambda r: (r.arrival_offset, r.request_id))
        if not records:
            raise ValueError("trace holds no records to build a schedule from")
        segments: List[ScheduleSegment] = []
        previous: Optional[Tuple[Optional[float], Optional[int]]] = None
        for record in records:
            knobs = (record.threshold, record.horizon)
            if knobs != previous:
                if record.threshold is None:
                    raise ValueError(
                        "trace records carry no thresholds; cannot derive a "
                        "schedule"
                    )
                start = 0.0 if not segments else float(record.arrival_offset)
                segments.append(ScheduleSegment(
                    start, float(record.threshold), record.horizon
                ))
                previous = knobs
        return cls(segments)

    # ------------------------------------------------------------------ #
    def segment_index(self, offset: float) -> int:
        """The index of the single segment covering ``offset``.

        Recorded arrival offsets are measured from the *first completed*
        request, so requests that arrived earlier than it carry small
        negative offsets — those belong to the opening segment, which
        covers everything before the second segment's start.
        """
        offset = float(offset)
        if offset < 0.0:
            return 0
        # bisect_right on the starts: boundary offsets land in the segment
        # that *begins* there ([start_i, start_{i+1}) semantics).
        return bisect_right(self._starts, offset) - 1

    def knobs_at(self, offset: float) -> Tuple[float, Optional[int]]:
        """The (threshold, horizon) in force at arrival offset ``offset``."""
        segment = self.segments[self.segment_index(offset)]
        return segment.threshold, segment.horizon

    def knobs_for(self, record: TraceRecord) -> Tuple[Optional[float], Optional[int]]:
        """Candidate knobs for one recorded request (by its arrival offset)."""
        return self.knobs_at(record.arrival_offset)

    # ------------------------------------------------------------------ #
    def spec(self) -> Dict[str, Any]:
        """JSON-able description (stored verbatim in the sweep artifact)."""
        return {
            "kind": "piecewise",
            "segments": [
                {"start": seg.start, "threshold": seg.threshold,
                 "horizon": seg.horizon}
                for seg in self.segments
            ],
        }

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ThresholdSchedule)
                and self.segments == other.segments)

    def __hash__(self) -> int:
        return hash(self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"[{seg.start:g}s: θ={seg.threshold:g}"
            + (f", T<={seg.horizon}" if seg.horizon is not None else "")
            + ")"
            for seg in self.segments
        )
        return f"ThresholdSchedule({parts})"


class RecordedSchedule:
    """The baseline candidate: each request re-runs under its *recorded* knobs.

    Unlike :meth:`ThresholdSchedule.from_trace` this pins per request rather
    than per time segment, so it is exact even when two requests share an
    arrival offset across a knob change.  Backtesting it must reproduce the
    trace's own decisions bitwise — the sweep's built-in honesty check.
    """

    def knobs_for(self, record: TraceRecord) -> Tuple[Optional[float], Optional[int]]:
        return record.threshold, record.horizon

    def spec(self) -> Dict[str, Any]:
        return {"kind": "recorded"}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RecordedSchedule()"


# --------------------------------------------------------------------------- #
# Pareto
# --------------------------------------------------------------------------- #
def _axis_values(point: Any, axis: str) -> Optional[float]:
    if isinstance(point, Mapping):
        value = point.get(axis)
    else:
        value = getattr(point, axis, None)
    return None if value is None else float(value)


def pareto_frontier(
    points: Sequence[Any],
    maximize: Sequence[str] = ("agreement",),
    minimize: Sequence[str] = ("edp_mean", "model_latency_p99"),
) -> List[Any]:
    """The non-dominated subset of ``points`` under the named axes.

    ``points`` may be mappings or objects; axes whose value is ``None`` on
    *every* point are dropped (e.g. ``edp_mean`` without a cost model), and a
    point missing a value on a live axis is treated as worst-possible there.
    A point is dominated when some other point is at least as good on every
    axis and strictly better on at least one.  The result preserves every
    kept point (identity) and is returned in a canonical order — sorted by
    the axis tuple — so the frontier is invariant under permutation of the
    input (``tests/property`` pins all three laws).
    """
    points = list(points)
    if not points:
        return []
    axes: List[Tuple[str, float]] = []  # (name, sign): lower-is-better form
    for name in maximize:
        if any(_axis_values(p, name) is not None for p in points):
            axes.append((name, -1.0))
    for name in minimize:
        if any(_axis_values(p, name) is not None for p in points):
            axes.append((name, 1.0))
    if not axes:
        return list(points)

    def key(point: Any) -> Tuple[float, ...]:
        values = []
        for name, sign in axes:
            value = _axis_values(point, name)
            values.append(float("inf") if value is None else sign * value)
        return tuple(values)

    keyed = [(key(p), p) for p in points]

    def dominated(mine: Tuple[float, ...]) -> bool:
        for theirs, _ in keyed:
            if theirs == mine:
                continue
            if all(t <= m for t, m in zip(theirs, mine)) and any(
                t < m for t, m in zip(theirs, mine)
            ):
                return True
        return False

    def tiebreak(point: Any) -> str:
        # Equal axis tuples must still order deterministically, else the
        # frontier's order would leak input order under permutation.
        name = getattr(point, "name", None)
        if name is not None:
            return str(name)
        try:
            return json.dumps(point, sort_keys=True, default=str)
        except TypeError:
            return repr(point)

    frontier = [(k, p) for k, p in keyed if not dominated(k)]
    frontier.sort(key=lambda item: (item[0], tiebreak(item[1])))
    return [p for _, p in frontier]


# --------------------------------------------------------------------------- #
# Scoring
# --------------------------------------------------------------------------- #
def decision_digest(decisions: Sequence[Tuple[int, int, int]]) -> str:
    """128-bit hex digest over per-request decisions — the cheap handle the
    determinism matrix compares across compositions."""
    canonical = json.dumps([[int(a), int(b), int(c)] for a, b, c in decisions],
                           separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class CandidateResult:
    """One scored candidate schedule.

    ``decisions`` is the bitwise contract object: per recorded request (in
    record-id order), the prediction and exit timestep produced under the
    candidate knobs.  Everything in the *decision-derived* block is a pure
    function of ``decisions`` (+ the cost model), hence
    composition-invariant; ``measured`` is wall-clock truth about this
    particular run and deliberately excluded from determinism comparisons.
    """

    name: str
    schedule_spec: Dict[str, Any]
    decisions: List[Tuple[int, int, int]]  # (record_id, prediction, exit_t)
    # Decision-derived scores (deterministic):
    agreement: float
    accuracy: Optional[float]
    mean_exit: float
    exit_histogram: List[int]
    energy_mean: Optional[float]
    energy_total: Optional[float]
    edp_mean: Optional[float]
    model_latency_p50: float
    model_latency_p99: float
    # Wall-clock truth (informational, composition-dependent):
    measured: Dict[str, float] = field(default_factory=dict)

    @property
    def digest(self) -> str:
        return decision_digest(self.decisions)

    def score_row(self) -> Dict[str, Any]:
        """The deterministic block, as stored in the artifact."""
        return {
            "agreement": self.agreement,
            "accuracy": self.accuracy,
            "mean_exit": self.mean_exit,
            "exit_histogram": list(self.exit_histogram),
            "energy_mean": self.energy_mean,
            "energy_total": self.energy_total,
            "edp_mean": self.edp_mean,
            "model_latency_p50": self.model_latency_p50,
            "model_latency_p99": self.model_latency_p99,
        }


def _score_decisions(
    name: str,
    schedule_spec: Dict[str, Any],
    rows: Sequence[Tuple[TraceRecord, int, int]],  # (record, prediction, exit)
    oracle: Mapping[str, int],
    max_timesteps: int,
    cost_model: Optional[InferenceCostModel],
    measured: Optional[Dict[str, float]] = None,
) -> CandidateResult:
    """Deterministic scores from per-request decisions (one rule for the
    backtester's live runs AND the trace's own telemetry, so the baseline
    comparison is exact by construction)."""
    decisions = [(record.request_id, int(prediction), int(exit_t))
                 for record, prediction, exit_t in rows]
    exits = np.array([exit_t for _, _, exit_t in decisions], dtype=np.int64)
    histogram = np.bincount(exits, minlength=max_timesteps + 1)[1:]
    agree = [int(prediction == oracle[record.digest])
             for record, prediction, _ in rows if record.digest in oracle]
    labelled = [(record.label, prediction)
                for record, prediction, _ in rows if record.label is not None]
    energies, edps = [], []
    latencies = []
    for _, _, exit_t in decisions:
        energy, edp = price_request(cost_model, exit_t)
        if energy is not None:
            energies.append(energy)
            edps.append(edp)
        # The deterministic latency axis: the cost model's per-inference
        # latency at the exit timestep when available, the exit timestep
        # itself otherwise — either way a pure function of the decision.
        latencies.append(
            float(cost_model.latency(exit_t)) if cost_model is not None
            else float(exit_t)
        )
    latency_array = np.asarray(latencies, dtype=np.float64)  # dtype-ok: latency bookkeeping is decision-side float64 (docs/NUMERICS.md)
    return CandidateResult(
        name=name,
        schedule_spec=dict(schedule_spec),
        decisions=decisions,
        agreement=float(np.mean(agree)) if agree else 0.0,
        accuracy=(float(np.mean([p == l for l, p in labelled]))
                  if labelled else None),
        mean_exit=float(exits.mean()) if exits.size else 0.0,
        exit_histogram=[int(c) for c in histogram],
        energy_mean=float(np.mean(energies)) if energies else None,
        energy_total=float(np.sum(energies)) if energies else None,
        edp_mean=float(np.mean(edps)) if edps else None,
        model_latency_p50=float(np.percentile(latency_array, 50))
        if latency_array.size else 0.0,
        model_latency_p99=float(np.percentile(latency_array, 99))
        if latency_array.size else 0.0,
        measured=dict(measured or {}),
    )


# --------------------------------------------------------------------------- #
# The engines
# --------------------------------------------------------------------------- #
class Backtester:
    """Replays one recorded trace under *candidate* knobs and scores it.

    Parameters
    ----------
    trace:
        A replayable :class:`~repro.serve.Trace` (or path): records plus the
        content-addressed clip store.
    cost_model:
        Optional per-inference pricer (e.g. ``IMCChip``); enables the
        energy/EDP axes and the modeled-latency axis in physical units.

    The backtester never reads or mutates the server's live policy knob: it
    submits every request with explicit ``threshold=`` / ``horizon=`` pins,
    so any server built from the trace header works and the SLA controller
    (if one is attached) cannot perturb a candidate mid-run.
    """

    def __init__(
        self,
        trace,
        cost_model: Optional[InferenceCostModel] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if isinstance(trace, str):
            trace = load_trace(trace)
        if not isinstance(trace, Trace):
            raise TypeError("trace must be a Trace or a path to one")
        if not trace.records:
            raise ValueError("trace holds no request records to backtest")
        missing = [r.request_id for r in trace.records
                   if r.digest not in trace.clips]
        if missing:
            raise ValueError(
                f"trace cannot be backtested: {len(missing)} record(s) "
                "reference clips missing from the clip store (recorded with "
                "store_clips=False or truncated)"
            )
        self.trace = trace
        self.cost_model = cost_model
        self.clock = clock
        self.records: List[TraceRecord] = sorted(
            trace.records, key=lambda r: (r.arrival_offset, r.request_id)
        )
        self._oracle: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------ #
    def oracle(self, server: Server, result_timeout: float = 300.0) -> Dict[str, int]:
        """Full-horizon predictions per unique clip digest (computed once).

        Each unique clip is submitted with ``threshold=0.0`` pinned — the
        entropy rule never fires, the slot runs to ``server.max_timesteps``,
        and the prediction is the static-SNN answer the paper's accuracy
        numbers are measured against.  This is the accuracy-proxy reference
        every candidate's ``agreement`` is scored on.
        """
        if self._oracle is not None:
            return self._oracle
        unique: Dict[str, np.ndarray] = {}
        for record in self.records:
            unique.setdefault(record.digest, self.trace.clips[record.digest])
        pending = [
            (digest, server.submit(clip, block=True,
                                   threshold=ORACLE_THRESHOLD))
            for digest, clip in unique.items()
        ]
        self._oracle = {
            digest: int(response.result(timeout=result_timeout).prediction)
            for digest, response in pending
        }
        return self._oracle

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        server: Server,
        schedule,
        name: str = "candidate",
        result_timeout: float = 300.0,
    ) -> CandidateResult:
        """Run every recorded request under ``schedule``'s knobs; score it.

        ``schedule`` is anything with ``knobs_for(record) -> (θ, horizon)``
        and ``spec()`` — a :class:`ThresholdSchedule`, the
        :class:`RecordedSchedule` baseline, or a custom policy object.
        Submissions are pipelined (all submitted, then all resolved), so a
        multi-worker or multi-replica server overlaps the requests; epoch
        pinning guarantees the overlap cannot move a decision.
        """
        oracle = self.oracle(server, result_timeout=result_timeout)
        start = self.clock()
        pending = []
        for record in self.records:
            threshold, horizon = schedule.knobs_for(record)
            pending.append((record, server.submit(
                self.trace.clips[record.digest],
                label=record.label,
                block=True,
                threshold=threshold,
                horizon=horizon,
            )))
        rows = []
        wall_latencies = []
        for record, response in pending:
            result = response.result(timeout=result_timeout)
            rows.append((record, int(result.prediction),
                         int(result.exit_timestep)))
            wall_latencies.append(result.latency)
        duration = self.clock() - start
        wall = np.asarray(wall_latencies, dtype=np.float64)  # dtype-ok: latency bookkeeping is decision-side float64 (docs/NUMERICS.md)
        measured = {
            "duration_s": float(duration),
            "throughput_rps": (len(rows) / duration if duration > 0 else 0.0),
            "latency_p50_s": float(np.percentile(wall, 50)) if wall.size else 0.0,
            "latency_p99_s": float(np.percentile(wall, 99)) if wall.size else 0.0,
        }
        return _score_decisions(
            name, schedule.spec(), rows, oracle, server.max_timesteps,
            self.cost_model, measured,
        )

    # ------------------------------------------------------------------ #
    def trace_scores(self, oracle: Mapping[str, int],
                     max_timesteps: int) -> CandidateResult:
        """The trace's own telemetry, scored through the same rule as a live
        candidate — what the recorded baseline must match *exactly*."""
        rows = [(record, record.prediction, record.exit_timestep)
                for record in self.records]
        return _score_decisions(
            "trace", {"kind": "trace"}, rows, oracle, max_timesteps,
            self.cost_model,
        )


@dataclass
class SweepResult:
    """Outcome of one :class:`BacktestSweep` run against one composition."""

    candidates: List[CandidateResult]
    pareto: List[str]  # candidate names on the frontier, canonical order
    baseline_name: Optional[str]
    baseline_mismatches: List[str]
    composition: Dict[str, int]
    trace_info: Dict[str, Any]
    oracle_size: int

    @property
    def baseline_exact(self) -> bool:
        """The recorded schedule reproduced the trace's decisions and scores
        bitwise (vacuously true when the baseline was not requested)."""
        return not self.baseline_mismatches

    def candidate(self, name: str) -> CandidateResult:
        for candidate in self.candidates:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no candidate named {name!r}")

    # ------------------------------------------------------------------ #
    def decision_map(self) -> Dict[str, str]:
        """candidate name -> decision digest (the determinism handle)."""
        return {c.name: c.digest for c in self.candidates}

    def assert_decisions_equal(self, other: "SweepResult") -> None:
        """Raise unless both sweeps made identical decisions AND agree on
        the Pareto frontier — the cross-composition determinism gate."""
        mine, theirs = self.decision_map(), other.decision_map()
        if set(mine) != set(theirs):
            raise AssertionError(
                f"candidate sets differ: {sorted(mine)} vs {sorted(theirs)}"
            )
        moved = [name for name in sorted(mine) if mine[name] != theirs[name]]
        if moved:
            raise AssertionError(
                "backtest decisions moved across compositions for "
                f"candidate(s): {', '.join(moved)}"
            )
        if self.pareto != other.pareto:
            raise AssertionError(
                f"Pareto frontier moved across compositions: {self.pareto} "
                f"vs {other.pareto}"
            )

    # ------------------------------------------------------------------ #
    def to_document(self, include_decisions: bool = True) -> Dict[str, Any]:
        """The schema-v1 artifact (docs/OBSERVABILITY.md §5)."""
        return {
            "schema_version": BACKTEST_SCHEMA_VERSION,
            "kind": "backtest_sweep",
            "trace": dict(self.trace_info),
            "composition": dict(self.composition),
            "oracle": {
                "threshold": ORACLE_THRESHOLD,
                "unique_clips": self.oracle_size,
            },
            "baseline": {
                "name": self.baseline_name,
                "exact": self.baseline_exact,
                "mismatches": list(self.baseline_mismatches),
            },
            "pareto": list(self.pareto),
            "candidates": [
                {
                    "name": c.name,
                    "schedule": c.schedule_spec,
                    "scores": c.score_row(),
                    "measured": dict(c.measured),
                    "decision_digest": c.digest,
                    **({"decisions": [list(d) for d in c.decisions]}
                       if include_decisions else {}),
                }
                for c in self.candidates
            ],
        }

    def to_json(self, path: str, include_decisions: bool = True) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_document(include_decisions=include_decisions),
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


class BacktestSweep:
    """Evaluates a set of candidate schedules over one trace and ranks them.

    Parameters
    ----------
    trace:
        The recorded trace (or path) every candidate replays.
    candidates:
        ``{name: schedule}`` — the what-if set.  Names are the artifact keys.
    include_baseline:
        Add the :class:`RecordedSchedule` under ``baseline_name`` and check
        it reproduces the trace's own decisions and decision-derived scores
        exactly (:attr:`SweepResult.baseline_exact`).  This is the sweep's
        self-calibration: if the recorded knobs do not reproduce the
        recording, no what-if number can be trusted.
    cost_model:
        Optional pricer enabling the energy/EDP Pareto axes.
    """

    BASELINE_NAME = "recorded"

    def __init__(
        self,
        trace,
        candidates: Mapping[str, Any],
        include_baseline: bool = True,
        cost_model: Optional[InferenceCostModel] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.backtester = Backtester(trace, cost_model=cost_model, clock=clock)
        if include_baseline and self.BASELINE_NAME in candidates:
            raise ValueError(
                f"candidate name {self.BASELINE_NAME!r} is reserved for the "
                "recorded baseline"
            )
        self.candidates = dict(candidates)
        self.include_baseline = bool(include_baseline)
        if not self.candidates and not self.include_baseline:
            raise ValueError("sweep needs at least one candidate")

    # ------------------------------------------------------------------ #
    def run(self, server: Server, result_timeout: float = 300.0) -> SweepResult:
        """Evaluate every candidate (+ baseline) against ``server``."""
        backtester = self.backtester
        oracle = backtester.oracle(server, result_timeout=result_timeout)
        results: List[CandidateResult] = []
        baseline_mismatches: List[str] = []
        baseline_name = None
        if self.include_baseline:
            baseline_name = self.BASELINE_NAME
            baseline = backtester.evaluate(
                server, RecordedSchedule(), name=baseline_name,
                result_timeout=result_timeout,
            )
            results.append(baseline)
            reference = backtester.trace_scores(oracle, server.max_timesteps)
            baseline_mismatches = self._diff_baseline(baseline, reference)
        for name in sorted(self.candidates):
            results.append(backtester.evaluate(
                server, self.candidates[name], name=name,
                result_timeout=result_timeout,
            ))
        frontier = pareto_frontier(results)
        trace_header = backtester.trace.header
        return SweepResult(
            candidates=results,
            pareto=[c.name for c in frontier],
            baseline_name=baseline_name,
            baseline_mismatches=baseline_mismatches,
            composition={
                "workers": int(server.stats().get("num_workers", 1)),
                "replicas": (server.replicas.num_replicas
                             if server.replicas is not None else 0),
                "max_timesteps": int(server.max_timesteps),
            },
            trace_info={
                "records": len(backtester.records),
                "threshold": trace_header.get("threshold"),
                "max_timesteps": trace_header.get("max_timesteps"),
                "dataset": trace_header.get("dataset"),
                "preset": trace_header.get("preset"),
            },
            oracle_size=len(oracle),
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _diff_baseline(baseline: CandidateResult,
                       reference: CandidateResult) -> List[str]:
        """Exact-match diff between the re-served baseline and the trace's
        own telemetry (decision-derived block only — wall clock is a new
        measurement by definition)."""
        mismatches: List[str] = []
        recorded = {(rid, pred, exit_t)
                    for rid, pred, exit_t in reference.decisions}
        for rid, pred, exit_t in baseline.decisions:
            if (rid, pred, exit_t) not in recorded:
                mismatches.append(
                    f"request {rid}: replayed (prediction={pred}, "
                    f"exit_t={exit_t}) not in the recording"
                )
                if len(mismatches) >= 10:
                    mismatches.append("... (further mismatches elided)")
                    return mismatches
        for axis, mine, theirs in (
            ("agreement", baseline.agreement, reference.agreement),
            ("accuracy", baseline.accuracy, reference.accuracy),
            ("mean_exit", baseline.mean_exit, reference.mean_exit),
            ("exit_histogram", baseline.exit_histogram,
             reference.exit_histogram),
            ("energy_total", baseline.energy_total, reference.energy_total),
            ("edp_mean", baseline.edp_mean, reference.edp_mean),
        ):
            if mine != theirs:
                mismatches.append(
                    f"baseline {axis} {mine!r} != trace telemetry {theirs!r}"
                )
        return mismatches
