"""Deterministic load generation for the serving runtime.

The generator replays a seeded stream of single-sample requests against a
:class:`repro.serve.Server`, either *closed-loop* (submit as fast as
backpressure allows — measures capacity) or *open-loop* at a fixed arrival
rate (measures latency under a given offered load).  Streams are derived from
a dataset with a seeded permutation, so two runs — e.g. a static-T baseline
and a DT-SNN run, or a test and its reference — see byte-identical inputs in
identical order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..data.datasets import ArrayDataset
from .request import QueueFullError, RequestResult
from .server import Server

__all__ = ["request_stream", "LoadReport", "LoadGenerator"]


def request_stream(
    dataset: ArrayDataset,
    num_requests: int,
    seed: int = 0,
    shuffle: bool = True,
) -> Iterator[Tuple[np.ndarray, int]]:
    """Yield ``num_requests`` deterministic ``(input, label)`` pairs.

    The stream walks seeded permutations of the dataset, wrapping around with
    a fresh permutation when it runs past the end, so arbitrarily long runs
    stay deterministic and balanced.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    rng = np.random.default_rng(seed)
    emitted = 0
    while emitted < num_requests:
        order = rng.permutation(len(dataset)) if shuffle else np.arange(len(dataset))
        for index in order:
            if emitted >= num_requests:
                return
            yield dataset.inputs[index], int(dataset.labels[index])
            emitted += 1


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    offered: int
    completed: int
    dropped: int
    duration: float
    results: List[RequestResult] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def accuracy(self) -> Optional[float]:
        flags = [r.correct for r in self.results if r.correct is not None]
        if not flags:
            return None
        return float(np.mean(flags))

    def average_exit_timesteps(self) -> float:
        if not self.results:
            return 0.0
        return float(np.mean([r.exit_timestep for r in self.results]))


class LoadGenerator:
    """Submits a request stream to a server and gathers the outcome.

    Parameters
    ----------
    server:
        A started :class:`Server`.
    rate:
        Offered load in requests/second; ``None`` means closed-loop.
    burst:
        Arrival burstiness: requests arrive in back-to-back groups of this
        size (the *average* offered rate is unchanged — each burst is
        followed by a proportionally longer gap).  This is the bursty-
        admission profile: a burst of B requests lands in the queue at one
        instant, so a well-batched server admits all B in a single fill
        round.  Only meaningful with ``rate``; closed-loop submission is
        already maximally bursty.
    block:
        Closed-loop runs block on backpressure (True); open-loop runs
        typically use ``block=False`` so overload shows up as drops rather
        than as a silently throttled arrival process.
    """

    def __init__(
        self,
        server: Server,
        rate: Optional[float] = None,
        burst: int = 1,
        block: bool = True,
        submit_timeout: Optional[float] = 30.0,
        result_timeout: Optional[float] = 60.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for closed-loop)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.server = server
        self.rate = rate
        self.burst = int(burst)
        self.block = block
        self.submit_timeout = submit_timeout
        self.result_timeout = result_timeout
        self.clock = clock
        self.sleep = sleep

    def run(self, stream: Iterable[Tuple[np.ndarray, Optional[int]]]) -> LoadReport:
        """Drive the whole stream, wait for every accepted request."""
        start = self.clock()
        responses = []
        offered = dropped = 0
        for index, (inputs, label) in enumerate(stream):
            if self.rate is not None:
                # Quantize arrival times to burst boundaries: requests
                # [k*burst, (k+1)*burst) all fire at the k-th burst instant.
                scheduled = start + (index // self.burst) * self.burst / self.rate
                delay = scheduled - self.clock()
                if delay > 0:
                    self.sleep(delay)
            offered += 1
            try:
                responses.append(
                    self.server.submit(
                        inputs, label, block=self.block, timeout=self.submit_timeout
                    )
                )
            except QueueFullError:
                dropped += 1
        results = [response.result(timeout=self.result_timeout) for response in responses]
        duration = self.clock() - start
        return LoadReport(
            offered=offered,
            completed=len(results),
            dropped=dropped,
            duration=duration,
            results=results,
            stats=self.server.stats(),
        )
