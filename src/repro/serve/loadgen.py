"""Deterministic load generation for the serving runtime.

The generator replays a seeded stream of single-sample requests against a
:class:`repro.serve.Server`, either *closed-loop* (submit as fast as
backpressure allows — measures capacity) or *open-loop* at a fixed arrival
rate (measures latency under a given offered load).  Streams are derived from
a dataset with a seeded permutation, so two runs — e.g. a static-T baseline
and a DT-SNN run, or a test and its reference — see byte-identical inputs in
identical order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..data.datasets import ArrayDataset
from .request import QueueFullError, RequestResult
from .server import Server
from .storm import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    DeadlineExceededError,
    StormShedError,
)

__all__ = [
    "request_stream",
    "LoadReport",
    "LoadGenerator",
    "StormPhase",
    "storm_phases",
    "priority_cycle",
]


def request_stream(
    dataset: ArrayDataset,
    num_requests: int,
    seed: int = 0,
    shuffle: bool = True,
) -> Iterator[Tuple[np.ndarray, int]]:
    """Yield ``num_requests`` deterministic ``(input, label)`` pairs.

    The stream walks seeded permutations of the dataset, wrapping around with
    a fresh permutation when it runs past the end, so arbitrarily long runs
    stay deterministic and balanced.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    rng = np.random.default_rng(seed)
    emitted = 0
    while emitted < num_requests:
        order = rng.permutation(len(dataset)) if shuffle else np.arange(len(dataset))
        for index in order:
            if emitted >= num_requests:
                return
            yield dataset.inputs[index], int(dataset.labels[index])
            emitted += 1


@dataclass(frozen=True)
class StormPhase:
    """One piecewise-constant segment of an offered-load profile."""

    duration: float  # seconds of this phase
    rate: float  # offered requests/second during it

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")
        if self.rate <= 0:
            raise ValueError("phase rate must be positive")


def storm_phases(
    base_rate: float,
    storm_multiplier: float = 4.0,
    warmup: float = 1.0,
    storm: float = 2.0,
    recovery: float = 2.0,
) -> List[StormPhase]:
    """The canonical overload profile: calm → 4x-capacity storm → calm.

    ``base_rate`` should be at or below the measured serving capacity so the
    warmup and recovery segments are genuinely calm; the storm segment
    offers ``storm_multiplier`` times that.  Recovery is deliberately as
    long as the storm so the FSM's cooldown hysteresis has room to walk the
    guard back to NORMAL inside the run.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if storm_multiplier <= 1.0:
        raise ValueError("storm_multiplier must exceed 1 (it is a storm)")
    return [
        StormPhase(duration=warmup, rate=base_rate),
        StormPhase(duration=storm, rate=base_rate * storm_multiplier),
        StormPhase(duration=recovery, rate=base_rate),
    ]


def priority_cycle(
    mix: Dict[int, int] = None,
) -> Iterator[int]:
    """Deterministic priority-class pattern with the given integer mix.

    ``mix`` maps priority class to its per-cycle count (default
    ``{high: 1, normal: 2, low: 1}``); the generator emits classes
    round-robin within each cycle, forever.  Deterministic by construction —
    two runs see identical priority sequences, which is what makes the
    monotone shed-by-class assertion reproducible.
    """
    if mix is None:
        mix = {PRIORITY_HIGH: 1, PRIORITY_NORMAL: 2, PRIORITY_LOW: 1}
    if not mix or any(count < 0 for count in mix.values()) or not any(
        count > 0 for count in mix.values()
    ):
        raise ValueError("mix must contain at least one positive class count")
    cycle = [
        priority
        for priority in sorted(mix)
        for _ in range(mix[priority])
    ]
    while True:
        for priority in cycle:
            yield priority


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    offered: int
    completed: int
    dropped: int
    duration: float
    results: List[RequestResult] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    # Storm-profile bookkeeping (defaults keep positional construction
    # compatible): requests dropped past their deadline, drops split by
    # priority class, and the stream index of each accepted-and-completed
    # request (aligned with ``results``) so callers can re-derive which
    # inputs the completions correspond to.
    expired: int = 0
    dropped_by_class: Dict[int, int] = field(default_factory=dict)
    accepted_indices: List[int] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def accuracy(self) -> Optional[float]:
        flags = [r.correct for r in self.results if r.correct is not None]
        if not flags:
            return None
        return float(np.mean(flags))

    def average_exit_timesteps(self) -> float:
        if not self.results:
            return 0.0
        return float(np.mean([r.exit_timestep for r in self.results]))


class LoadGenerator:
    """Submits a request stream to a server and gathers the outcome.

    Parameters
    ----------
    server:
        A started :class:`Server`.
    rate:
        Offered load in requests/second; ``None`` means closed-loop.
    burst:
        Arrival burstiness: requests arrive in back-to-back groups of this
        size (the *average* offered rate is unchanged — each burst is
        followed by a proportionally longer gap).  This is the bursty-
        admission profile: a burst of B requests lands in the queue at one
        instant, so a well-batched server admits all B in a single fill
        round.  Only meaningful with ``rate``; closed-loop submission is
        already maximally bursty.
    block:
        Closed-loop runs block on backpressure (True); open-loop runs
        typically use ``block=False`` so overload shows up as drops rather
        than as a silently throttled arrival process.
    phases:
        Optional piecewise-constant rate schedule (:class:`StormPhase`
        list, e.g. from :func:`storm_phases`).  Mutually exclusive with
        ``rate``; past the end of the schedule arrivals continue at the
        final phase's rate.  Phase pacing ignores ``burst``.
    priorities:
        Optional iterable/iterator of priority classes consumed one per
        request (e.g. :func:`priority_cycle`); ``None`` submits everything
        at normal priority.
    deadline:
        Optional relative deadline (seconds from submission) attached to
        every request; expired requests count as ``expired`` in the report.
    """

    def __init__(
        self,
        server: Server,
        rate: Optional[float] = None,
        burst: int = 1,
        block: bool = True,
        submit_timeout: Optional[float] = 30.0,
        result_timeout: Optional[float] = 60.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        phases: Optional[List[StormPhase]] = None,
        priorities: Optional[Iterable[int]] = None,
        deadline: Optional[float] = None,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for closed-loop)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        if phases is not None:
            if rate is not None:
                raise ValueError("pass either rate or phases, not both")
            phases = list(phases)
            if not phases:
                raise ValueError("phases must be a non-empty list")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds")
        self.server = server
        self.rate = rate
        self.burst = int(burst)
        self.block = block
        self.submit_timeout = submit_timeout
        self.result_timeout = result_timeout
        self.clock = clock
        self.sleep = sleep
        self.phases = phases
        self.priorities = priorities
        self.deadline = deadline

    def _arrival_offsets(self) -> Iterator[float]:
        """Arrival offsets (seconds from run start) under the phase schedule.

        Each phase contributes arrivals at its own constant spacing; past the
        last phase boundary the final rate continues indefinitely, so the
        offered stream length — not the schedule — decides when the run ends.
        """
        start = end = 0.0
        for phase in self.phases:
            end = start + phase.duration
            spacing = 1.0 / phase.rate
            # Multiplicative (not accumulated) offsets: repeated `+= spacing`
            # drifts enough to spill an extra arrival across the boundary.
            arrival = 0
            while start + arrival * spacing < end:
                yield start + arrival * spacing
                arrival += 1
            start = end
        spacing = 1.0 / self.phases[-1].rate
        arrival = 0
        while True:
            yield end + arrival * spacing
            arrival += 1

    def run(self, stream: Iterable[Tuple[np.ndarray, Optional[int]]]) -> LoadReport:
        """Drive the whole stream, wait for every accepted request."""
        start = self.clock()
        pending: List[Tuple[int, object]] = []
        offered = dropped = 0
        dropped_by_class: Dict[int, int] = {}
        priorities = iter(self.priorities) if self.priorities is not None else None
        offsets = self._arrival_offsets() if self.phases is not None else None
        for index, (inputs, label) in enumerate(stream):
            if offsets is not None:
                scheduled = start + next(offsets)
                delay = scheduled - self.clock()
                if delay > 0:
                    self.sleep(delay)
            elif self.rate is not None:
                # Quantize arrival times to burst boundaries: requests
                # [k*burst, (k+1)*burst) all fire at the k-th burst instant.
                scheduled = start + (index // self.burst) * self.burst / self.rate
                delay = scheduled - self.clock()
                if delay > 0:
                    self.sleep(delay)
            offered += 1
            priority = PRIORITY_NORMAL if priorities is None else next(priorities)
            try:
                response = self.server.submit(
                    inputs,
                    label,
                    block=self.block,
                    timeout=self.submit_timeout,
                    priority=priority,
                    deadline=self.deadline,
                )
            except QueueFullError:
                # StormShedError is a QueueFullError: shed-by-class and
                # queue-full backpressure are both "the server refused this
                # arrival", split by class for the monotonicity assertions.
                dropped += 1
                dropped_by_class[priority] = dropped_by_class.get(priority, 0) + 1
            else:
                pending.append((index, response))
        results: List[RequestResult] = []
        accepted_indices: List[int] = []
        expired = 0
        for index, response in pending:
            try:
                result = response.result(timeout=self.result_timeout)
            except DeadlineExceededError:
                expired += 1
            else:
                results.append(result)
                accepted_indices.append(index)
        duration = self.clock() - start
        return LoadReport(
            offered=offered,
            completed=len(results),
            dropped=dropped,
            duration=duration,
            results=results,
            stats=self.server.stats(),
            expired=expired,
            dropped_by_class=dropped_by_class,
            accepted_indices=accepted_indices,
        )
