"""Synchronous slot-based inference engine over a :class:`SpikingNetwork`.

The engine owns a variable set of *slots*, one in-flight request each.  A call
to :meth:`step` advances every occupied slot by one timestep of the SNN in a
single batched forward pass, applies the exit policy per slot, and returns the
slots that finished.  Because each slot carries its own local timestep counter
and running logit sum — and every LIF membrane row belongs to exactly one
slot — requests can be admitted *mid-horizon* into slots freed by early exits
(continuous batching) and each sample's trajectory is bitwise identical to
running it alone (see :meth:`repro.core.DynamicTimestepInference.infer_from_logits`).
That identity requires a *deterministic* encoder (direct or event-frame, the
paper's settings); a stochastic encoder such as Poisson rate coding draws
from a shared RNG, so its spike trains inherently depend on batch composition.

Exited samples are compacted out immediately, so the forward width always
equals the number of live requests: early exit buys back real FLOPs, which is
what the serving layer converts into throughput.

By default each step executes through the :mod:`repro.runtime` compiled plan
(graph-free fused kernels, per-slot stem cache) when the model lowers; the
define-by-run Tensor path remains available as the bitwise-identical
reference oracle via ``use_runtime=False`` or ``REPRO_RUNTIME=0``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.policies import ExitPolicy
from ..runtime import executor_for
from ..snn.encoding import DirectEncoder
from ..snn.network import SpikingNetwork
from .request import Request, Response, clone_exception

__all__ = ["AdmissionRejectedError", "CompletedSample", "InferenceEngine"]


class AdmissionRejectedError(RuntimeError):
    """A whole admission round was rejected *before any state mutation*.

    Raised by :meth:`InferenceEngine.admit_batch` when validation fails
    (shape mismatch against the live batch, encoder precondition).  Two
    guarantees let callers keep serving: the engine's state is untouched
    (no slots, no membrane rows), and every future in the rejected round has
    already been resolved with this error — which is why
    :class:`~repro.serve.ContinuousBatcher` absorbs it instead of
    fail-stopping the worker.  The original error is chained as
    ``__cause__``.
    """


@dataclass
class CompletedSample:
    """A request that satisfied the exit policy (or hit the horizon).

    ``threshold`` is the *effective* threshold the exit decision used — the
    request's stamped epoch when it carries one, the live policy knob
    otherwise — so the recorded value is provably the deciding one (the PR 5
    torn-read fix).  ``epoch``/``brownout`` echo the stamp; ``horizon`` is
    the effective timestep cap the slot ran under.
    """

    request: Request
    response: Response
    prediction: int
    exit_timestep: int
    score: float
    threshold: Optional[float]
    start_time: float
    epoch: Optional[int] = None
    brownout: bool = False
    horizon: Optional[int] = None


@dataclass
class _Slot:
    request: Request
    response: Response
    start_time: float
    local_t: int = 0
    # Interned stem-memo key prefix: the clip's content digest, computed
    # once at admission (see _intern_stem_key).  None when the engine does
    # not intern (no memo, or the encoder lacks a frame_index rule).
    stem_key: Optional[bytes] = None


class InferenceEngine:
    """Batched dynamic-timestep inference with per-slot state management."""

    def __init__(
        self,
        model: SpikingNetwork,
        policy: ExitPolicy,
        max_timesteps: Optional[int] = None,
        use_runtime: Optional[bool] = None,
        collect_statistics: bool = True,
    ):
        if max_timesteps is None:
            max_timesteps = model.default_timesteps
        if max_timesteps < 1:
            raise ValueError("max_timesteps must be a positive integer")
        self.model = model
        self.policy = policy
        self.max_timesteps = int(max_timesteps)
        model.eval()
        model.reset_state()
        # The compiled-plan fast path (bitwise identical to the Tensor path);
        # None means the model did not lower or the runtime is disabled, in
        # which case every step runs through the define-by-run oracle.
        # collect_statistics=False is for engines that share one model's LIF
        # modules across worker threads (the spike counters would race).
        self._executor = executor_for(model, use_runtime,
                                      collect_statistics=collect_statistics)
        # Stem-memo keys are interned at admission: one content digest per
        # request, combined with the encoder's frame_index per timestep,
        # instead of copying every row's frame bytes on every step.  Needs
        # the encoder to expose its timestep -> recorded-frame rule; without
        # it, step() falls back to exact-frame-bytes keys.
        self._intern_keys = (
            self._executor is not None
            and self._executor.memo_enabled
            and hasattr(model.encoder, "frame_index")
        )
        self._slots: List[_Slot] = []
        # Pinned on the first successful admission: the engine serves one
        # model with one sample shape for its lifetime, and validating
        # against the pin (not just the live batch) is what keeps a
        # wrong-shaped request arriving at an IDLE engine inside the typed
        # rejection path — the executor still holds residual stem/scratch
        # arrays of the real shape, and a mismatch would otherwise escape
        # admit_batch's guard and take down the whole worker.
        self._sample_shape: Optional[Tuple[int, ...]] = None
        self._running_sum: Optional[np.ndarray] = None  # (active, num_classes)
        # Work counters: the serving benchmark compares these against the
        # static baseline (active_count * steps == SNN forward rows executed).
        self.total_steps = 0
        self.total_sample_timesteps = 0
        # Clip-digest computations (exactly one per admitted request when
        # interning; the key-interning regression test pins this).
        self.stem_hash_count = 0

    # ------------------------------------------------------------------ #
    @property
    def active_count(self) -> int:
        return len(self._slots)

    @property
    def idle(self) -> bool:
        return not self._slots

    @property
    def fast_path(self) -> bool:
        """True when steps execute through the compiled-plan runtime."""
        return self._executor is not None

    def op_timings(self):
        """Per-op wall-clock profile from the executor (``REPRO_TRACE_OPS=1``).

        ``None`` on the Tensor oracle (no op list to attribute time to) or
        when tracing is off; otherwise the executor's accumulated
        ``[{index, op, calls, seconds}, ...]`` breakdown.
        """
        if self._executor is None or not self._executor.trace_ops:
            return None
        return self._executor.op_timings()

    # ------------------------------------------------------------------ #
    def admit(self, request: Request, response: Response, start_time: float) -> None:
        """Occupy one slot with a fresh request (see :meth:`admit_batch`)."""
        self.admit_batch([(request, response, start_time)])

    def admit_batch(
        self, admissions: Sequence[Tuple[Request, Response, float]]
    ) -> None:
        """Occupy slots with a whole round of fresh requests at once.

        Admission may happen *mid-horizon*: the new rows are spliced into
        the live batch while other slots are partway through their timestep
        loops, and each sample's trajectory is bitwise-identical to running
        the request alone (fresh zero membranes, per-slot timestep counters,
        deterministic encoding — per-sample batch invariance).

        Batching matters on bursty traffic: state extension (`running_sum`,
        executor membranes / Tensor-path LIF rows) happens **once** per call
        instead of once per request, and under direct encoding the whole
        burst's stateless stem prefix is computed in a single batched GEMM
        instead of one single-row GEMM per request — so admission cost per
        request stays flat in the burst size.  The stem rows are replayed
        from cache for every subsequent :meth:`step` of each slot's
        lifetime; the Tensor oracle (``use_runtime=False``) performs the
        same splice through :meth:`SpikingNetwork.extend_state`.
        """
        if not admissions:
            return
        count = len(admissions)
        # Validate and encode BEFORE touching any engine state, so a raise
        # here (wrong encoder type, heterogeneous input shapes) leaves the
        # engine consistent — no slots without matching state rows.  The
        # whole drained round fails together: these requests were already
        # popped from the queue, so resolving their futures with the error
        # is the only way their clients ever hear about it.
        try:
            # Shape homogeneity holds on EVERY path (oracle and event
            # encoders stack lazily at step() time, where a mismatch would
            # take down the worker and its in-flight neighbours): one
            # malformed request must fail here, at its own admission round,
            # not poison the live batch later.  The reference shape is the
            # engine-lifetime pin when one exists — an idle engine must
            # reject a wrong-shaped round, not adopt its shape.
            expected = self._sample_shape
            if expected is None:
                expected = (
                    self._slots[0].request.inputs.shape
                    if self._slots
                    else admissions[0][0].inputs.shape
                )
            for request, _, _ in admissions:
                if request.inputs.shape != expected:
                    raise ValueError(
                        f"request {request.request_id} input shape "
                        f"{request.inputs.shape} does not match the served "
                        f"sample shape {expected}"
                    )
            # Intern the stem-memo key bases here too: digesting can fail
            # on pathological inputs (un-castable dtypes), and it must do
            # so before any slot or state row exists.
            stem_keys = (
                [self._intern_stem_key(request) for request, _, _ in admissions]
                if self._intern_keys
                else [None] * count
            )
            frames = None
            if self._executor is not None and self._executor.stem_enabled:
                # The aligned stem cache presumes direct encoding (constant
                # frame per sample, so the timestep argument below is
                # irrelevant).  Guard the precondition explicitly: caching a
                # t=0 frame for a time-varying encoder would silently replay
                # the wrong stem forever.  Event encoders instead go through
                # the content-keyed memo at step() time.
                encoder = self.model.encoder
                if not isinstance(encoder, DirectEncoder):
                    raise RuntimeError(
                        "aligned stem cache requires direct encoding "
                        f"(got {type(encoder).__name__}); time-varying "
                        "encoders use the keyed stem memo instead"
                    )
                inputs = np.stack(
                    [request.inputs for request, _, _ in admissions]
                ).astype(np.float32, copy=False)
                frames = encoder(inputs, 0).data
        except Exception as error:
            # Exception, not BaseException: KeyboardInterrupt/SystemExit must
            # shut the process down, not get absorbed as a round rejection.
            rejection = AdmissionRejectedError(
                f"admission round of {count} rejected: {error}"
            )
            rejection.__cause__ = error
            for _, response, _ in admissions:
                # Per-future clone: concurrent result() callers re-raise the
                # stored exception and would race on one shared traceback.
                response.set_exception(clone_exception(rejection))
            raise rejection
        self._sample_shape = expected
        for (request, response, start_time), stem_key in zip(admissions, stem_keys):
            self._slots.append(
                _Slot(
                    request=request,
                    response=response,
                    start_time=start_time,
                    stem_key=stem_key,
                )
            )
        if self._executor is not None:
            self._executor.extend_rows(count, frames=frames)
        else:
            self.model.extend_state(count)
        if self._running_sum is not None:
            fresh = np.zeros(
                (count, self._running_sum.shape[1]), dtype=self._running_sum.dtype
            )
            self._running_sum = np.concatenate([self._running_sum, fresh], axis=0)

    def _intern_stem_key(self, request: Request) -> bytes:
        """Digest a request's clip once; per-step keys append a frame index.

        The memo key must determine the encoded frame bytes: for a
        deterministic encoder those are a pure function of (clip content,
        recorded-frame index), so a 128-bit BLAKE2b digest of the
        shape/dtype-prefixed clip bytes — computed *once per request* —
        replaces per-row-per-step ``tobytes()`` copies.  Replayed clips
        digest identically and keep their cross-request hits; padded tail
        timesteps share a frame index and keep their free dedupe.  Two
        sharing properties of the old byte-exact keys are traded away: the
        collision probability becomes ~2^-64 instead of zero, and a frame
        whose bytes happen to recur in a *different* clip (e.g. an all-zero
        frame in sparse event data) no longer shares its memo entry — the
        workload the memo targets (whole-clip replays) is unaffected.  See
        docs/ARCHITECTURE.md.
        """
        inputs = np.ascontiguousarray(request.inputs, dtype=np.float32)
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr((inputs.shape, inputs.dtype.str)).encode())
        # Hash the array buffer directly — tobytes() would re-copy the
        # whole clip, the very per-request O(clip) cost interning removes.
        digest.update(inputs.data)
        self.stem_hash_count += 1
        return digest.digest()

    def fail_active(self, exception: BaseException) -> int:
        """Abort every in-flight request (non-graceful shutdown).

        Only this engine's *own* state is torn down: its slots, running sums
        and executor rows (membranes + aligned stem).  On the fast path the
        model's Tensor-side LIF state is untouched — it is not used by this
        engine, and with multi-worker plan sharing the model object may be
        serving other replicas whose in-flight trajectories must not be
        clobbered by a neighbour's abort.  The shared content-keyed stem
        memo also survives: its entries are pure functions of frozen weights
        and frame bytes, never of slot state.
        """
        failed = 0
        for slot in self._slots:
            slot.response.set_exception(clone_exception(exception))
            failed += 1
        self._slots = []
        self._running_sum = None
        # The shape pin exists to protect residual executor arrays from a
        # wrong-shaped idle-engine admission; the teardown below wipes those
        # arrays, so the pin resets too — a malformed FIRST round (pinned
        # before its shape ever met the model) must not leave a recovered
        # engine rejecting correct traffic forever.
        self._sample_shape = None
        if self._executor is not None:
            self._executor.reset_state()
        else:
            self.model.reset_state()
        return failed

    def invalidate_stem(self) -> None:
        """Drop cached stem rows after an in-place weight reload.

        Public hook for replica weight-reload propagation: on the fast path
        the executor's aligned stem rows were computed under the old
        weights; the content-keyed memo needs no call (it revalidates
        against the plan's ``stem_signature``), and the Tensor oracle holds
        no stem state at all.
        """
        if self._executor is not None:
            self._executor.invalidate_stem()

    # ------------------------------------------------------------------ #
    def _encode(self, inputs: np.ndarray, local_ts: np.ndarray) -> Tensor:
        """Encode each slot's input at that slot's *own* timestep index."""
        encoder = self.model.encoder
        unique = np.unique(local_ts)
        if isinstance(encoder, DirectEncoder) or unique.size == 1:
            # Direct encoding ignores the timestep; a homogeneous batch needs
            # only one call either way.
            return encoder(inputs, int(unique[0]))
        frames: Optional[np.ndarray] = None
        for t in unique:
            rows = np.where(local_ts == t)[0]
            frame = encoder(inputs[rows], int(t)).data
            if frames is None:
                frames = np.zeros((inputs.shape[0],) + frame.shape[1:], dtype=frame.dtype)
            frames[rows] = frame
        return Tensor(frames)

    def step(self) -> List[CompletedSample]:
        """Advance all occupied slots one timestep; return completed requests."""
        if not self._slots:
            return []
        inputs = np.stack([slot.request.inputs for slot in self._slots]).astype(
            np.float32, copy=False
        )
        local_ts = np.array([slot.local_t for slot in self._slots], dtype=np.int64)

        with no_grad():
            frame = self._encode(inputs, local_ts)
            if self._executor is not None:
                stem_keys = None
                if self._intern_keys:
                    # Content-keyed stem memo (event streams) with interned
                    # keys: each slot's clip was digested once at admission,
                    # so the per-step key is that digest plus the encoder's
                    # recorded-frame index — no frame-byte copies on the hot
                    # path.  Replayed clips hit rows cached by earlier
                    # requests — on this engine or on any replica sharing
                    # the plan — and padded tail frames (min(t, T-1)) dedupe
                    # for free through the shared frame index.
                    encoder = self.model.encoder
                    stem_keys = [
                        slot.stem_key
                        + encoder.frame_index(
                            slot.request.inputs.shape[0], slot.local_t
                        ).to_bytes(4, "little")
                        for slot in self._slots
                    ]
                elif self._executor.memo_enabled:
                    # Fallback for memo-capable encoders without a
                    # frame_index rule: key on the exact bytes of each
                    # slot's encoded frame, prefixed with its shape+dtype
                    # (raw bytes alone would let two all-zero frames of
                    # transposed resolutions collide).
                    data = frame.data
                    header = repr((data.shape[1:], data.dtype.str)).encode()
                    stem_keys = [
                        header + data[row].tobytes() for row in range(data.shape[0])
                    ]
                logits = self._executor.step(frame.data, stem_keys=stem_keys)
            else:
                spikes = self.model.features(frame)
                logits = self.model.classifier(spikes).data

        if self._running_sum is None:
            self._running_sum = np.zeros_like(logits)
        self._running_sum = self._running_sum + logits
        horizon_used = local_ts + 1
        cumulative = self._running_sum / horizon_used[:, None].astype(self._running_sum.dtype)

        # Per-slot effective knobs.  The live policy threshold is read ONCE,
        # up front — the PR 5 bug was reading it again after should_exit, so
        # a concurrent controller nudge landed between the decision and the
        # record.  A slot carrying a ThresholdEpoch runs under its *stamped*
        # threshold/horizon instead of the live knob (brown-out, replay
        # pinning), so the recorded value is the deciding one by construction.
        live_threshold = getattr(self.policy, "threshold", None)
        if live_threshold is not None:
            live_threshold = float(live_threshold)
        thresholds: List[Optional[float]] = []
        horizons = np.empty(len(self._slots), dtype=np.int64)
        heterogeneous = False
        for index, slot in enumerate(self._slots):
            epoch = slot.request.epoch
            slot_threshold = live_threshold
            slot_horizon = self.max_timesteps
            if epoch is not None:
                if epoch.threshold is not None:
                    slot_threshold = float(epoch.threshold)
                if epoch.horizon is not None:
                    slot_horizon = min(slot_horizon, int(epoch.horizon))
            thresholds.append(slot_threshold)
            horizons[index] = slot_horizon
            if slot_threshold != live_threshold or slot_horizon != self.max_timesteps:
                heterogeneous = True

        policy_mask = self.policy.should_exit(cumulative)
        if heterogeneous:
            direction = getattr(self.policy, "exit_when", None)
            override = np.array(
                [t is not None and t != live_threshold for t in thresholds],
                dtype=bool,
            )
            if override.any() and direction in ("below", "above"):
                # Evaluate overridden rows against their stamped thresholds
                # via score(); casting the threshold array to the score dtype
                # reproduces the weak-scalar comparison should_exit performs
                # with a live float knob, so a pinned row decides bitwise
                # identically to an engine whose live threshold equals the pin.
                scores_all = np.asarray(self.policy.score(cumulative))
                threshold_array = np.asarray(
                    [0.0 if t is None else t for t in thresholds],
                    dtype=scores_all.dtype,
                )
                if direction == "below":
                    stamped_mask = scores_all < threshold_array
                else:
                    stamped_mask = scores_all > threshold_array
                policy_mask = np.where(override, stamped_mask, policy_mask)
        exit_now = policy_mask | (horizon_used >= horizons)
        self.total_steps += 1
        self.total_sample_timesteps += len(self._slots)

        completed: List[CompletedSample] = []
        if exit_now.any():
            exit_rows = np.where(exit_now)[0]
            predictions = np.argmax(cumulative[exit_rows], axis=-1)
            scores = np.asarray(self.policy.score(cumulative[exit_rows]), dtype=np.float64)  # dtype-ok: decision-side score bookkeeping is sanctioned float64 (Server contract)
            for row, prediction, score in zip(exit_rows, predictions, scores):
                slot = self._slots[row]
                epoch = slot.request.epoch
                completed.append(
                    CompletedSample(
                        request=slot.request,
                        response=slot.response,
                        prediction=int(prediction),
                        exit_timestep=int(horizon_used[row]),
                        score=float(score),
                        threshold=thresholds[row],
                        start_time=slot.start_time,
                        epoch=None if epoch is None else epoch.epoch,
                        brownout=False if epoch is None else epoch.brownout,
                        horizon=int(horizons[row]),
                    )
                )
            keep = ~exit_now
            self._slots = [slot for slot, k in zip(self._slots, keep) if k]
            self._running_sum = self._running_sum[keep]
            if self._executor is not None:
                self._executor.compact_rows(keep)
            else:
                self.model.compact_state(keep)

        for slot in self._slots:
            slot.local_t += 1
        return completed
