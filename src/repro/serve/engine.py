"""Synchronous slot-based inference engine over a :class:`SpikingNetwork`.

The engine owns a variable set of *slots*, one in-flight request each.  A call
to :meth:`step` advances every occupied slot by one timestep of the SNN in a
single batched forward pass, applies the exit policy per slot, and returns the
slots that finished.  Because each slot carries its own local timestep counter
and running logit sum — and every LIF membrane row belongs to exactly one
slot — requests can be admitted *mid-horizon* into slots freed by early exits
(continuous batching) and each sample's trajectory is bitwise identical to
running it alone (see :meth:`repro.core.DynamicTimestepInference.infer_from_logits`).
That identity requires a *deterministic* encoder (direct or event-frame, the
paper's settings); a stochastic encoder such as Poisson rate coding draws
from a shared RNG, so its spike trains inherently depend on batch composition.

Exited samples are compacted out immediately, so the forward width always
equals the number of live requests: early exit buys back real FLOPs, which is
what the serving layer converts into throughput.

By default each step executes through the :mod:`repro.runtime` compiled plan
(graph-free fused kernels, per-slot stem cache) when the model lowers; the
define-by-run Tensor path remains available as the bitwise-identical
reference oracle via ``use_runtime=False`` or ``REPRO_RUNTIME=0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.policies import ExitPolicy
from ..runtime import executor_for
from ..snn.encoding import DirectEncoder
from ..snn.network import SpikingNetwork
from .request import Request, Response

__all__ = ["CompletedSample", "InferenceEngine"]


@dataclass
class CompletedSample:
    """A request that satisfied the exit policy (or hit the horizon)."""

    request: Request
    response: Response
    prediction: int
    exit_timestep: int
    score: float
    threshold: Optional[float]
    start_time: float


@dataclass
class _Slot:
    request: Request
    response: Response
    start_time: float
    local_t: int = 0


class InferenceEngine:
    """Batched dynamic-timestep inference with per-slot state management."""

    def __init__(
        self,
        model: SpikingNetwork,
        policy: ExitPolicy,
        max_timesteps: Optional[int] = None,
        use_runtime: Optional[bool] = None,
    ):
        if max_timesteps is None:
            max_timesteps = model.default_timesteps
        if max_timesteps < 1:
            raise ValueError("max_timesteps must be a positive integer")
        self.model = model
        self.policy = policy
        self.max_timesteps = int(max_timesteps)
        model.eval()
        model.reset_state()
        # The compiled-plan fast path (bitwise identical to the Tensor path);
        # None means the model did not lower or the runtime is disabled, in
        # which case every step runs through the define-by-run oracle.
        self._executor = executor_for(model, use_runtime)
        self._slots: List[_Slot] = []
        self._running_sum: Optional[np.ndarray] = None  # (active, num_classes)
        # Work counters: the serving benchmark compares these against the
        # static baseline (active_count * steps == SNN forward rows executed).
        self.total_steps = 0
        self.total_sample_timesteps = 0

    # ------------------------------------------------------------------ #
    @property
    def active_count(self) -> int:
        return len(self._slots)

    @property
    def idle(self) -> bool:
        return not self._slots

    @property
    def fast_path(self) -> bool:
        """True when steps execute through the compiled-plan runtime."""
        return self._executor is not None

    # ------------------------------------------------------------------ #
    def admit(self, request: Request, response: Response, start_time: float) -> None:
        """Occupy a slot with a fresh request (membrane rows start at zero).

        Admission may happen *mid-horizon*: the new row is spliced into the
        live batch while other slots are partway through their timestep
        loops, and the per-sample trajectory is bitwise-identical to running
        the request alone (fresh zero membranes, per-slot timestep counters,
        deterministic encoding).  On the compiled-plan fast path the slot's
        stateless stem prefix is computed once here (float32, one row) and
        replayed from cache for every subsequent :meth:`step` of the slot's
        lifetime; the Tensor oracle (``use_runtime=False``) performs the
        same splice through :meth:`SpikingNetwork.extend_state`.
        """
        self._slots.append(_Slot(request=request, response=response, start_time=start_time))
        if self._executor is not None:
            frames = None
            if self._executor.stem_enabled:
                # Direct encoding only (the stem-cache precondition), so the
                # timestep argument is irrelevant: this row's stateless
                # prefix is computed once here and replayed every step of
                # the slot's lifetime.
                frames = self.model.encoder(request.inputs[None], 0).data
            self._executor.extend_rows(1, frames=frames)
        else:
            self.model.extend_state(1)
        if self._running_sum is not None:
            fresh = np.zeros((1, self._running_sum.shape[1]), dtype=self._running_sum.dtype)
            self._running_sum = np.concatenate([self._running_sum, fresh], axis=0)

    def fail_active(self, exception: BaseException) -> int:
        """Abort every in-flight request (non-graceful shutdown)."""
        failed = 0
        for slot in self._slots:
            slot.response.set_exception(exception)
            failed += 1
        self._slots = []
        self._running_sum = None
        if self._executor is not None:
            self._executor.reset_state()
        self.model.reset_state()
        return failed

    # ------------------------------------------------------------------ #
    def _encode(self, inputs: np.ndarray, local_ts: np.ndarray) -> Tensor:
        """Encode each slot's input at that slot's *own* timestep index."""
        encoder = self.model.encoder
        unique = np.unique(local_ts)
        if isinstance(encoder, DirectEncoder) or unique.size == 1:
            # Direct encoding ignores the timestep; a homogeneous batch needs
            # only one call either way.
            return encoder(inputs, int(unique[0]))
        frames: Optional[np.ndarray] = None
        for t in unique:
            rows = np.where(local_ts == t)[0]
            frame = encoder(inputs[rows], int(t)).data
            if frames is None:
                frames = np.zeros((inputs.shape[0],) + frame.shape[1:], dtype=frame.dtype)
            frames[rows] = frame
        return Tensor(frames)

    def step(self) -> List[CompletedSample]:
        """Advance all occupied slots one timestep; return completed requests."""
        if not self._slots:
            return []
        inputs = np.stack([slot.request.inputs for slot in self._slots]).astype(
            np.float32, copy=False
        )
        local_ts = np.array([slot.local_t for slot in self._slots], dtype=np.int64)

        with no_grad():
            frame = self._encode(inputs, local_ts)
            if self._executor is not None:
                logits = self._executor.step(frame.data)
            else:
                spikes = self.model.features(frame)
                logits = self.model.classifier(spikes).data

        if self._running_sum is None:
            self._running_sum = np.zeros_like(logits)
        self._running_sum = self._running_sum + logits
        horizon_used = local_ts + 1
        cumulative = self._running_sum / horizon_used[:, None].astype(self._running_sum.dtype)

        exit_now = self.policy.should_exit(cumulative) | (horizon_used >= self.max_timesteps)
        self.total_steps += 1
        self.total_sample_timesteps += len(self._slots)

        completed: List[CompletedSample] = []
        if exit_now.any():
            exit_rows = np.where(exit_now)[0]
            predictions = np.argmax(cumulative[exit_rows], axis=-1)
            scores = np.asarray(self.policy.score(cumulative[exit_rows]), dtype=np.float64)
            threshold = getattr(self.policy, "threshold", None)
            for row, prediction, score in zip(exit_rows, predictions, scores):
                slot = self._slots[row]
                completed.append(
                    CompletedSample(
                        request=slot.request,
                        response=slot.response,
                        prediction=int(prediction),
                        exit_timestep=int(horizon_used[row]),
                        score=float(score),
                        threshold=None if threshold is None else float(threshold),
                        start_time=slot.start_time,
                    )
                )
            keep = ~exit_now
            self._slots = [slot for slot, k in zip(self._slots, keep) if k]
            self._running_sum = self._running_sum[keep]
            if self._executor is not None:
                self._executor.compact_rows(keep)
            else:
                self.model.compact_state(keep)

        for slot in self._slots:
            slot.local_t += 1
        return completed
