"""Overload resilience: the load-storm admission FSM and accuracy brown-out.

A serving fleet sized for millions of users treats overload as a *mode*, not
an error: the interesting question is never "did the queue fill" but "what
does the system degrade first, and how does it come back".  This module is
that policy layer, ported from the storm-guard / circuit-breaker admission
pattern of low-latency trading gateways and specialized to DT-SNN's unique
knob — the entropy threshold, which can trade accuracy for latency smoothly
instead of queueing to death:

* :class:`StormGuard` — a three-state FSM (``NORMAL → WARN → STORM``) driven
  by two pressure signals the serving stack already measures: admission-queue
  depth (as a fraction of capacity) and rolling p95 latency (as a multiple of
  the SLA target, when one is known).  Escalation is immediate; recovery is
  hysteretic — signals must fall *well below* the entry watermark
  (``exit_fraction``) for ``cooldown`` consecutive evaluations, and the FSM
  steps down one level at a time — so a storm's trailing edge cannot flap the
  guard open and shut.
* **Priority shedding** — requests carry a priority class
  (:data:`PRIORITY_HIGH` < :data:`PRIORITY_NORMAL` < :data:`PRIORITY_LOW`;
  lower value = more important).  Under WARN the guard sheds the lowest
  class at the door; under STORM only the highest class is admitted.  Sheds
  raise :class:`StormShedError`, a :class:`~repro.serve.QueueFullError`
  subclass, so every existing backpressure handler (the load generator, the
  CLI) treats them as drops without modification.
* **Graceful accuracy brown-out** — under STORM the guard escalates the exit
  threshold to its aggressive bound (the calibrated accuracy envelope the
  operator signed off on, via the SLA controller's bounds or an explicit
  knob) and caps the engine horizon, so admitted traffic exits earlier and
  the backlog drains at reduced accuracy instead of unbounded latency.  Both
  overrides flow through per-request :class:`~repro.serve.ThresholdEpoch`
  stamps — never through shared mutable state — so recovery is per-request
  exact: the first request admitted after the storm clears runs at full
  accuracy while storm-stamped stragglers finish under their recorded knobs.

Deadlines ride along: a request may carry an absolute deadline (server clock
domain), and the dispatch layers drop expired requests with
:class:`DeadlineExceededError` before wasting engine timesteps on an answer
nobody is waiting for.

See docs/RESILIENCE.md for the full state machine and its proof obligations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..analysis.lockorder import named_lock
from .request import QueueFullError

__all__ = [
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "PRIORITY_NAMES",
    "StormState",
    "StormConfig",
    "StormGuard",
    "StormShedError",
    "DeadlineExceededError",
]

# Priority classes: lower value = more important (shed order is reversed).
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2
PRIORITY_NAMES = {PRIORITY_HIGH: "high", PRIORITY_NORMAL: "normal",
                  PRIORITY_LOW: "low"}


class StormState:
    """FSM states (string constants) and their numeric severity codes."""

    NORMAL = "normal"
    WARN = "warn"
    STORM = "storm"

    CODES = {NORMAL: 0, WARN: 1, STORM: 2}
    FROM_CODE = {0: NORMAL, 1: WARN, 2: STORM}


class StormShedError(QueueFullError):
    """A submission shed at the door by the storm guard.

    Subclasses :class:`QueueFullError` deliberately: to every existing
    backpressure consumer (load generator, CLI, client retry loops) a storm
    shed *is* a rejection — the subclass only adds which state and priority
    class made the decision.
    """

    def __init__(self, message: str, state: str, priority: int):
        super().__init__(message)
        self.state = state
        self.priority = int(priority)


class DeadlineExceededError(RuntimeError):
    """A request's deadline expired before it reached an engine slot.

    Raised through the request's future by the dispatch layer that popped it
    (thread batcher or replica forwarder): spending timesteps on an answer
    whose client has already given up is the purest waste a storm can cause.
    """


@dataclass
class StormConfig:
    """Watermarks and hysteresis for the :class:`StormGuard` FSM.

    Parameters
    ----------
    queue_warn / queue_storm:
        Queue-depth fractions of capacity that enter WARN / STORM.
    p95_warn / p95_storm:
        Rolling-p95 latency as a multiple of ``target_p95`` that enters
        WARN / STORM.  Ignored until a target is known (explicit or from the
        SLA controller) and telemetry has latency samples.
    exit_fraction:
        Hysteresis: an evaluation only counts as *calm* when every signal is
        below ``exit_fraction`` times the current state's entry watermark.
    cooldown:
        Consecutive calm evaluations required to step down one level.
    min_interval:
        Minimum seconds between FSM evaluations (0 = evaluate every call).
        Bounds the per-submission cost under a flood.
    target_p95:
        The latency SLA in clock units; ``None`` defers to the attached
        controller's ``target_p95_latency`` (or disables the p95 signal).
    horizon_cap:
        Brown-out: maximum engine timesteps stamped into epochs under STORM
        (``None`` leaves the horizon alone).
    brownout_threshold:
        Brown-out: the aggressive exit threshold stamped into epochs under
        STORM.  ``None`` defers to the controller's aggressive bound
        (``max_threshold`` when ``aggressive_is_higher``, else
        ``min_threshold``); with neither, the live threshold is kept.
    """

    queue_warn: float = 0.5
    queue_storm: float = 0.85
    p95_warn: float = 1.5
    p95_storm: float = 3.0
    exit_fraction: float = 0.6
    cooldown: int = 3
    min_interval: float = 0.0
    target_p95: Optional[float] = None
    horizon_cap: Optional[int] = None
    brownout_threshold: Optional[float] = None

    def __post_init__(self):
        if not 0.0 < self.queue_warn <= self.queue_storm:
            raise ValueError("need 0 < queue_warn <= queue_storm")
        if not 0.0 < self.p95_warn <= self.p95_storm:
            raise ValueError("need 0 < p95_warn <= p95_storm")
        if not 0.0 < self.exit_fraction <= 1.0:
            raise ValueError("exit_fraction must be in (0, 1]")
        if self.cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if self.horizon_cap is not None and self.horizon_cap < 1:
            raise ValueError("horizon_cap must be >= 1")


class StormGuard:
    """NORMAL → WARN → STORM admission FSM over the serving stack's signals.

    The guard owns no traffic: :meth:`observe` evaluates the signals (called
    by the server on every submission), :meth:`admit` gates one request by
    priority class, and :meth:`effective` reports the brown-out overrides
    the server stamps into each request's :class:`~repro.serve.ThresholdEpoch`.
    Everything is thread-safe; transitions are reported to the telemetry
    sink (``record_storm_state``) when it has one.
    """

    def __init__(
        self,
        queue,
        telemetry,
        config: Optional[StormConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        controller=None,
        policy=None,
    ):
        self.queue = queue
        self.telemetry = telemetry
        self.config = config or StormConfig()
        self.clock = clock
        self.controller = controller
        self.policy = policy
        self._lock = named_lock("serve.storm")
        self._state = StormState.NORMAL
        self._calm = 0
        self._last_eval: Optional[float] = None
        # (timestamp, state) transition log, bounded; tests and stats read it.
        self.transitions: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_code(self) -> int:
        return StormState.CODES[self.state]

    # ------------------------------------------------------------------ #
    def _target_p95(self) -> Optional[float]:
        if self.config.target_p95 is not None:
            return self.config.target_p95
        if self.controller is not None:
            return float(self.controller.target_p95_latency)
        return None

    def _signals(self) -> Tuple[float, Optional[float]]:
        """(queue-depth fraction, p95/target ratio or None)."""
        depth_fraction = self.queue.depth() / float(self.queue.capacity)
        ratio = None
        target = self._target_p95()
        if target:
            p95 = self.telemetry.recent_p95()
            if p95 is not None:
                ratio = p95 / target
        return depth_fraction, ratio

    def _pressure_level(self, depth_fraction: float,
                        ratio: Optional[float]) -> int:
        if depth_fraction >= self.config.queue_storm or (
            ratio is not None and ratio >= self.config.p95_storm
        ):
            return 2
        if depth_fraction >= self.config.queue_warn or (
            ratio is not None and ratio >= self.config.p95_warn
        ):
            return 1
        return 0

    def _calm_enough(self, depth_fraction: float, ratio: Optional[float],
                     level: int) -> bool:
        """Hysteresis: calm means well below the *current* entry watermark."""
        enter_queue = (self.config.queue_storm if level >= 2
                       else self.config.queue_warn)
        enter_p95 = (self.config.p95_storm if level >= 2
                     else self.config.p95_warn)
        margin = self.config.exit_fraction
        if depth_fraction >= enter_queue * margin:
            return False
        if ratio is not None and ratio >= enter_p95 * margin:
            return False
        return True

    # ------------------------------------------------------------------ #
    def observe(self) -> str:
        """Evaluate the pressure signals; maybe transition.  Returns state."""
        with self._lock:
            now = self.clock()
            if (self.config.min_interval > 0.0 and self._last_eval is not None
                    and now - self._last_eval < self.config.min_interval):
                return self._state
            self._last_eval = now
            depth_fraction, ratio = self._signals()
            level = StormState.CODES[self._state]
            pressure = self._pressure_level(depth_fraction, ratio)
            if pressure > level:
                # Escalation is immediate: a storm front does not wait for a
                # cooldown, and skipping WARN on a vertical load edge is
                # correct — the FSM tracks pressure, not ceremony.
                self._transition_locked(pressure, now)
            elif pressure < level:
                if self._calm_enough(depth_fraction, ratio, level):
                    self._calm += 1
                    if self._calm >= self.config.cooldown:
                        # Step down ONE level per cooldown: recovery from a
                        # storm passes back through WARN, keeping partial
                        # shedding active while the backlog drains.
                        self._transition_locked(level - 1, now)
                else:
                    self._calm = 0
            else:
                self._calm = 0
            return self._state

    def _transition_locked(self, level: int, now: float) -> None:
        previous = self._state
        self._state = StormState.FROM_CODE[level]
        self._calm = 0
        self.transitions.append((now, self._state))
        del self.transitions[:-256]
        if level == 2 and StormState.CODES[previous] < 2:
            self._enter_storm_locked()
        # Leaving STORM restores nothing on purpose: the controller relaxes
        # the threshold itself as pressure clears (it saw every storm
        # completion), so there is no saved pre-storm knob to put back.
        record = getattr(self.telemetry, "record_storm_state", None)
        if record is not None:
            record(level)

    # ------------------------------------------------------------------ #
    # Brown-out
    # ------------------------------------------------------------------ #
    def brownout_threshold(self) -> Optional[float]:
        """The aggressive θ stamped under STORM (None = keep the live knob)."""
        if self.config.brownout_threshold is not None:
            return float(self.config.brownout_threshold)
        if self.controller is not None:
            if getattr(self.controller, "aggressive_is_higher", True):
                return float(self.controller.max_threshold)
            return float(self.controller.min_threshold)
        return None

    def _enter_storm_locked(self) -> None:
        # Escalate the *live* knob too when a controller steers it: the SLA
        # feedback loop then continues from the aggressive bound instead of
        # multiplicatively walking toward it while the queue burns.  Without
        # a controller the live knob is left alone — brown-out flows purely
        # through epoch stamps and recovery is automatic.
        threshold = self.brownout_threshold()
        if threshold is None or self.policy is None:
            return
        live = getattr(self.policy, "threshold", None)
        if self.controller is not None and live is not None:
            self.policy.threshold = threshold

    def effective(
        self, live_threshold: Optional[float]
    ) -> Tuple[Optional[float], Optional[int], bool]:
        """(threshold, horizon, brownout?) to stamp into the next epoch."""
        with self._lock:
            if self._state != StormState.STORM:
                return live_threshold, None, False
            threshold = self.brownout_threshold()
            if threshold is None:
                threshold = live_threshold
            return threshold, self.config.horizon_cap, True

    # ------------------------------------------------------------------ #
    # Admission gate
    # ------------------------------------------------------------------ #
    def admit(self, priority: int) -> None:
        """Gate one submission by priority class; raises on shed."""
        state = self.state
        if state == StormState.NORMAL:
            return
        if state == StormState.WARN and priority <= PRIORITY_NORMAL:
            return
        if state == StormState.STORM and priority <= PRIORITY_HIGH:
            return
        name = PRIORITY_NAMES.get(int(priority), str(priority))
        raise StormShedError(
            f"storm guard in {state.upper()} shed a {name}-priority request",
            state=state,
            priority=priority,
        )
