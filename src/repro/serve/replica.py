"""Process-level serve replicas over a shared-memory plan arena.

``Server(num_workers=N)`` scales until the GIL does not: the GEMMs release
it, the op-dispatch loop does not, so N thread workers saturate roughly one
core's worth of Python.  :class:`ReplicaPool` is the process-level
counterpart — N worker *processes*, each running the unchanged serving stack
(:class:`~repro.serve.InferenceEngine` + :class:`~repro.serve.ContinuousBatcher`)
over a private :class:`~repro.runtime.PlanExecutor` whose constants are
zero-copy views into one :class:`~repro.runtime.PlanArena` segment.

Data flow, front to back:

* **Dispatch** — requests enter the server's single
  :class:`~repro.serve.AdmissionQueue` exactly as in thread mode.  One
  *forwarder* thread per replica competes for queued requests, copies each
  frame **once** into the replica's shared-memory request slab
  (:mod:`repro.runtime.rings`), and ships only a CRC/sequence-guarded
  *ticket* per request over that replica's work queue — holding at most
  ``inflight_window`` requests (default: one batch width) inside the
  replica at a time, which bounds both what a crash can take down and how
  many slab slots a replica can occupy.
* **Serving** — the replica process validates each ticket against its slot
  header, binds a zero-copy read-only view over the slab, pumps it into a
  local admission queue and runs the continuous batcher exactly like a
  thread worker; per-sample batch invariance makes its decisions identical
  to the sequential oracle no matter how the dispatcher splits traffic.
* **Completion** — finished rounds are written as fixed-width records into
  the replica's completion ring; only the ``(start, count)`` cursor range
  travels over its *per-replica* response pipe (single writer each: a
  replica killed mid-message can corrupt only its own channel, never block
  a survivor's completions behind a dead lock holder — and a torn record
  fails CRC validation instead of resolving a future with garbage).  A
  *collector* thread multiplexes the pipes, decodes the cursor ranges,
  resolves the parent-side futures, prices energy, feeds the SLA
  controller and records everything into the server's single
  :class:`~repro.serve.Telemetry` (the replica ships its occupancy gauges
  at drain, merged via :meth:`Telemetry.merge_state`).  Pickled inline
  payloads remain as the per-message fallback and as the wholesale
  ``transport="pipe"`` baseline.
* **Failure** — a *monitor* thread owns each replica's exit.  A clean exit
  (drain) releases its arena reference; a crash fails exactly the crashed
  replica's in-flight requests with :class:`ReplicaCrashError`, returns any
  undispatched request to the shared pool, and leaves the survivors serving.
  When the last replica dies the queue is closed and drained so no client
  ever blocks on a future nobody will resolve.

Weight reloads: after ``load_state_dict`` on the parent's model, call
:meth:`ReplicaPool.refresh_weights`.  The arena writes the changed constants
into its *inactive* generation and flips — a transactional hot-swap — and
every replica rebinds to the complete new generation at its next round
boundary, acking the version back so a later refresh never overwrites a
generation a straggler still reads (see
:meth:`~repro.runtime.ArenaAttachment.reattach` for the identity-flip that
makes the folded caches, stem signature and stem memo converge).

Replica processes use the ``spawn`` start method: it is immune to
fork-vs-threads lock inheritance and forces every byte a replica shares to
flow through the arena — which is the point.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import multiprocessing
from collections import deque
from multiprocessing import connection

from ..analysis.lockorder import named_lock
from ..core.accounting import InferenceCostModel
from ..core.policies import ExitPolicy
from ..runtime import plan_for, runtime_enabled
from ..runtime.arena import ArenaSpec, PlanArena, attach_arena
from ..runtime.rings import (
    PoolRings,
    RingIntegrityError,
    RingSpec,
    attach_rings,
)
from ..snn.network import SpikingNetwork
from .batcher import ContinuousBatcher, finalize_result, price_request
from .controller import AdaptiveThresholdController
from .engine import AdmissionRejectedError, InferenceEngine
from .request import (
    AdmissionQueue,
    Request,
    RequestResult,
    Response,
    ServerClosedError,
    ThresholdEpoch,
    clone_exception,
)
from .storm import DeadlineExceededError
from .telemetry import Telemetry

__all__ = ["ReplicaCrashError", "ReplicaPool"]


class ReplicaCrashError(RuntimeError):
    """A replica process died while requests it owned were in flight.

    Raised through the futures of exactly the crashed replica's in-flight
    round: requests still in the shared admission queue (or popped but not
    yet dispatched) are re-served by the surviving replicas, so a crash
    loses at most ``inflight_window`` requests.  If the *last* replica dies
    the queue is closed and every queued future fails with this error
    instead of stranding its client.
    """


@dataclass(frozen=True)
class _ReplicaConfig:
    """Picklable per-replica serving parameters (ships at spawn)."""

    index: int
    policy: ExitPolicy
    max_timesteps: int
    batch_width: int
    window: int
    use_runtime: Optional[bool]
    poll_interval: float = 0.01


# Work-queue message kinds (parent -> replica).  Requests and completions
# travel as *batches* — one pickle + one pipe wakeup per dispatch round or
# step round, not per request — which is what keeps the IPC cost per request
# flat in the window size (the same argument as batched admission).
# Under the ring transport (the default) the batch entries carry TICKETS —
# (slot, seq, crc, shape, dtype) cursors into the shared-memory request
# slab — instead of pickled frames, and completions come back as a cursor
# range over the replica's completion ring (_MSG_DONE_RING); the pipes and
# queues then move only control-plane bytes.  The inline-payload forms
# remain as the per-message fallback (oversized frame, ring momentarily
# full) and as the wholesale ``transport="pipe"`` baseline.
# Threshold changes need no control message: every request carries its
# ThresholdEpoch stamp, and the replica engine evaluates each slot under its
# stamped knobs — the recorded threshold is the deciding one by construction
# (the PR 5 one-way-message caveat, closed; docs/RESILIENCE.md).
_MSG_REQUEST = "reqs"
_MSG_DRAIN = "drain"
# Result-pipe message kinds (replica -> parent).
_MSG_READY = "ready"
_MSG_DONE = "done"
_MSG_DONE_RING = "donr"
_MSG_ERROR = "error"
_MSG_BYE = "bye"
# Rebind acknowledgement: the replica observed an arena refresh and rebound
# to the flipped generation; carries the arena version it now serves.
_MSG_REBOUND = "rebound"


# --------------------------------------------------------------------------- #
# Replica process
# --------------------------------------------------------------------------- #
class _RelayResponse(Response):
    """Replica-local future that forwards its resolution to an outbox.

    The batcher resolves futures; in a replica the real future lives in the
    parent, so the local stand-in records what happened and the main loop
    relays it.  Successful completions already come back through
    ``run_once``'s return value, so only failures (admission rejections) are
    captured here.
    """

    def __init__(self, request_id: int, outbox: List[Tuple]):
        super().__init__()
        self._request_id = request_id
        self._outbox = outbox

    def set_exception(self, exception: BaseException) -> None:
        super().set_exception(exception)
        self._outbox.append(
            (self._request_id, f"{type(exception).__name__}: {exception}")
        )


def _replica_main(spec: ArenaSpec, skeleton: bytes, config: _ReplicaConfig,
                  work_queue, result_conn,
                  ring_spec: Optional[RingSpec] = None) -> None:
    """Entry point of one replica process (spawn target; must be top-level).

    The loop interleaves three duties: pump the work queue into the local
    admission queue, honor arena weight-reload versions at round boundaries,
    and run the continuous batcher one timestep at a time, relaying every
    completion.  On the drain sentinel it finishes all local work, ships its
    telemetry gauges and exits 0; any exception escapes (exit code != 0) and
    the parent's monitor converts it into typed in-flight failures.

    ``result_conn`` is this replica's *private* pipe to the collector: with
    one writer per pipe there is no cross-process write lock, so a replica
    killed mid-message can corrupt only its own channel — a survivor's
    completions can never block behind a dead neighbour's lock (the failure
    mode a shared result queue would have).

    With ``ring_spec`` set (the default transport) dispatched frames are
    consumed as zero-copy read-only views over the shared request slab and
    completions are written as fixed-width records into the completion
    ring — the pipe then carries a cursor range per round instead of a
    pickled result list.
    """
    index = config.index
    attachment = None
    rings = None
    try:
        attachment = attach_arena(spec, skeleton)
        model = attachment.model
        engine = InferenceEngine(
            model,
            config.policy,
            max_timesteps=config.max_timesteps,
            use_runtime=config.use_runtime,
            # The constants are shared but this process's model object is
            # private, so statistics would be safe — they are disabled for
            # parity with thread workers (nobody reads them in a replica).
            collect_statistics=False,
        )
        local_queue = AdmissionQueue(capacity=max(1, config.window))
        telemetry = Telemetry()
        batcher = ContinuousBatcher(
            engine, local_queue, batch_width=config.batch_width, telemetry=telemetry
        )
        if ring_spec is not None:
            rings = attach_rings(ring_spec, index)
        outbox: List[Tuple] = []
        draining = False
        # Readiness handshake: interpreter up, arena attached, plan compiled.
        # The parent's start() blocks on this so a "started" server is one
        # whose replicas are actually serving (and whose benchmarked
        # throughput excludes spawn/import cost).  The arena version seeds
        # the parent's rebind ledger (refresh_weights waits on it).
        result_conn.send((index, _MSG_READY, attachment.version))
        while True:
            # Pump the work queue: block only when fully idle, otherwise
            # drain whatever is ready and get back to stepping.
            block = engine.idle and local_queue.depth() == 0 and not draining
            try:
                message = (
                    work_queue.get(timeout=config.poll_interval)
                    if block
                    else work_queue.get_nowait()
                )
                while True:
                    kind = message[0]
                    if kind == _MSG_REQUEST:
                        for request_id, ticket, inline, label, epoch in message[1]:
                            if ticket is not None:
                                try:
                                    inputs = rings.request_view(ticket)
                                except RingIntegrityError as error:
                                    # Corrupted/stale slot: never serve the
                                    # bytes.  Relayed like an admission
                                    # failure; the parent accounts it as a
                                    # rejection.
                                    outbox.append((
                                        request_id,
                                        f"{type(error).__name__}: {error}",
                                    ))
                                    continue
                            else:
                                inputs = inline
                            local_queue.put(
                                Request(
                                    request_id=request_id, inputs=inputs,
                                    label=label,
                                    epoch=(None if epoch is None
                                           else ThresholdEpoch(*epoch)),
                                ),
                                _RelayResponse(request_id, outbox),
                            )
                    elif kind == _MSG_DRAIN:
                        draining = True
                    message = work_queue.get_nowait()
            except queue_module.Empty:
                pass
            # Weight-reload propagation: rebind at the round boundary so a
            # refreshed arena serves coherent constants from the next step.
            # The ack tells the parent this replica no longer reads the
            # retired generation, so the NEXT refresh may overwrite it.
            if attachment.stale():
                attachment.reattach()
                engine.invalidate_stem()
                result_conn.send((index, _MSG_REBOUND, attachment.version))
            results = batcher.run_once()
            if results:
                wire = [
                    (result.request_id, result.prediction, result.exit_timestep,
                     result.score, result.threshold, result.start_time,
                     result.finish_time, result.epoch, result.brownout,
                     result.horizon)
                    for result in results
                ]
                cursor = None if rings is None else rings.write_completions(wire)
                if cursor is not None:
                    result_conn.send((index, _MSG_DONE_RING, cursor))
                else:
                    result_conn.send((index, _MSG_DONE, wire))
            if outbox:
                result_conn.send((index, _MSG_ERROR, list(outbox)))
                outbox.clear()
            if draining and engine.idle and local_queue.depth() == 0:
                # Gauges only (include_results=False drops the per-request
                # and clock-domain fields): completions were already
                # recorded by the parent's collector.  The local queue
                # depth is additionally blanked — it is window-bounded
                # noise next to the parent's admission-queue backpressure
                # gauge, which the collector samples parent-side.  The
                # rejection/deadline counters are blanked too: every relayed
                # failure is recorded once by the PARENT (the _MSG_ERROR
                # handler), so merging the replica-local copies at BYE would
                # double-count and break request conservation.
                state = telemetry.export_state(include_results=False)
                state["queue_depths"] = []
                state["rejected"] = 0
                state["deadline_drops"] = {}
                result_conn.send((index, _MSG_BYE, state))
                break
    except BaseException:
        traceback.print_exc()
        raise
    finally:
        if attachment is not None:
            attachment.close()
        if rings is not None:
            rings.close()
        result_conn.close()


# --------------------------------------------------------------------------- #
# Parent-side pool
# --------------------------------------------------------------------------- #
class ReplicaPool:
    """Owns N replica processes, their arena, and the dispatch plumbing.

    Constructed (and drained) by :class:`~repro.serve.Server` when
    ``num_replicas > 0``; the public surface a user touches is the server's.
    Tests reach in for :attr:`processes` (fault injection) and
    :attr:`arena` (sharing/lifecycle assertions).
    """

    def __init__(
        self,
        model: SpikingNetwork,
        policy: ExitPolicy,
        *,
        num_replicas: int,
        queue: AdmissionQueue,
        telemetry: Telemetry,
        max_timesteps: Optional[int] = None,
        batch_width: int = 8,
        use_runtime: Optional[bool] = None,
        cost_model: Optional[InferenceCostModel] = None,
        controller: Optional[AdaptiveThresholdController] = None,
        clock: Callable[[], float] = time.monotonic,
        inflight_window: Optional[int] = None,
        blas_threads: int = 1,
        trace=None,
        spans=None,
        transport: str = "ring",
        ring_slot_bytes: Optional[int] = None,
    ):
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if transport not in ("ring", "pipe"):
            raise ValueError(
                f"transport must be 'ring' or 'pipe', got {transport!r}"
            )
        if max_timesteps is None:
            max_timesteps = model.default_timesteps
        if max_timesteps < 1:
            raise ValueError("max_timesteps must be a positive integer")
        if runtime_enabled(use_runtime) and plan_for(model) is None:
            raise ValueError(
                "replica serving shares plan constants through the arena, "
                "which requires a model the compiled-plan runtime can lower; "
                "this model does not lower — pass use_runtime=False to run "
                "replicas on the Tensor oracle"
            )
        self.model = model
        self.policy = policy
        self.queue = queue
        self.telemetry = telemetry
        self.num_replicas = int(num_replicas)
        self.max_timesteps = int(max_timesteps)
        self.batch_width = int(batch_width)
        self.window = (
            int(inflight_window) if inflight_window is not None else self.batch_width
        )
        if self.window < 1:
            raise ValueError("inflight_window must be >= 1")
        self.cost_model = cost_model
        self.controller = controller
        self.clock = clock
        self.use_runtime = use_runtime
        # Observability sinks live parent-side only: the trace recorder and
        # span tracker see completions in the collector (one clock domain),
        # so replicas ship no extra bytes for them.
        self.trace = trace
        self.spans = spans
        self.blas_threads = int(blas_threads)
        # Export before anything serves: the arena copies the constants and
        # the skeleton captures the structure exactly once for all replicas.
        # eval() + reset_state() is the same serving precondition
        # InferenceEngine applies to thread workers' models; gradients are
        # left on the caller's model (the skeleton drops them in transit).
        model.eval()
        model.reset_state()
        self.arena = PlanArena.export(model)
        self._skeleton = self.arena.skeleton()
        # Ring transport: one shared segment for the whole fleet, sized at
        # construction (the Allocator Law: every slot the steady state will
        # ever use exists before the first request).  ``window`` request
        # slots per replica exactly cover the in-flight bound the window
        # semaphore enforces — a slot is freed strictly before its permit
        # is released, so try_write can only miss when a frame exceeds
        # slot_bytes (falls back to the inline pipe payload).
        self.transport = transport
        self.rings: Optional[PoolRings] = None
        self._ring_writers = None
        self._ring_readers = None
        if transport == "ring":
            kwargs = {}
            if ring_slot_bytes is not None:
                kwargs["slot_bytes"] = ring_slot_bytes
            self.rings = PoolRings.create(
                self.num_replicas, slots=self.window, **kwargs
            )
            self._ring_writers = [
                self.rings.writer(i) for i in range(self.num_replicas)
            ]
            self._ring_readers = [
                self.rings.reader(i) for i in range(self.num_replicas)
            ]

        self._ctx = multiprocessing.get_context("spawn")
        # One result pipe per replica (single writer each): a shared queue
        # would funnel every completion through one cross-process write
        # lock, and a replica SIGKILLed while holding it would deadlock the
        # survivors' completions.  The work queues have one writer (this
        # process) and one reader each, so they keep the convenient Queue
        # API without that failure mode.
        pipes = [self._ctx.Pipe(duplex=False) for _ in range(self.num_replicas)]
        self._result_readers = [reader for reader, _ in pipes]
        self._result_writers = [writer for _, writer in pipes]
        self._work_queues = [self._ctx.Queue() for _ in range(self.num_replicas)]
        self.processes: List[multiprocessing.Process] = []
        self._forwarders: List[threading.Thread] = []
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

        self._lock = named_lock("serve.replica.pool")
        # request_id -> (request, response, ring slot or None); the slot is
        # freed when the entry pops (completion, relayed error, or crash).
        self._inflight: List[Dict[int, Tuple[Request, Response, Optional[int]]]] = [
            {} for _ in range(self.num_replicas)
        ]
        # Arena version each replica last (re)bound, from READY/_MSG_REBOUND
        # acks; refresh_weights waits on it before reusing a generation.
        self._rebound: Dict[int, int] = {}
        self._overflow: Deque[Tuple[Request, Response]] = deque()
        self._window_sems = [
            threading.Semaphore(self.window) for _ in range(self.num_replicas)
        ]
        self._dead = [False] * self.num_replicas
        self._ready = [threading.Event() for _ in range(self.num_replicas)]
        # Set by the collector when a replica's result pipe hits EOF — i.e.
        # every message the replica ever sent has been processed.
        self._pipe_drained = [threading.Event() for _ in range(self.num_replicas)]
        self._live = self.num_replicas
        self._crashed = False
        self._aborting = False
        self._finished = threading.Event()
        self._started = False
        # Set once teardown (channel close + arena destroy) has run; makes
        # drain()/abort() idempotent — a double shutdown must no-op like
        # thread mode, not trip over close()d Process objects.
        self._retired = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    #: Serializes the os.environ pin/spawn/restore window below: two pools
    #: starting concurrently must not interleave their snapshots.
    _spawn_env_lock = named_lock("serve.replica.spawn_env")

    def start(self) -> "ReplicaPool":
        if self._started:
            raise RuntimeError("replica pool already started")
        self._started = True
        # Pin BLAS threading inside the replicas: the serving GEMMs are
        # small-batch, so intra-op threads only fight the replica-level
        # parallelism.  The knobs must be in the child's *exec* environment
        # (OpenBLAS/MKL read them at library load, which happens during the
        # spawn bootstrap, before any code of ours runs), so the parent
        # briefly pins os.environ around the spawns — under a class-level
        # lock, since os.environ is process-global.
        saved = {}
        pinned = {}
        if self.blas_threads > 0:
            pinned = {
                name: str(self.blas_threads)
                for name in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                             "MKL_NUM_THREADS")
            }
        self._spawn_env_lock.acquire()
        try:
            for name, value in pinned.items():
                saved[name] = os.environ.get(name)
                os.environ[name] = value
            for index in range(self.num_replicas):
                config = _ReplicaConfig(
                    index=index,
                    policy=self.policy,
                    max_timesteps=self.max_timesteps,
                    batch_width=self.batch_width,
                    window=self.window,
                    use_runtime=self.use_runtime,
                )
                process = self._ctx.Process(
                    target=_replica_main,
                    args=(self.arena.spec, self._skeleton, config,
                          self._work_queues[index], self._result_writers[index],
                          None if self.rings is None else self.rings.spec),
                    name=f"repro-replica-{index}",
                    daemon=True,
                )
                self.arena.acquire()
                try:
                    process.start()
                except BaseException:
                    # A failed spawn never releases its reference from the
                    # monitor (there is no process to exit), so give it
                    # back here or the segment outlives drain.
                    self.arena.release()
                    raise
                # Drop the parent's copy of the write end: once the replica
                # exits, its reader then raises EOF instead of idling on a
                # half-open pipe.
                self._result_writers[index].close()
                self.processes.append(process)
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
            self._spawn_env_lock.release()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replica-monitor", daemon=True
        )
        self._monitor.start()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-replica-collector", daemon=True
        )
        self._collector.start()
        for index in range(self.num_replicas):
            thread = threading.Thread(
                target=self._forward_loop, args=(index,),
                name=f"repro-replica-forward-{index}", daemon=True,
            )
            self._forwarders.append(thread)
            thread.start()
        return self

    def wait_ready(self, timeout: Optional[float] = 120.0) -> int:
        """Block until every replica reports ready (or died trying).

        A replica is ready once its interpreter is up, the arena is attached
        and its engine is built — i.e. it is polling for work.  Returns the
        number of ready replicas; a replica that crashed during startup is
        simply not counted (its failure is handled by the monitor like any
        other crash).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        ready = 0
        for index in range(self.num_replicas):
            while True:
                if self._ready[index].is_set():
                    ready += 1
                    break
                if self._dead[index]:
                    break
                remaining = 0.05 if deadline is None else min(
                    0.05, deadline - time.monotonic()
                )
                if remaining <= 0:
                    raise TimeoutError(
                        f"replica {index} not ready within {timeout}s"
                    )
                self._ready[index].wait(remaining)
        return ready

    def drain(self, timeout: Optional[float] = None) -> None:
        """Finish every accepted request, then retire processes and arena.

        The caller must have closed the admission queue first (the server
        does); each forwarder observes closed-and-empty, sends its replica
        the drain sentinel, and the replica exits once its slots empty.

        Matches thread-mode semantics on both edges: a ``timeout`` that
        expires with work still in flight just stops waiting (everything
        keeps running and a later drain/abort can finish the job — nothing
        is torn down under a live dispatcher), and calling drain again
        after a completed retirement is a no-op.
        """
        if self._retired:
            return
        for thread in self._forwarders:
            thread.join(timeout)
        for process in self.processes:
            process.join(timeout)
        if any(thread.is_alive() for thread in self._forwarders) or any(
            process.is_alive() for process in self.processes
        ):
            return  # timed out mid-drain; resources stay live
        if self._monitor is not None:
            self._monitor.join(timeout)
            if self._monitor.is_alive():
                return
        self._finished.set()
        if self._collector is not None:
            self._collector.join(timeout)
            if self._collector.is_alive():
                return
        self._close_channels()
        self.arena.destroy()
        if self.rings is not None:
            self.rings.destroy()
        self._retired = True

    def _close_channels(self) -> None:
        """Release the IPC fds and Queue feeder threads at retirement.

        Like the arena's unlink, resource release belongs to drain/abort,
        not to whenever the pool object happens to be garbage-collected —
        a parent that keeps a drained server around for telemetry must not
        hold ~3 fds and a feeder thread per replica.  Runs strictly after
        the collector joined (nobody reads the pipes anymore).
        """
        for work in self._work_queues:
            # cancel_join_thread, not join_thread: a queue whose (dead)
            # consumer left buffered items behind would block the flush.
            work.cancel_join_thread()
            work.close()
            try:
                # The parent never reads its work queues; the reader fd
                # only existed to be inherited by the replica.
                work._reader.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for connection_end in self._result_readers + self._result_writers:
            # Writers are normally closed per successful spawn; a partial
            # spawn failure leaves the tail ones open, which would keep
            # their readers from ever reaching EOF.
            try:
                connection_end.close()
            except OSError:  # pragma: no cover - already closed at EOF
                pass
        for process in self.processes:
            if process.exitcode is not None:
                # Releases the sentinel fd now instead of at GC.  The
                # Process object becomes inert afterwards; everything the
                # pool reports post-drain (live_replicas, telemetry) reads
                # pool state, not Process attributes.
                process.close()

    def abort(self) -> None:
        """Non-graceful stop: kill the replicas, fail their in-flight work."""
        if self._retired:
            return
        self._aborting = True
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(5.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(5.0)
        for thread in self._forwarders:
            thread.join(5.0)
        if self._monitor is not None:
            self._monitor.join(5.0)
        # Close any still-open parent-side writer ends now (no-ops for
        # successfully spawned replicas): after a partial spawn failure the
        # never-spawned replicas' readers can only reach EOF — and the
        # collector can only finish — once these drop.
        for writer in self._result_writers:
            try:
                writer.close()
            except OSError:
                pass
        self._finished.set()
        if self._collector is not None:
            self._collector.join(5.0)
        with self._lock:
            self._fail_stranded_locked()
        if self._monitor is None:
            # Aborting a fleet whose monitor never started (spawn failure
            # mid-start): nobody else will release the spawned processes'
            # arena references, and destroy() cannot unlink while they are
            # held.
            for _ in self.processes:
                self.arena.release()
        self._close_channels()
        self.arena.destroy()
        if self.rings is not None:
            self.rings.destroy()
        self._retired = True

    @property
    def live_replicas(self) -> int:
        with self._lock:
            return self._live

    def refresh_weights(self, rebind_timeout: float = 5.0) -> int:
        """Propagate an in-place weight reload to every replica.

        Call after ``load_state_dict`` on the served model; returns the
        number of constant slots that changed.  The arena writes the
        INACTIVE constant generation and flips, so replicas keep serving a
        complete old generation until they rebind at their next round
        boundary — requests admitted after this call are served under the
        new weights, and no request ever runs over a half-copied segment.

        Before writing, wait (bounded) until every live replica has acked
        the arena's current version: a back-to-back refresh must not
        scribble the generation a straggler still reads — that would
        reintroduce the exact torn-read hazard the double buffer removes.
        The timeout is a parachute against a wedged replica; replicas poll
        staleness every round (<= ``poll_interval``), so in practice the
        wait is one scheduling quantum.
        """
        target = self.arena.version
        deadline = time.monotonic() + max(0.0, rebind_timeout)
        while True:
            with self._lock:
                lagging = [
                    i for i in range(self.num_replicas)
                    if not self._dead[i] and self._rebound.get(i, 0) < target
                ]
            if not lagging or time.monotonic() >= deadline:
                break
            time.sleep(0.005)
        return self.arena.refresh()

    # ------------------------------------------------------------------ #
    # Dispatch (one forwarder thread per replica)
    # ------------------------------------------------------------------ #
    def _next_item(self, block: bool) -> Optional[Tuple[Request, Response]]:
        with self._lock:
            if self._overflow:
                return self._overflow.popleft()
        if block:
            return self.queue.get(timeout=0.05)
        return self.queue.get_nowait()

    def _backlog_empty(self) -> bool:
        with self._lock:
            if self._overflow:
                return False
        return self.queue.depth() == 0

    def _forward_loop(self, index: int) -> None:
        work = self._work_queues[index]
        sem = self._window_sems[index]
        while not self._dead[index] and not self._aborting:
            if self.queue.closed and self._backlog_empty():
                work.put((_MSG_DRAIN,))
                return
            if not sem.acquire(timeout=0.05):
                continue
            # Grab every free window slot, fill as many as the queue can
            # satisfy right now, and ship the round as ONE message: under a
            # burst the replica pays one wakeup and one pickle per round,
            # not per request.
            permits = 1
            while permits < self.window and sem.acquire(blocking=False):
                permits += 1
            batch: List[Tuple[Request, Response]] = []
            item = self._next_item(block=True)
            while item is not None:
                batch.append(item)
                if len(batch) >= permits:
                    break
                item = self._next_item(block=False)
            for _ in range(permits - len(batch)):
                sem.release()
            if batch:
                # Deadline enforcement stays parent-side (one clock domain):
                # a request that waited out its deadline in the shared queue
                # is dropped here, before it costs a window slot and a
                # cross-process round trip.
                kept: List[Tuple[Request, Response]] = []
                now = self.clock()
                for request, response in batch:
                    if request.deadline is not None and now > request.deadline:
                        error = DeadlineExceededError(
                            f"request {request.request_id} missed its "
                            f"deadline before dispatch"
                        )
                        response.set_exception(error)
                        self.telemetry.record_deadline_drop(request.priority)
                        if self.trace is not None:
                            self.trace.record_rejection(
                                request, now, reason="deadline"
                            )
                        if self.spans is not None:
                            self.spans.record_failure(
                                request.request_id, now, error
                            )
                        sem.release()
                    else:
                        kept.append((request, response))
                batch = kept
            if not batch:
                continue
            # Write each frame into the request slab BEFORE taking the pool
            # lock (the copy is the expensive part; the slab is per-replica
            # and this forwarder is its only writer).  A request that gets
            # no ticket (oversized frame) ships inline instead.
            writer = (
                None if self._ring_writers is None else self._ring_writers[index]
            )
            tickets: Dict[int, Tuple] = {}
            if writer is not None:
                for request, _ in batch:
                    ticket = writer.try_write(request.inputs)
                    if ticket is not None:
                        tickets[request.request_id] = ticket
            with self._lock:
                if self._dead[index]:
                    if writer is not None:
                        # The round never ships; give its slots back.
                        for ticket in tickets.values():
                            writer.release(ticket[0])
                    if self.queue.closed:
                        # Crash during drain: the surviving forwarders have
                        # (or soon will have) sent their drain sentinels and
                        # exited, so nobody is left to pop a re-pooled batch
                        # — fail it typed instead of stranding it.  The
                        # batch holds this replica's own window permits, so
                        # the total loss stays within its in-flight window.
                        error = ReplicaCrashError(
                            f"replica {index} crashed during drain before "
                            f"its last round was dispatched"
                        )
                        now = self.clock()
                        for request, response in batch:
                            response.set_exception(clone_exception(error))
                            if self.spans is not None:
                                self.spans.record_failure(
                                    request.request_id, now, error
                                )
                        self.telemetry.record_shed(len(batch))
                    else:
                        # Lost the race with a crash mid-traffic: hand the
                        # requests back to the pool so a surviving replica
                        # serves them.  If the monitor's last-replica
                        # cleanup already ran (or runs concurrently),
                        # nobody will ever pop the pool again — re-check
                        # and fail the strays ourselves.
                        self._overflow.extend(batch)
                        if self._live == 0 or self._aborting:
                            self._fail_stranded_locked()
                    return
                for request, response in batch:
                    ticket = tickets.get(request.request_id)
                    self._inflight[index][request.request_id] = (
                        request, response,
                        None if ticket is None else ticket[0],
                    )
            # Each request ships its ThresholdEpoch stamp: the replica engine
            # evaluates the slot under exactly these knobs, so no control
            # message (and no ordering argument about one) is needed — a
            # request can never run under knobs other than the ones stamped
            # at its submission.  Ticketed entries carry NO frame bytes —
            # the ticket is the cursor into the slab written above.
            work.put((_MSG_REQUEST, [
                (request.request_id,
                 tickets.get(request.request_id),
                 None if request.request_id in tickets else request.inputs,
                 request.label,
                 None if request.epoch is None else request.epoch.as_tuple())
                for request, _ in batch
            ]))
            if self.spans is not None:
                # The one lifecycle stage only replica mode can observe live:
                # the moment a request leaves the parent for a worker
                # process.  Stamped after the put so dispatched >= queued and
                # the span stays monotone in the parent's clock domain.
                dispatched_at = self.clock()
                for request, _ in batch:
                    self.spans.record(
                        request.request_id, "dispatched", dispatched_at
                    )

    # ------------------------------------------------------------------ #
    # Completion (single collector thread)
    # ------------------------------------------------------------------ #
    def _collect_loop(self) -> None:
        indices = {id(reader): index
                   for index, reader in enumerate(self._result_readers)}
        active = list(self._result_readers)
        while active or not self._finished.is_set():
            if not active:
                self._finished.wait(0.05)
                continue
            try:
                ready = connection.wait(active, timeout=0.05)
            except OSError:
                # A teardown path closed a handle under us (abort after a
                # partial spawn failure); prune and carry on.
                active = [reader for reader in active if not reader.closed]
                continue
            for reader in ready:
                try:
                    message = reader.recv()
                except (EOFError, OSError):
                    # Replica gone (clean exit or crash) AND its channel is
                    # fully drained — EOF cannot fire before every buffered
                    # message was read, because the parent closed its own
                    # write end at spawn.  The monitor waits on this flag
                    # before deciding what the crash actually lost.
                    active.remove(reader)
                    self._pipe_drained[indices[id(reader)]].set()
                    continue
                except Exception:  # pragma: no cover - defensive: a partial
                    # message from a replica killed mid-send corrupts only
                    # its own channel; drop the channel, keep collecting.
                    traceback.print_exc()
                    active.remove(reader)
                    self._pipe_drained[indices[id(reader)]].set()
                    continue
                try:
                    self._handle_result(message)
                except Exception:  # pragma: no cover - a malformed message
                    # must not take down the collector with everyone's
                    # futures.
                    traceback.print_exc()

    def _handle_result(self, message: Tuple) -> None:
        index, kind = message[0], message[1]
        if kind == _MSG_READY:
            with self._lock:
                self._rebound[index] = int(message[2]) if len(message) > 2 else 0
            self._ready[index].set()
        elif kind == _MSG_REBOUND:
            with self._lock:
                self._rebound[index] = int(message[2])
        elif kind == _MSG_BYE:
            self.telemetry.merge_state(message[2])
        elif kind == _MSG_ERROR:
            for request_id, text in message[2]:
                entry = self._pop_inflight(index, request_id)
                if entry is None:
                    continue
                request, response = entry
                error = AdmissionRejectedError(text)
                # Account the relayed failure exactly like the thread-mode
                # door (Server.submit's rejection path): without these
                # records replica mode under-counts vs. thread mode and
                # request conservation (submitted == completed + rejected +
                # shed + deadline_drops) silently breaks.
                now = self.clock()
                self.telemetry.record_rejection()
                if self.trace is not None:
                    self.trace.record_rejection(request, now)
                if self.spans is not None:
                    self.spans.record_failure(request_id, now, error)
                response.set_exception(error)
        else:
            # The backpressure gauge must sample the *shared* admission
            # queue (a replica's local queue is window-bounded and says
            # nothing about overload); one sample per completion round
            # mirrors the thread batcher's per-step sampling cadence.
            self.telemetry.record_queue_depth(self.queue.depth())
            completions = (
                self._ring_readers[index].read(*message[2])
                if kind == _MSG_DONE_RING
                else message[2]
            )
            for completion in completions:
                self._resolve_completion(index, completion)

    def _pop_inflight(self, index: int, request_id: int):
        with self._lock:
            entry = self._inflight[index].pop(request_id, None)
        if entry is None:
            return None  # already failed by the crash monitor
        request, response, slot = entry
        # Free the ring slot BEFORE the window permit: the permit is what
        # admits the next dispatch, so a new round can never race a
        # still-occupied slab slot.
        if slot is not None and self._ring_writers is not None:
            self._ring_writers[index].release(slot)
        self._window_sems[index].release()
        return request, response

    def _resolve_completion(self, index: int, completion: Tuple) -> None:
        (request_id, prediction, exit_timestep, score, threshold, start_t,
         finish_t, epoch, brownout, horizon) = completion
        entry = self._pop_inflight(index, request_id)
        if entry is None:
            return
        request, response = entry
        energy, edp = price_request(self.cost_model, exit_timestep)
        # Timestamps stay in the server's (injectable) clock domain: the
        # replica's absolute times live on a different process's clock, so
        # only its service *duration* crosses the boundary.  Completion is
        # stamped here — which is also the honest end-to-end finish time,
        # since no client can observe a result before this thread resolves
        # the future.
        finish_time = self.clock()
        start_time = finish_time - max(0.0, finish_t - start_t)
        result = RequestResult(
            request_id=request_id,
            prediction=prediction,
            exit_timestep=exit_timestep,
            score=score,
            label=request.label,
            threshold=threshold,
            arrival_time=request.arrival_time,
            start_time=start_time,
            finish_time=finish_time,
            energy=energy,
            edp=edp,
            epoch=epoch,
            brownout=brownout,
            horizon=horizon,
        )
        if self.trace is not None:
            self.trace.record_request(request, result)
        if self.spans is not None:
            self.spans.record_result(result, finish_time)
        finalize_result(result, response, self.telemetry, self.controller)

    # ------------------------------------------------------------------ #
    # Failure (single monitor thread)
    # ------------------------------------------------------------------ #
    def _monitor_loop(self) -> None:
        sentinels = {process.sentinel: index
                     for index, process in enumerate(self.processes)}
        pending = set(sentinels)
        while pending:
            for sentinel in connection.wait(list(pending), timeout=0.2):
                pending.discard(sentinel)
                self._on_replica_exit(sentinels[sentinel])

    def _on_replica_exit(self, index: int) -> None:
        process = self.processes[index]
        process.join()
        graceful = process.exitcode == 0
        # Let the collector drain the replica's pipe to EOF first: messages
        # the replica sent before dying — including completions buffered
        # right up to a SIGKILL — must resolve as the results they are, not
        # be misreported as crash casualties.  EOF is guaranteed promptly
        # (the process is dead and the parent holds no write end), the
        # timeout is only a parachute against collector stalls.
        self._pipe_drained[index].wait(5.0)
        with self._lock:
            self._dead[index] = True
            inflight = list(self._inflight[index].values())
            self._inflight[index].clear()
            self._live -= 1
            live = self._live
            if not graceful and not self._aborting:
                self._crashed = True
        if inflight:
            if self._aborting:
                error: BaseException = ServerClosedError("server shut down")
            else:
                error = ReplicaCrashError(
                    f"replica {index} exited with code {process.exitcode} "
                    f"while {len(inflight)} request(s) were in flight"
                )
            now = self.clock()
            for request, response, slot in inflight:
                # The replica is gone, so its slab slots are safe to reuse
                # (moot for a dead replica, but the free list must balance
                # for the bookkeeping invariants).
                if slot is not None and self._ring_writers is not None:
                    self._ring_writers[index].release(slot)
                # Per-future clone: the crashed round's waiters re-raise
                # concurrently and must not share one traceback.
                response.set_exception(clone_exception(error))
                if self.spans is not None:
                    self.spans.record_failure(request.request_id, now, error)
            self.telemetry.record_shed(len(inflight))
        # Unblock the forwarder so it can observe the dead flag and exit.
        for _ in range(self.window):
            self._window_sems[index].release()
        self.arena.release()
        if live == 0 and not self._aborting:
            # Nobody left to serve: close the door and resolve every queued
            # future so no client blocks forever.  On a graceful drain the
            # queue is already closed and empty and both calls no-op.
            self.queue.close()
            with self._lock:
                self._fail_stranded_locked()
            failed = self.queue.drain_pending(
                ReplicaCrashError("all serving replicas exited while work was queued")
                if self._crashed
                else None
            )
            if failed:
                self.telemetry.record_shed(failed)

    def _stranded_error(self) -> BaseException:
        if self._aborting:
            return ServerClosedError("server shut down")
        if self._crashed:
            return ReplicaCrashError(
                "all serving replicas exited while work was queued"
            )
        return ServerClosedError("server shut down before serving")

    def _fail_stranded_locked(self) -> None:
        """Resolve every re-pooled request nobody is left to serve.

        Caller holds ``self._lock``.  Runs from whichever side loses the
        crash race last — the monitor's last-replica cleanup or a forwarder
        re-pooling a popped batch after its replica died — and from
        :meth:`abort`; popping under the lock makes the duplicate calls
        safe.
        """
        if not self._overflow:
            return
        error = self._stranded_error()
        stranded = list(self._overflow)
        self._overflow.clear()
        now = self.clock()
        for request, response in stranded:
            response.set_exception(clone_exception(error))
            if self.spans is not None:
                self.spans.record_failure(request.request_id, now, error)
        self.telemetry.record_shed(len(stranded))
