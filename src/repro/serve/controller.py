"""SLA-aware adaptation of the entropy-exit threshold under load.

The entropy threshold θ is DT-SNN's single inference-time knob: raising it
makes samples exit earlier (cheaper, faster, slightly riskier), lowering it
spends more timesteps per sample.  Under a latency SLA that knob becomes a
feedback control: when the rolling p95 latency exceeds the target the
controller nudges θ toward its *aggressive* bound so the batcher frees slots
faster; when there is headroom it relaxes θ back toward the *conservative*
bound to recover accuracy.  Both bounds come from offline threshold
calibration (:func:`repro.core.calibrate_threshold`), so the controller can
never push the operating point outside the accuracy envelope the operator
signed off on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..core.policies import ExitPolicy
from ..core.threshold import calibrate_threshold
from .request import RequestResult
from .telemetry import Telemetry

__all__ = ["AdaptiveThresholdController", "calibrated_threshold_bounds"]


def calibrated_threshold_bounds(
    cumulative_logits: np.ndarray,
    labels: np.ndarray,
    tight_tolerance: float = 0.0,
    loose_tolerance: float = 0.02,
) -> Tuple[float, float]:
    """Derive (conservative, aggressive) θ bounds from calibration sweeps.

    The conservative bound is the iso-accuracy operating point (accuracy drop
    ≤ ``tight_tolerance``); the aggressive bound allows ``loose_tolerance``
    accuracy drop in exchange for earlier exits under overload.
    """
    tight = calibrate_threshold(cumulative_logits, labels, tolerance=tight_tolerance)
    loose = calibrate_threshold(cumulative_logits, labels, tolerance=loose_tolerance)
    low, high = sorted((tight.threshold, loose.threshold))
    return float(low), float(high)


@dataclass
class AdaptiveThresholdController:
    """Multiplicative-increase feedback controller for the exit threshold.

    Parameters
    ----------
    policy:
        The live exit policy whose ``threshold`` attribute is nudged in
        place.  For entropy policies a *higher* threshold exits earlier; set
        ``aggressive_is_higher=False`` for confidence/margin policies where
        the direction is inverted.
    target_p95_latency:
        The SLA, in the same (seconds) units the telemetry clock uses.
    min_threshold / max_threshold:
        Hard bounds (typically from :func:`calibrated_threshold_bounds`);
        the controller clamps to them unconditionally.
    step:
        Multiplicative adjustment factor per decision (> 1).
    deadband:
        Fractional hysteresis around the target inside which no adjustment
        is made, preventing oscillation.
    adjust_every:
        Number of completions between control decisions.
    history_limit:
        Cap on the retained ``(p95, θ)`` decision history.  A long-running
        server makes one decision every ``adjust_every`` completions forever;
        an unbounded list is a slow leak.  ``None`` disables the cap (for
        offline backtesting runs that want the full trajectory).
    """

    policy: ExitPolicy
    target_p95_latency: float
    min_threshold: float
    max_threshold: float
    step: float = 1.25
    deadband: float = 0.1
    adjust_every: int = 16
    aggressive_is_higher: bool = True
    history_limit: Optional[int] = 4096
    history: Deque[Tuple[float, float]] = field(default_factory=deque)  # (p95, θ)
    _since_last: int = 0

    def __post_init__(self):
        if self.history_limit is not None and self.history_limit < 1:
            raise ValueError("history_limit must be >= 1 (or None to disable)")
        self.history = deque(self.history, maxlen=self.history_limit)
        if not hasattr(self.policy, "threshold"):
            raise ValueError("policy must expose a mutable 'threshold' attribute")
        if not 0 < self.min_threshold <= self.max_threshold:
            raise ValueError("need 0 < min_threshold <= max_threshold")
        if self.target_p95_latency <= 0:
            raise ValueError("target_p95_latency must be positive")
        if self.step <= 1.0:
            raise ValueError("step must be > 1")
        if self.adjust_every < 1:
            raise ValueError("adjust_every must be >= 1")
        # Start from a bounds-respecting threshold.
        self.policy.threshold = self._clamp(self.policy.threshold)

    # ------------------------------------------------------------------ #
    @property
    def threshold(self) -> float:
        return float(self.policy.threshold)

    def _clamp(self, value: float) -> float:
        return float(min(max(value, self.min_threshold), self.max_threshold))

    # ------------------------------------------------------------------ #
    def on_completion(self, result: RequestResult, telemetry: Telemetry) -> None:
        """Called by the batcher after every completed request."""
        self._since_last += 1
        if self._since_last < self.adjust_every:
            return
        self._since_last = 0
        p95 = telemetry.recent_p95()
        if p95 is None:
            return
        self.observe_p95(p95)

    def observe_p95(self, p95: float) -> float:
        """Apply one control decision for an observed p95 latency; return θ."""
        current = float(self.policy.threshold)
        if p95 > self.target_p95_latency * (1.0 + self.deadband):
            updated = current * self.step if self.aggressive_is_higher else current / self.step
        elif p95 < self.target_p95_latency * (1.0 - self.deadband):
            updated = current / self.step if self.aggressive_is_higher else current * self.step
        else:
            updated = current
        updated = self._clamp(updated)
        self.policy.threshold = updated
        self.history.append((float(p95), updated))
        return updated
