"""Deterministic replay of recorded traffic against any server composition.

A trace (:mod:`repro.serve.trace`) is a schedule plus an expectation: *these*
clips arrived at *these* offsets under *this* threshold, and each one exited
at *this* timestep with *this* prediction.  :class:`TraceReplayer` feeds the
schedule into a live :class:`~repro.serve.Server` — any composition of
worker threads, process replicas and arrival pacing — and checks the
decisions bitwise against the recorded exits.

Why this works across compositions: per-sample batch invariance (the serving
layer's core contract, pinned by ``tests/serve/test_multi_engine.py``) makes
every request's prediction and exit timestep independent of how the batcher
packs it, which worker serves it, and when its neighbours arrive.  The only
serving-side knob that can move a decision is the exit threshold, so the
replayer refuses traces whose threshold moved mid-run (an SLA-controller
recording) unless explicitly told to skip verification.

Two pacing modes:

* **compressed** (default) — submit as fast as backpressure allows; measures
  capacity (the apples-to-apples perf number for ``BENCH_*.json``).
* **honored** (``honor_arrivals=True``) — sleep each request to its recorded
  arrival offset (optionally divided by ``speed``); reproduces the recorded
  load shape for latency studies.

This is the canonical regression gate: CI records a short trace, replays it
against a different composition, and a single moved decision fails the run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .server import Server
from .trace import Trace, TraceRecord, load_trace

__all__ = ["ReplayMismatch", "ReplayReport", "TraceReplayer"]


@dataclass
class ReplayMismatch:
    """One replayed request whose decision diverged from the trace."""

    request_id: int
    recorded_prediction: int
    recorded_exit: int
    replayed_prediction: int
    replayed_exit: int
    recorded_threshold: Optional[float] = None
    replayed_threshold: Optional[float] = None

    def __str__(self) -> str:
        text = (f"request {self.request_id}: recorded "
                f"(prediction={self.recorded_prediction}, "
                f"exit_t={self.recorded_exit}) vs replayed "
                f"(prediction={self.replayed_prediction}, "
                f"exit_t={self.replayed_exit})")
        if (self.recorded_threshold is not None
                or self.replayed_threshold is not None):
            text += (f" [threshold recorded={self.recorded_threshold} "
                     f"replayed={self.replayed_threshold}]")
        return text


@dataclass
class ReplayReport:
    """Outcome of one replay run.

    ``exit_histogram``, ``mean_exit`` and the energy/EDP aggregates are
    computed from *this replay's own results* — not the server's cumulative
    telemetry — and are filled on every run, including ``verify=False``
    load-source replays (the backtester scores candidates from exactly these
    aggregates).  Energy fields stay ``None`` when the serving results carry
    no energy (no cost model attached).
    """

    offered: int
    completed: int
    duration: float
    mismatches: List[ReplayMismatch] = field(default_factory=list)
    stats: Dict[str, float] = field(default_factory=dict)
    exit_histogram: List[int] = field(default_factory=list)
    mean_exit: float = 0.0
    energy_mean: Optional[float] = None
    energy_total: Optional[float] = None
    edp_mean: Optional[float] = None

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def exact(self) -> bool:
        """Every replayed decision matched the recorded one bitwise."""
        return not self.mismatches and self.completed == self.offered


class TraceReplayer:
    """Replays a recorded trace against a started server.

    Parameters
    ----------
    trace:
        A :class:`~repro.serve.trace.Trace` (or a path to one, loaded on
        the spot).  Must carry its clip store — a trace recorded with
        ``store_clips=False`` is audit-only and cannot be replayed.
    honor_arrivals:
        Pace submissions to the recorded arrival offsets instead of
        submitting closed-loop.
    speed:
        Time-compression factor for honored arrivals (2.0 = twice as fast).
    verify:
        Compare each replayed decision against the recorded one.  On by
        default — an exact replay is the point; disable only to use the
        replayer as a load source (e.g. replaying a controller trace whose
        threshold moved, where bitwise equality is undefined).
    """

    def __init__(
        self,
        trace,
        honor_arrivals: bool = False,
        speed: float = 1.0,
        verify: bool = True,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if isinstance(trace, str):
            trace = load_trace(trace)
        if not isinstance(trace, Trace):
            raise TypeError("trace must be a Trace or a path to one")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.trace = trace
        self.honor_arrivals = bool(honor_arrivals)
        self.speed = float(speed)
        self.verify = bool(verify)
        self.clock = clock
        self.sleep = sleep
        if not trace.records:
            raise ValueError("trace holds no request records to replay")
        missing = [r.request_id for r in trace.records
                   if r.digest not in trace.clips]
        if missing:
            raise ValueError(
                f"trace cannot be replayed: {len(missing)} record(s) "
                f"reference clips missing from the clip store (first: "
                f"request {missing[0]}) — recorded with store_clips=False "
                "or a truncated .clips file"
            )
        # A moving threshold is only un-replayable when the records do not
        # say which threshold each request ran under.  Epoch-stamped traces
        # (PR 7) do: every record carries the threshold its engine slot
        # evaluated, so the replayer pins each request to its recorded knobs
        # via submit(threshold=..., horizon=...) and bitwise verification is
        # defined again.
        self._pin_epochs = trace.fixed_threshold() is None and trace.epoch_stamped()
        if self.verify and trace.fixed_threshold() is None and not self._pin_epochs:
            raise ValueError(
                "trace was recorded under a moving threshold (SLA "
                "controller) without epoch stamps; bitwise verification is "
                "undefined — replay with verify=False, against a "
                "fixed-threshold trace, or re-record with an epoch-stamping "
                "server"
            )

    # ------------------------------------------------------------------ #
    def check_server(self, server: Server) -> None:
        """Refuse a server whose knobs cannot reproduce the trace."""
        threshold = self.trace.fixed_threshold()
        live = getattr(server.policy, "threshold", None)
        if threshold is not None and live is not None and (
            float(live) != float(threshold)
        ):
            raise ValueError(
                f"server threshold {float(live)} != trace threshold "
                f"{threshold}; decisions cannot match — build the policy "
                "from the trace header"
            )
        recorded_t = self.trace.max_timesteps
        if recorded_t is not None and server.max_timesteps != recorded_t:
            raise ValueError(
                f"server max_timesteps {server.max_timesteps} != trace "
                f"horizon {recorded_t}"
            )

    def replay(self, server: Server, result_timeout: float = 300.0) -> ReplayReport:
        """Submit every recorded request; verify decisions; return the report."""
        if self.verify:
            self.check_server(server)
        records = sorted(self.trace.records,
                         key=lambda r: (r.arrival_offset, r.request_id))
        clips = self.trace.clips
        start = self.clock()
        pending: List[Tuple[TraceRecord, object]] = []
        for record in records:
            if self.honor_arrivals:
                scheduled = start + record.arrival_offset / self.speed
                delay = scheduled - self.clock()
                if delay > 0:
                    self.sleep(delay)
            if self._pin_epochs:
                # Pin each request to its recorded epoch: the engine
                # evaluates the slot under exactly the recorded threshold /
                # horizon, independent of the replay server's live knob.
                response = server.submit(
                    clips[record.digest],
                    label=record.label,
                    block=True,
                    threshold=record.threshold,
                    horizon=record.horizon,
                )
            else:
                response = server.submit(
                    clips[record.digest],
                    label=record.label,
                    block=True,
                )
            pending.append((record, response))
        results = [(record, response.result(timeout=result_timeout))
                   for record, response in pending]
        duration = self.clock() - start
        mismatches: List[ReplayMismatch] = []
        if self.verify:
            for record, result in results:
                threshold_moved = (
                    record.threshold is not None
                    and result.threshold is not None
                    and float(result.threshold) != float(record.threshold)
                )
                if (result.prediction != record.prediction
                        or result.exit_timestep != record.exit_timestep
                        or threshold_moved):
                    mismatches.append(ReplayMismatch(
                        request_id=record.request_id,
                        recorded_prediction=record.prediction,
                        recorded_exit=record.exit_timestep,
                        replayed_prediction=result.prediction,
                        replayed_exit=result.exit_timestep,
                        recorded_threshold=record.threshold,
                        replayed_threshold=result.threshold,
                    ))
        exits = np.array([result.exit_timestep for _, result in results],
                         dtype=np.int64)
        histogram = (np.bincount(exits, minlength=server.max_timesteps + 1)[1:]
                     if exits.size else np.zeros(server.max_timesteps,
                                                 dtype=np.int64))
        energies = np.array([result.energy for _, result in results
                             if result.energy is not None])
        edps = np.array([result.edp for _, result in results
                         if result.edp is not None])
        return ReplayReport(
            offered=len(records),
            completed=len(results),
            duration=duration,
            mismatches=mismatches,
            stats=server.stats(),
            exit_histogram=[int(c) for c in histogram],
            mean_exit=float(exits.mean()) if exits.size else 0.0,
            energy_mean=float(energies.mean()) if energies.size else None,
            energy_total=float(energies.sum()) if energies.size else None,
            edp_mean=float(edps.mean()) if edps.size else None,
        )

    def assert_exact(self, report: ReplayReport) -> None:
        """Raise with a readable diff if the replay moved any decision."""
        if report.exact:
            return
        preview = "; ".join(str(m) for m in report.mismatches[:5])
        raise AssertionError(
            f"replay diverged from trace: {len(report.mismatches)} of "
            f"{report.offered} decisions moved ({preview})"
        )
