"""Request / response primitives and the bounded admission queue.

A serving front-end accepts single-sample inference requests and returns
futures.  The admission queue is the backpressure point: it has a hard
capacity, and a submitter either blocks (optionally with a timeout) or gets
an immediate :class:`QueueFullError`, so an overloaded server sheds load at
the door instead of accumulating unbounded latency.

All timestamps are taken from an injectable monotonic clock so that tests and
the load generator can reason about latency deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Tuple

import numpy as np

from ..analysis.lockorder import named_lock

__all__ = [
    "Request",
    "RequestResult",
    "Response",
    "AdmissionQueue",
    "QueueFullError",
    "QueueClosedError",
    "ServerClosedError",
    "ThresholdEpoch",
    "EpochLedger",
    "clone_exception",
]


def clone_exception(error: BaseException) -> BaseException:
    """A fresh exception instance equivalent to ``error``.

    Failure paths that fan one error out to many futures must NOT set the
    same instance on all of them: every ``Response.result()`` caller
    re-raises its stored exception, and CPython's ``raise`` mutates the
    instance's ``__traceback__`` — concurrent waiters would race on one
    shared object (and a traceback chain would grow across unrelated
    callers).  Cloning per future keeps each waiter's raise private.

    Falls back to the original instance when the exception type has a
    non-standard constructor — a shared instance is still better than
    masking the real failure with a ``TypeError``.
    """
    try:
        clone = type(error)(*error.args)
    except Exception:
        return error
    clone.__cause__ = error.__cause__
    return clone


class QueueFullError(RuntimeError):
    """Raised when the admission queue is at capacity and blocking is off."""


class QueueClosedError(RuntimeError):
    """Raised when submitting to a queue that has been closed (draining server)."""


class ServerClosedError(RuntimeError):
    """Raised when submitting to a server that is not accepting requests.

    Defined here beside its sibling exceptions so lower layers (the replica
    pool's shutdown paths) can raise it without importing the server.
    """


@dataclass(frozen=True)
class ThresholdEpoch:
    """An immutable snapshot of the serving knobs one request runs under.

    The PR 5 caveat was a torn read: the engine recorded ``policy.threshold``
    *after* deciding exits with it, and replicas learned of changes through
    one-way messages — so a recorded threshold was not provably the one the
    decision used.  Epochs close that hole: the server stamps the live knobs
    into a frozen epoch at admission, the engine *evaluates* each slot under
    its stamped epoch, and the recorded threshold is the stamped value by
    construction.  ``epoch`` is a monotone version number so traces can prove
    ordering; ``brownout`` marks storm-degraded service (docs/RESILIENCE.md).
    """

    epoch: int
    threshold: Optional[float]
    horizon: Optional[int] = None
    brownout: bool = False

    def as_tuple(self) -> Tuple[int, Optional[float], Optional[int], bool]:
        """Picklable wire form for replica dispatch."""
        return (self.epoch, self.threshold, self.horizon, self.brownout)


class EpochLedger:
    """Versions the (threshold, horizon, brownout) triple across a server.

    ``stamp()`` returns the current epoch, bumping the version only when the
    knobs actually changed — so a steady-state server stamps one epoch into
    millions of requests and a moving-threshold trace records exactly one
    epoch per distinct operating point.
    """

    def __init__(self):
        self._lock = named_lock("serve.epochs")
        self._current: Optional[ThresholdEpoch] = None

    def stamp(
        self,
        threshold: Optional[float],
        horizon: Optional[int] = None,
        brownout: bool = False,
    ) -> ThresholdEpoch:
        with self._lock:
            current = self._current
            if (
                current is not None
                and current.threshold == threshold
                and current.horizon == horizon
                and current.brownout == brownout
            ):
                return current
            number = 0 if current is None else current.epoch + 1
            self._current = ThresholdEpoch(
                epoch=number, threshold=threshold, horizon=horizon,
                brownout=brownout,
            )
            return self._current

    @property
    def current(self) -> Optional[ThresholdEpoch]:
        with self._lock:
            return self._current


@dataclass
class Request:
    """A single-sample inference request.

    ``inputs`` holds one sample *without* the batch axis (shape equal to the
    dataset's ``sample_shape``); the batcher stacks requests into batches.

    ``priority`` is a storm-guard admission class (0=high, 1=normal, 2=low;
    see :mod:`repro.serve.storm`); ``deadline`` is an *absolute* time in the
    server's clock domain after which dispatch drops the request instead of
    serving it; ``epoch`` is the threshold epoch stamped at admission.
    """

    request_id: int
    inputs: np.ndarray
    label: Optional[int] = None
    arrival_time: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)
    priority: int = 1
    deadline: Optional[float] = None
    epoch: Optional[ThresholdEpoch] = None


@dataclass
class RequestResult:
    """Everything the server knows about one completed request."""

    request_id: int
    prediction: int
    exit_timestep: int
    score: float
    label: Optional[int] = None
    threshold: Optional[float] = None
    arrival_time: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0
    energy: Optional[float] = None
    edp: Optional[float] = None
    epoch: Optional[int] = None
    brownout: bool = False
    horizon: Optional[int] = None

    @property
    def latency(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_time - self.arrival_time

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a batch slot."""
        return self.start_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Time spent occupying a batch slot."""
        return self.finish_time - self.start_time

    @property
    def correct(self) -> Optional[bool]:
        if self.label is None:
            return None
        return bool(self.prediction == self.label)


class Response:
    """A minimal thread-safe future resolved by the serving worker."""

    def __init__(self):
        self._event = threading.Event()
        self._result: Optional[RequestResult] = None
        self._exception: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, result: RequestResult) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exception: BaseException) -> None:
        self._exception = exception
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> RequestResult:
        """Block until the request completes; raise its failure if it failed."""
        if not self._event.wait(timeout):
            raise TimeoutError("request did not complete within the timeout")
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result


class AdmissionQueue:
    """Bounded FIFO of ``(Request, Response)`` pairs with blocking semantics.

    ``close()`` rejects further submissions while letting the worker drain
    what is already queued — the graceful-shutdown half of backpressure.
    """

    def __init__(self, capacity: int = 64, clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self.clock = clock
        self._items: Deque[Tuple[Request, Response]] = deque()
        self._lock = named_lock("serve.queue")
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        # Dual-condition hygiene (docs/ANALYSIS.md): both conditions MUST
        # wrap the one queue lock — put() notifies _not_empty while holding
        # _not_full and vice versa, which is only sound because they are the
        # same mutex.  A condition constructed with its own implicit lock
        # here would turn every notify into a silent lost-wakeup bug.
        if not (
            self._not_full._lock is self._lock
            and self._not_empty._lock is self._lock
        ):
            raise AssertionError(
                "AdmissionQueue conditions must share the queue lock"
            )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        return len(self)

    # ------------------------------------------------------------------ #
    def put(
        self,
        request: Request,
        response: Response,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        """Enqueue a request, blocking for a slot or raising on backpressure."""
        with self._not_full:
            if self._closed:
                raise QueueClosedError("admission queue is closed")
            if len(self._items) >= self.capacity:
                if not block:
                    raise QueueFullError(
                        f"admission queue is at capacity ({self.capacity})"
                    )
                deadline = None if timeout is None else self.clock() + timeout
                while len(self._items) >= self.capacity and not self._closed:
                    remaining = None if deadline is None else deadline - self.clock()
                    if remaining is not None and remaining <= 0:
                        raise QueueFullError(
                            f"admission queue stayed full for {timeout:.3f}s"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    raise QueueClosedError("admission queue closed while waiting")
            request.arrival_time = self.clock()
            self._items.append((request, response))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Tuple[Request, Response]]:
        """Dequeue the oldest request, or None on timeout / closed-and-empty.

        The wait is a predicate loop, mirroring :meth:`put`: a spurious
        ``Condition.wait()`` wakeup (or a ``notify`` raced away by another
        consumer) re-waits for the *remaining* deadline instead of returning
        ``None`` early — with ``timeout=None`` the old single-wait version
        could return ``None`` from a spurious wakeup and the batcher would
        misread an occupied queue as an idle poll.
        """
        with self._not_empty:
            deadline = None if timeout is None else self.clock() + timeout
            while not self._items:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - self.clock()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def get_nowait(self) -> Optional[Tuple[Request, Response]]:
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Reject new submissions; already-queued requests remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def drain_pending(self, error: Optional[BaseException] = None) -> int:
        """Fail every queued request (non-graceful shutdown); returns the count.

        ``error`` overrides the default :class:`QueueClosedError` so callers
        can surface *why* the queue died (e.g. a typed replica-crash error
        when the last serving process exits with work still queued).
        """
        if error is None:
            error = QueueClosedError("server shut down before serving")
        with self._lock:
            failed = 0
            while self._items:
                _, response = self._items.popleft()
                # Per-future clone: concurrent result() callers must not
                # re-raise (and mutate the traceback of) one shared object.
                response.set_exception(clone_exception(error))
                failed += 1
            self._not_full.notify_all()
            return failed
