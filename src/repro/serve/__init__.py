"""repro.serve — a continuous-batching inference runtime for DT-SNN.

The paper shows that input-aware dynamic timesteps save compute per sample;
this package turns that saving into *throughput*.  The pieces, front to back:

* :class:`Request` / :class:`Response` / :class:`AdmissionQueue` — a bounded
  admission queue with blocking or fail-fast backpressure.
* :class:`InferenceEngine` — slot-based dynamic-timestep inference over a
  :class:`~repro.snn.SpikingNetwork`: one batched forward per timestep at a
  width equal to the number of live requests, with per-slot membrane state,
  local timestep counters and running logit sums.  Steps execute through the
  :mod:`repro.runtime` compiled-plan fast path by default (bitwise identical
  to the Tensor path, which stays available via ``use_runtime=False``).
* :class:`ContinuousBatcher` — refills slots freed by early exits from the
  queue *mid-horizon* in one batched admission round per refill, so the SNN
  always runs at full occupancy and a burst of B arrivals costs one state
  extension + one stem GEMM, not B of each.
* :class:`Server` — workers, futures, graceful drain.  With
  ``num_workers=N`` the workers are threads serving one model through one
  *shared* compiled plan (``repro.runtime.plan_registry``) with per-worker
  executor state; with ``num_replicas=N`` they are processes sharing the
  plan constants zero-copy through a shared-memory arena
  (:class:`~repro.serve.ReplicaPool`, ``repro.runtime.PlanArena``) — the
  GIL-free scaling axis, with typed crash isolation
  (:class:`ReplicaCrashError`).
* :class:`Telemetry` — latency percentiles, exit-timestep histograms, queue
  depth, occupancy and per-request energy/EDP via ``repro.imc``.
* :class:`AdaptiveThresholdController` — holds a p95 latency SLA by nudging
  the entropy threshold between calibrated accuracy bounds.
* :class:`StormGuard` — a load-storm FSM (NORMAL → WARN → STORM with
  hysteresis) over the admission queue: sheds by priority class, drops
  deadline-expired requests, and browns accuracy out gracefully under
  sustained overload (docs/RESILIENCE.md).  Threshold/horizon knobs are
  versioned :class:`ThresholdEpoch` stamps fixed at admission, so every
  recorded decision names the exact knob values its engine slot evaluated.
* :class:`LoadGenerator` / :func:`request_stream` — deterministic open- and
  closed-loop load for benchmarks and tests.
* :class:`TraceRecorder` / :class:`TraceReplayer` — a WAL-style traffic
  trace (every admitted request with its clip digest, arrival offset,
  threshold and recorded decision, plus a content-addressed clip store) and
  its deterministic replay against any server composition, asserting
  decision-exactness bitwise (docs/OBSERVABILITY.md).
* :class:`SpanTracker` / :class:`MetricsRegistry` — per-request lifecycle
  spans (queued → dispatched → admitted → exited → completed) and a
  Prometheus/JSON-exportable metrics registry fed by :class:`Telemetry`.
* :class:`Backtester` / :class:`BacktestSweep` — offline SLA backtesting:
  replays a recorded trace under *candidate* :class:`ThresholdSchedule`
  knobs instead of the recorded ones, scores each candidate against the
  full-horizon oracle, and emits a Pareto frontier (agreement vs. EDP vs.
  modeled p99) whose decisions are bitwise-identical across server
  compositions (docs/OBSERVABILITY.md §5).

Quickstart::

    from repro.serve import Server, request_stream, LoadGenerator
    from repro.core import EntropyExitPolicy

    server = Server(model, EntropyExitPolicy(0.2), batch_width=8).start()
    report = LoadGenerator(server).run(request_stream(test_set, 256, seed=0))
    server.shutdown()
    print(report.throughput_rps, server.stats()["latency_p95"])
"""

from .backtest import (
    BACKTEST_SCHEMA_VERSION,
    Backtester,
    BacktestSweep,
    CandidateResult,
    RecordedSchedule,
    ScheduleSegment,
    SweepResult,
    ThresholdSchedule,
    decision_digest,
    pareto_frontier,
)
from .batcher import ContinuousBatcher
from .controller import AdaptiveThresholdController, calibrated_threshold_bounds
from .engine import AdmissionRejectedError, CompletedSample, InferenceEngine
from .loadgen import (
    LoadGenerator,
    LoadReport,
    StormPhase,
    priority_cycle,
    request_stream,
    storm_phases,
)
from .obs import (
    SPAN_STAGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RequestSpan,
    SpanTracker,
)
from .replay import ReplayMismatch, ReplayReport, TraceReplayer
from .replica import ReplicaCrashError, ReplicaPool
from .request import (
    AdmissionQueue,
    EpochLedger,
    QueueClosedError,
    QueueFullError,
    Request,
    RequestResult,
    Response,
    ThresholdEpoch,
)
from .server import Server, ServerClosedError
from .storm import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    DeadlineExceededError,
    StormConfig,
    StormGuard,
    StormShedError,
    StormState,
)
from .telemetry import Telemetry
from .trace import Trace, TraceRecord, TraceRecorder, clip_digest, load_trace

__all__ = [
    "Request",
    "RequestResult",
    "Response",
    "AdmissionQueue",
    "QueueFullError",
    "QueueClosedError",
    "InferenceEngine",
    "CompletedSample",
    "AdmissionRejectedError",
    "ContinuousBatcher",
    "ReplicaCrashError",
    "ReplicaPool",
    "Server",
    "ServerClosedError",
    "Telemetry",
    "AdaptiveThresholdController",
    "calibrated_threshold_bounds",
    "LoadGenerator",
    "LoadReport",
    "request_stream",
    "StormPhase",
    "storm_phases",
    "priority_cycle",
    "StormGuard",
    "StormConfig",
    "StormState",
    "StormShedError",
    "DeadlineExceededError",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "ThresholdEpoch",
    "EpochLedger",
    "Trace",
    "TraceRecord",
    "TraceRecorder",
    "clip_digest",
    "load_trace",
    "TraceReplayer",
    "ReplayReport",
    "ReplayMismatch",
    "BACKTEST_SCHEMA_VERSION",
    "Backtester",
    "BacktestSweep",
    "CandidateResult",
    "RecordedSchedule",
    "ScheduleSegment",
    "SweepResult",
    "ThresholdSchedule",
    "decision_digest",
    "pareto_frontier",
    "SpanTracker",
    "RequestSpan",
    "SPAN_STAGES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
