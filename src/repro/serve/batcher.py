"""Continuous batching: keep the SNN forward pass at full occupancy.

A static batcher waits for a whole batch, runs it to completion, then starts
the next one — every early exit leaves a dead slot for the rest of the
horizon.  The :class:`ContinuousBatcher` instead treats the timestep loop as
the scheduling quantum: after every engine step it refills the slots freed by
early-exiting samples from the admission queue, splicing new requests in
*mid-horizon* with fresh membrane state.  The effect is that the compute the
exit policy saves is immediately reinvested in queued traffic, which is how
DT-SNN's average-timestep reduction turns into requests/second.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..core.accounting import InferenceCostModel
from .controller import AdaptiveThresholdController
from .engine import AdmissionRejectedError, InferenceEngine
from .request import AdmissionQueue, RequestResult
from .storm import DeadlineExceededError
from .telemetry import Telemetry

__all__ = ["ContinuousBatcher", "finalize_result", "price_request"]


def price_request(
    cost_model: Optional[InferenceCostModel], exit_timestep: int
) -> tuple:
    """Energy / EDP for one completed request (``(None, None)`` without a
    cost model) — the single pricing rule for every completion path (thread
    batcher and replica collector)."""
    if cost_model is None:
        return None, None
    energy = float(cost_model.energy(exit_timestep))
    return energy, energy * float(cost_model.latency(exit_timestep))


def finalize_result(
    result: RequestResult,
    response,
    telemetry: Telemetry,
    controller: Optional[AdaptiveThresholdController],
) -> None:
    """Record, steer, then resolve — shared by every completion path.

    The future is resolved LAST so a waiting client observes telemetry that
    already includes its own request; keep that ordering here, in one
    place, rather than re-deriving it per path.
    """
    telemetry.record_completion(result)
    if controller is not None:
        controller.on_completion(result, telemetry)
    response.set_result(result)


class ContinuousBatcher:
    """Runs one engine at a fixed maximum width against an admission queue.

    Parameters
    ----------
    engine:
        The slot-based inference engine (owns the model and exit policy).
    queue:
        Bounded admission queue shared with the server front-end.
    batch_width:
        Maximum number of concurrently active slots.
    telemetry:
        Metric sink; one is created when omitted.
    cost_model:
        Optional per-inference cost model (e.g. :class:`repro.imc.IMCChip`);
        when present every completed request is priced at its own exit
        timestep, exactly like :func:`repro.core.account_result`.
    controller:
        Optional SLA threshold controller, consulted after completions.
    trace:
        Optional :class:`repro.serve.trace.TraceRecorder`; every completed
        request is appended to the WAL just before its future resolves.
    spans:
        Optional :class:`repro.serve.obs.SpanTracker`; each completion
        stamps the request's lifecycle stages in one call.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        queue: AdmissionQueue,
        batch_width: int = 8,
        telemetry: Optional[Telemetry] = None,
        cost_model: Optional[InferenceCostModel] = None,
        controller: Optional[AdaptiveThresholdController] = None,
        clock: Callable[[], float] = time.monotonic,
        trace=None,
        spans=None,
    ):
        if batch_width < 1:
            raise ValueError("batch_width must be >= 1")
        self.engine = engine
        self.queue = queue
        self.batch_width = int(batch_width)
        self.telemetry = telemetry or Telemetry()
        self.cost_model = cost_model
        self.controller = controller
        self.clock = clock
        self.trace = trace
        self.spans = spans
        # Admission rounds rejected by engine validation (e.g. a malformed
        # request co-drained with the round); their futures were failed but
        # the worker kept serving.
        self.rejected_rounds = 0

    # ------------------------------------------------------------------ #
    def _fill_slots(self, wait_timeout: Optional[float] = None) -> int:
        """Splice queued requests into free slots; returns admissions.

        The whole round is drained from the queue first and admitted through
        :meth:`InferenceEngine.admit_batch` in one go, so a burst of B
        arrivals costs one state extension and (under direct encoding) one
        batched stem GEMM instead of B of each — admission work per request
        stays flat in the burst size.
        """
        admissions = []
        free = self.batch_width - self.engine.active_count
        while len(admissions) < free:
            if not admissions and self.engine.idle and wait_timeout:
                item = self.queue.get(timeout=wait_timeout)
            else:
                item = self.queue.get_nowait()
            if item is None:
                break
            request, response = item
            # Deadline enforcement happens here, at dispatch: a request that
            # waited out its deadline in the queue is dropped before it can
            # occupy an engine slot — spending timesteps on an answer whose
            # client already gave up only deepens the backlog.
            if request.deadline is not None and self.clock() > request.deadline:
                error = DeadlineExceededError(
                    f"request {request.request_id} missed its deadline "
                    f"before dispatch"
                )
                now = self.clock()
                self.telemetry.record_deadline_drop(request.priority)
                if self.trace is not None:
                    self.trace.record_rejection(request, now, reason="deadline")
                if self.spans is not None:
                    self.spans.record_failure(request.request_id, now, error)
                response.set_exception(error)
                continue
            admissions.append((request, response, self.clock()))
        try:
            self.engine.admit_batch(admissions)
        except AdmissionRejectedError as error:
            # The engine rejected the round before mutating any state and
            # already resolved every future in it with the error, so one
            # malformed request costs its own round — not the worker, the
            # in-flight neighbours, or the server's admission queue.
            self.rejected_rounds += 1
            # Every rejection must still be ACCOUNTED: request conservation
            # (submitted == completed + rejected + shed + deadline_drops)
            # holds only if each failed future lands in exactly one counter,
            # and the WAL/span record is what lets a trace consumer see the
            # rejection at all.
            now = self.clock()
            for request, _, _ in admissions:
                self.telemetry.record_rejection()
                if self.trace is not None:
                    self.trace.record_rejection(request, now)
                if self.spans is not None:
                    self.spans.record_failure(request.request_id, now, error)
            return 0
        return len(admissions)

    def _complete(self, finished) -> List[RequestResult]:
        now = self.clock()
        results: List[RequestResult] = []
        for sample in finished:
            energy, edp = price_request(self.cost_model, sample.exit_timestep)
            result = RequestResult(
                request_id=sample.request.request_id,
                prediction=sample.prediction,
                exit_timestep=sample.exit_timestep,
                score=sample.score,
                label=sample.request.label,
                threshold=sample.threshold,
                arrival_time=sample.request.arrival_time,
                start_time=sample.start_time,
                finish_time=now,
                energy=energy,
                edp=edp,
                epoch=sample.epoch,
                brownout=sample.brownout,
                horizon=sample.horizon,
            )
            results.append(result)
            # Observability first, future last: a trace/span consumer that
            # reacts to the resolved future must already see this request.
            if self.trace is not None:
                self.trace.record_request(sample.request, result)
            if self.spans is not None:
                self.spans.record_result(result, now)
            finalize_result(result, sample.response, self.telemetry, self.controller)
        return results

    # ------------------------------------------------------------------ #
    def run_once(self, wait_timeout: Optional[float] = None) -> List[RequestResult]:
        """Refill slots, advance one timestep, resolve completions."""
        self._fill_slots(wait_timeout=wait_timeout)
        if self.engine.idle:
            # Idle poll: nothing admitted, nothing to step — don't let gauge
            # samples accumulate (or skew toward idle periods) while waiting.
            return []
        self.telemetry.record_queue_depth(self.queue.depth())
        self.telemetry.record_occupancy(self.engine.active_count, self.batch_width)
        return self._complete(self.engine.step())

    def run_until_drained(self, wait_timeout: float = 0.05) -> int:
        """Serve until the queue is closed-and-empty and all slots finished.

        This is the graceful-drain loop: with the queue still open it keeps
        waiting for traffic; once :meth:`AdmissionQueue.close` is called it
        finishes the backlog and every in-flight sample, then returns the
        number of requests completed.
        """
        completed = 0
        while True:
            completed += len(self.run_once(wait_timeout=wait_timeout))
            if self.engine.idle and self.queue.depth() == 0 and self.queue.closed:
                return completed
