"""Serving front-end around the continuous batcher (threads or processes).

:class:`Server` owns the admission queue and the lifecycle: ``start()`` →
``submit()`` futures → ``drain()`` (finish all accepted work, reject new) or
``shutdown(drain=False)`` (abort in-flight).  Two scaling axes share that
front-end:

* ``num_workers=N`` — worker *threads* over one shared compiled plan.
  Cheap, but GIL-bound: the op-dispatch loop serializes, so N threads
  saturate about one core of Python.
* ``num_replicas=N`` — worker *processes* over one shared-memory plan arena
  (:mod:`repro.serve.replica`).  Each replica runs the same engine/batcher
  stack in its own interpreter; the constants are zero-copy views into one
  ``/dev/shm`` segment, so memory grows sub-linearly in N.

Either way the workers share the queue, telemetry and — when adaptive — the
exit policy, so the SLA controller steers the whole fleet with one knob, and
per-sample batch invariance keeps every request's decisions identical to the
sequential oracle regardless of which worker served it.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.accounting import InferenceCostModel
from ..core.policies import ExitPolicy
from ..snn.network import SpikingNetwork
from .batcher import ContinuousBatcher
from .controller import AdaptiveThresholdController
from .engine import InferenceEngine
from .replica import ReplicaPool
from .request import (
    AdmissionQueue,
    EpochLedger,
    QueueClosedError,
    QueueFullError,
    Request,
    Response,
    ServerClosedError,
)
from .storm import PRIORITY_NORMAL, StormConfig, StormGuard, StormShedError
from .telemetry import Telemetry

__all__ = ["Server", "ServerClosedError"]


class Server:
    """In-process DT-SNN inference server with continuous batching.

    Parameters
    ----------
    model:
        The spiking network served by the primary worker(s).
    policy:
        Exit policy shared by all workers (and mutated by the controller).
    num_workers:
        Worker threads serving ``model`` itself.  With ``num_workers > 1``
        the replicas *share one compiled plan* (weights are read-only at
        serve time, so the lowered op list and folded constants are compiled
        once via the :data:`repro.runtime.plan_registry` and reused), while
        every worker keeps its own executor state — membranes, scratch,
        slots.  This requires the compiled-plan fast path: on the Tensor
        oracle the LIF membrane state lives *inside* the shared model and
        replicas would corrupt each other.  Spike-statistics collection is
        disabled on shared-model workers (the per-layer counters live on the
        shared LIF modules and would race across threads).
    num_replicas:
        Worker *processes* serving ``model`` (mutually exclusive with
        ``num_workers > 1`` / ``extra_models``).  The plan constants are
        exported once into a shared-memory arena
        (:class:`repro.runtime.PlanArena`) and every replica attaches
        zero-copy views, so N replicas hold one copy of the weights; unlike
        thread workers they do not share a GIL, which is what makes this
        the CPU scaling axis.  Decisions stay identical to the sequential
        oracle; a replica crash fails at most its in-flight round with
        :class:`~repro.serve.ReplicaCrashError` while the survivors keep
        serving.  After an in-place weight reload on ``model``, call
        :meth:`refresh_replicas` to propagate.
    replica_window:
        Max requests resident in one replica at a time (default: one
        ``batch_width`` — the crash-loss bound).  Raising it overlaps
        dispatch with execution at the cost of a larger loss window.
    replica_transport:
        IPC payload path for replica mode.  ``"ring"`` (default) moves
        frames and completions through preallocated shared-memory rings
        (:mod:`repro.runtime.rings`) with only cursors on the pipes;
        ``"pipe"`` restores the legacy pickled-payload transport (the
        benchmark baseline).  Decisions are bitwise identical either way.
    extra_models:
        Additional model replicas; each gets its own worker thread and
        engine.  Replicas must not share parameters *state* — build them
        separately or deep-copy the primary.  Use this (not ``num_workers``)
        when workers must run the Tensor oracle or keep statistics.
    batch_width:
        Maximum concurrent slots per worker.
    queue_capacity:
        Admission-queue bound (the backpressure limit).
    cost_model:
        Optional per-request energy/latency pricer (e.g. ``IMCChip``).
    controller:
        Optional :class:`AdaptiveThresholdController` holding a latency SLA.
    use_runtime:
        Per-engine execution path: ``None`` (default) lets the
        ``REPRO_RUNTIME`` gate pick the compiled-plan fast path when the
        model lowers; ``False`` pins the define-by-run Tensor oracle.  Both
        paths produce bitwise-identical predictions and exit timesteps, so
        the oracle switch is a pure speed/debuggability trade.

    Dtype guarantees
    ----------------
    All served inference runs weak-scalar float32 (docs/NUMERICS.md): input
    frames are encoded to float32, every activation / membrane / logit the
    workers produce is float32, and frozen conv+norm pairs execute as folded
    single GEMMs on both paths.  Only decision-side score bookkeeping
    (entropy values reported in telemetry) uses float64.  Setting
    ``REPRO_FLOAT64=1`` before constructing the server restores the legacy
    float64-promoting numerics on both paths at once.
    """

    def __init__(
        self,
        model: SpikingNetwork,
        policy: ExitPolicy,
        max_timesteps: Optional[int] = None,
        batch_width: int = 8,
        queue_capacity: int = 64,
        num_workers: int = 1,
        num_replicas: int = 0,
        replica_window: Optional[int] = None,
        extra_models: Sequence[SpikingNetwork] = (),
        cost_model: Optional[InferenceCostModel] = None,
        controller: Optional[AdaptiveThresholdController] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
        use_runtime: Optional[bool] = None,
        trace=None,
        spans=None,
        storm=None,
        replica_transport: str = "ring",
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_replicas < 0:
            raise ValueError("num_replicas must be >= 0")
        self.clock = clock
        self.telemetry = telemetry or Telemetry()
        # Observability sinks (both optional, both None-cost when absent):
        # ``trace`` is a repro.serve.trace.TraceRecorder appending one WAL
        # record per completion/rejection; ``spans`` is a
        # repro.serve.obs.SpanTracker stamping request lifecycle stages.
        self.trace = trace
        self.spans = spans
        self.queue = AdmissionQueue(capacity=queue_capacity, clock=clock)
        self.policy = policy
        # Every submission is stamped with a ThresholdEpoch — the frozen
        # (threshold, horizon, brownout) triple its engine slot will evaluate
        # under — so the recorded threshold is provably the deciding one on
        # every composition (docs/RESILIENCE.md).
        self.epochs = EpochLedger()
        # Overload resilience (docs/RESILIENCE.md): ``storm`` may be a
        # StormConfig, or any truthy value for the default watermarks.
        self.storm: Optional[StormGuard] = None
        if storm:
            config = storm if isinstance(storm, StormConfig) else None
            self.storm = StormGuard(
                self.queue,
                self.telemetry,
                config=config,
                clock=clock,
                controller=controller,
                policy=policy,
            )
        self._ids = itertools.count()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        if num_replicas:
            if num_workers > 1 or extra_models:
                raise ValueError(
                    "num_replicas is a process-level alternative to thread "
                    "workers: combine it with neither num_workers > 1 nor "
                    "extra_models"
                )
            self.batchers: List[ContinuousBatcher] = []
            self.replicas: Optional[ReplicaPool] = ReplicaPool(
                model,
                policy,
                num_replicas=num_replicas,
                queue=self.queue,
                telemetry=self.telemetry,
                max_timesteps=max_timesteps,
                batch_width=batch_width,
                use_runtime=use_runtime,
                cost_model=cost_model,
                controller=controller,
                clock=clock,
                inflight_window=replica_window,
                trace=trace,
                spans=spans,
                transport=replica_transport,
            )
            self.max_timesteps = self.replicas.max_timesteps
            return
        self.replicas = None
        shared = num_workers > 1
        engines = [
            InferenceEngine(
                model,
                policy,
                max_timesteps=max_timesteps,
                use_runtime=use_runtime,
                # Shared-model replicas must not race the spike counters on
                # the shared LIF modules (see the num_workers docstring).
                collect_statistics=not shared,
            )
            for _ in range(num_workers)
        ]
        if shared:
            stragglers = [engine for engine in engines if not engine.fast_path]
            if stragglers:
                raise ValueError(
                    "num_workers > 1 shares one model across workers, which "
                    "requires the compiled-plan runtime (per-executor state); "
                    "this model runs on the Tensor oracle — pass replicas via "
                    "extra_models instead"
                )
        engines.extend(
            InferenceEngine(m, policy, max_timesteps=max_timesteps, use_runtime=use_runtime)
            for m in extra_models
        )
        self.batchers: List[ContinuousBatcher] = [
            ContinuousBatcher(
                engine,
                self.queue,
                batch_width=batch_width,
                telemetry=self.telemetry,
                cost_model=cost_model,
                controller=controller,
                clock=clock,
                trace=trace,
                spans=spans,
            )
            for engine in engines
        ]
        self.max_timesteps = self.batchers[0].engine.max_timesteps

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "Server":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.replicas is not None:
            # Block until the replicas are actually serving: a "started"
            # server accepts traffic at its steady-state latency instead of
            # hiding N interpreter startups behind the first futures.  A
            # failed start must not leak half a fleet (or the arena).
            try:
                self.replicas.start()
                if self.replicas.wait_ready() == 0:
                    # Every replica died during startup (rebuild/attach
                    # failure in the spawn interpreter): surface it HERE,
                    # not as ServerClosedError on some later submit with
                    # only child stderr as the root-cause signal.
                    raise ServerClosedError(
                        "no serving replica became ready; see the replica "
                        "process tracebacks on stderr"
                    )
            except BaseException:
                self.queue.close()
                self.replicas.abort()
                # Anything a concurrent submitter slipped into the queue
                # after _started flipped must not strand its client.
                self.queue.drain_pending()
                raise
            return self
        for index, batcher in enumerate(self.batchers):
            thread = threading.Thread(
                target=self._worker, args=(batcher,), name=f"repro-serve-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()
        return self

    def _worker(self, batcher: ContinuousBatcher) -> None:
        try:
            while not self._stop.is_set():
                batcher.run_once(wait_timeout=0.02)
                if batcher.engine.idle and self.queue.closed and self.queue.depth() == 0:
                    break
        except BaseException as error:  # noqa: BLE001 - a dead worker must not
            # strand futures: fail everything it owned and stop admissions so
            # clients see the error instead of hanging until their timeout.
            failure = ServerClosedError(f"serving worker crashed: {error!r}")
            failure.__cause__ = error
            shed = batcher.engine.fail_active(failure)
            self.queue.close()
            shed += self.queue.drain_pending()
            self.telemetry.record_shed(shed)
            raise

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop admissions, finish every accepted request, stop the workers.

        With replicas this also retires the worker processes and unlinks the
        shared-memory arena: a drained server leaves no ``/dev/shm`` entry.
        """
        self.queue.close()
        if self.replicas is not None:
            self.replicas.drain(timeout)
        else:
            for thread in self._threads:
                thread.join(timeout)
        if self.trace is not None:
            # Drain is the orderly exit: make the WAL durable while the
            # process is still healthy (crash recovery is the *other* path).
            self.trace.flush()

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the server; with ``drain=False`` abort queued/in-flight work."""
        if drain:
            self.drain(timeout=timeout)
            return
        self.queue.close()
        if self.replicas is not None:
            self.replicas.abort()
            self.telemetry.record_shed(self.queue.drain_pending())
            if self.trace is not None:
                self.trace.flush()
            return
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        shed = self.queue.drain_pending()
        for batcher in self.batchers:
            shed += batcher.engine.fail_active(ServerClosedError("server shut down"))
        self.telemetry.record_shed(shed)
        if self.trace is not None:
            self.trace.flush()

    def refresh_replicas(self) -> int:
        """Propagate an in-place weight reload (``load_state_dict``) to the
        replica processes through the arena; returns changed slots.  Thread
        workers read the live parameter objects and need no call."""
        if self.replicas is None:
            return 0
        return self.replicas.refresh_weights()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        inputs: np.ndarray,
        label: Optional[int] = None,
        block: bool = True,
        timeout: Optional[float] = None,
        *,
        priority: int = PRIORITY_NORMAL,
        deadline: Optional[float] = None,
        threshold: Optional[float] = None,
        horizon: Optional[int] = None,
    ) -> Response:
        """Enqueue one sample; returns a future.

        With ``block=False`` a full queue raises :class:`QueueFullError`
        immediately (load shedding); otherwise the caller waits for a slot,
        up to ``timeout`` seconds.

        ``priority`` is the storm-guard admission class (0=high, 1=normal,
        2=low); under WARN/STORM lower classes are shed at the door with
        :class:`~repro.serve.StormShedError`.  ``deadline`` is a *relative*
        budget in seconds: a request still undispatched after it is dropped
        with :class:`~repro.serve.DeadlineExceededError`.  ``threshold`` /
        ``horizon`` pin this request's exit knobs explicitly (the trace
        replayer uses this to re-run each request under its recorded epoch);
        when omitted, the live policy knob — possibly brown-out-escalated by
        the storm guard — is stamped instead.
        """
        if not self._started:
            raise ServerClosedError("server not started")
        request = Request(
            request_id=next(self._ids),
            inputs=np.asarray(inputs, dtype=np.float32),
            label=None if label is None else int(label),
            priority=int(priority),
        )
        if deadline is not None:
            request.deadline = self.clock() + float(deadline)
        response = Response()
        if self.storm is not None:
            self.storm.observe()
            try:
                self.storm.admit(request.priority)
            except StormShedError:
                self.telemetry.record_storm_shed(request.priority)
                if self.trace is not None:
                    self.trace.record_rejection(
                        request, self.clock(), reason="storm"
                    )
                raise
        # Stamp the epoch AFTER the admission gate: the stamped knobs are the
        # ones in force at the instant this request enters the system.
        live = getattr(self.policy, "threshold", None)
        if live is not None:
            live = float(live)
        if threshold is not None or horizon is not None:
            effective_threshold = live if threshold is None else float(threshold)
            effective_horizon = None if horizon is None else int(horizon)
            brownout = False
        elif self.storm is not None:
            effective_threshold, effective_horizon, brownout = (
                self.storm.effective(live)
            )
        else:
            effective_threshold, effective_horizon, brownout = live, None, False
        request.epoch = self.epochs.stamp(
            effective_threshold, effective_horizon, brownout
        )
        try:
            self.queue.put(request, response, block=block, timeout=timeout)
        except QueueFullError:
            self.telemetry.record_rejection()
            if self.trace is not None:
                self.trace.record_rejection(request, self.clock())
            raise
        except QueueClosedError as error:
            raise ServerClosedError(str(error)) from error
        return response

    def predict(self, inputs: np.ndarray, timeout: Optional[float] = None) -> int:
        """Convenience wrapper: submit one sample and wait for its prediction."""
        return self.submit(inputs).result(timeout=timeout).prediction

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, float]:
        """Telemetry snapshot plus live queue / threshold gauges."""
        stats = self.telemetry.snapshot()
        stats["queue_depth"] = float(self.queue.depth())
        if self.replicas is not None:
            stats["num_workers"] = float(self.replicas.num_replicas)
            stats["live_replicas"] = float(self.replicas.live_replicas)
        else:
            stats["num_workers"] = float(len(self.batchers))
        threshold = getattr(self.policy, "threshold", None)
        if threshold is not None:
            stats["threshold"] = float(threshold)
        if self.storm is not None:
            stats["storm_state"] = float(self.storm.state_code)
        current = self.epochs.current
        if current is not None:
            stats["threshold_epoch"] = float(current.epoch)
        return stats
