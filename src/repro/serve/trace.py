"""Traffic trace recording: a WAL-style, append-only record of served traffic.

A serving deployment needs *evidence*, not anecdotes: which requests arrived
when, what threshold each was admitted under, where each one exited, and what
it cost.  The :class:`TraceRecorder` captures exactly that as two append-only
files:

* ``<path>`` — the **record WAL**: one JSON object per line, one line per
  event (a ``header`` describing the serving configuration, a ``request``
  line per completed request, a ``reject`` line per load-shed submission).
  Every line carries a CRC32 of its canonical payload, so a reader can
  detect — and recover cleanly from — a partial line left by a crash
  mid-write: :func:`load_trace` keeps the longest valid prefix, exactly like
  a write-ahead log.
* ``<path>.clips`` — the **clip store**: the raw input arrays, framed as
  ``magic | digest | dtype | shape | payload | crc`` records and written
  once per *unique* clip (content-addressed by the same 128-bit BLAKE2b
  digest the serving engine interns), so replayed traffic costs one frame no
  matter how often it recurs.  A truncated tail frame is likewise dropped at
  load.

Records reference clips by digest, which is what makes a trace *replayable*:
:class:`repro.serve.replay.TraceReplayer` resubmits the recorded clips in
recorded arrival order against any server composition and checks the
decisions bitwise against the recorded exits.

Timestamps are stored as offsets from the first recorded arrival, in the
server's (injectable) clock domain — a trace is a relative schedule, not a
wall-clock log, so replays can honor or compress it deterministically.

Overhead: recording is OFF unless a recorder is passed to
:class:`~repro.serve.Server`; when on, the hot path pays one dict + one
buffered ``write`` per completion (flushed per record so a crashed server
loses at most the line being written) and one digest per request.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..analysis.lockorder import named_lock
from .request import Request, RequestResult

__all__ = [
    "TRACE_VERSION",
    "TraceRecord",
    "Trace",
    "TraceRecorder",
    "load_trace",
    "clip_digest",
]

TRACE_VERSION = 1

# Clip-store framing: magic, 16-byte digest, dtype string, shape, payload, crc.
_CLIP_MAGIC = b"RPCL"
_CLIP_HEADER = struct.Struct("<4s16sB")  # magic, digest, dtype-string length


def clip_digest(inputs: np.ndarray) -> bytes:
    """128-bit BLAKE2b content digest of one clip (shape/dtype-prefixed).

    Matches the serving engine's stem-key interning rule
    (:meth:`repro.serve.InferenceEngine._intern_stem_key`): same clip bytes,
    same digest — so a trace deduplicates replayed traffic exactly the way
    the stem memo does.
    """
    array = np.ascontiguousarray(inputs, dtype=np.float32)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr((array.shape, array.dtype.str)).encode())
    digest.update(array.data)
    return digest.digest()


@dataclass
class TraceRecord:
    """One admitted-and-completed request, as recorded in the WAL."""

    request_id: int
    digest: str  # hex of the 16-byte clip digest (clip-store key)
    arrival_offset: float  # seconds since the trace's first arrival
    exit_timestep: int
    prediction: int
    score: float
    threshold: Optional[float] = None
    label: Optional[int] = None
    queue_delay: float = 0.0
    service_time: float = 0.0
    energy: Optional[float] = None
    sla_class: Optional[str] = None
    # Threshold-epoch stamp (PR 7): the monotone epoch number the request ran
    # under, the effective horizon, whether it was brown-out service, and its
    # admission priority class.  Older traces load these as None/defaults.
    epoch: Optional[int] = None
    horizon: Optional[int] = None
    brownout: bool = False
    priority: Optional[int] = None


@dataclass
class Trace:
    """A loaded trace: header + request records + rejections + clip store."""

    header: Dict[str, Any]
    records: List[TraceRecord]
    rejections: List[Dict[str, Any]]
    clips: Dict[str, np.ndarray]
    truncated: bool = False  # a partial/corrupt tail was dropped at load

    @property
    def threshold(self) -> Optional[float]:
        value = self.header.get("threshold")
        return None if value is None else float(value)

    @property
    def max_timesteps(self) -> Optional[int]:
        value = self.header.get("max_timesteps")
        return None if value is None else int(value)

    def fixed_threshold(self) -> Optional[float]:
        """The single threshold every record ran under, or ``None`` if the
        threshold moved mid-trace (an SLA controller run) — in which case a
        bitwise replay is not defined and the replayer refuses by default."""
        values = {record.threshold for record in self.records}
        values.discard(None)
        if len(values) > 1:
            return None
        if values:
            return float(next(iter(values)))
        return self.threshold

    def epoch_stamped(self) -> bool:
        """True when every record carries a threshold-epoch stamp.

        An epoch-stamped trace supports bitwise replay *even when the
        threshold moved mid-trace*: each record's threshold is provably the
        one its engine slot evaluated (the engine pins stamped knobs
        per-slot), so the replayer can pin each request to its recorded
        threshold/horizon instead of refusing.
        """
        return bool(self.records) and all(
            record.epoch is not None and record.threshold is not None
            for record in self.records
        )


def _encode_line(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps({**payload, "crc": crc}, sort_keys=True,
                      separators=(",", ":")) + "\n"


def _decode_line(line: str) -> Optional[Dict[str, Any]]:
    """Parse + CRC-check one WAL line; ``None`` marks a corrupt/partial line."""
    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    crc = payload.pop("crc", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if crc != zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF:
        return None
    return payload


class TraceRecorder:
    """Appends served-traffic records to a WAL + content-addressed clip store.

    Thread-safe: the thread batcher, the replica collector and the server
    front-end all record through one lock.  Every record is flushed to the OS
    on write (a crashed *process* loses at most the line in flight; a crashed
    *machine* loses what the OS had not persisted — call :meth:`close`, which
    fsyncs, at drain for full durability).

    Parameters
    ----------
    path:
        WAL file path; the clip store lands at ``<path>.clips``.
    meta:
        Arbitrary JSON-serializable configuration recorded in the header
        (model/dataset/threshold — whatever a replay needs to rebuild the
        serving context).
    store_clips:
        Record the input payloads (required for replay).  ``False`` keeps
        only the event stream — half the bytes, still audit-grade.
    """

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None,
                 store_clips: bool = True):
        self.path = str(path)
        self.clips_path = self.path + ".clips"
        self._lock = named_lock("serve.trace.wal")
        self._store_clips = bool(store_clips)
        self._seen_digests: set = set()
        self._base: Optional[float] = None
        self._closed = False
        self.records_written = 0
        self.rejections_written = 0
        self._wal = open(self.path, "w", encoding="utf-8")
        self._clips = open(self.clips_path, "wb") if self._store_clips else None
        header = {
            "kind": "header",
            "version": TRACE_VERSION,
            "store_clips": self._store_clips,
        }
        header.update(meta or {})
        self._write_line(header)

    # ------------------------------------------------------------------ #
    def _write_line(self, payload: Dict[str, Any]) -> None:
        self._wal.write(_encode_line(payload))
        self._wal.flush()

    def _offset(self, timestamp: float) -> float:
        # First recorded event pins the trace origin; offsets are what make
        # the trace a replayable schedule rather than a wall-clock log.
        if self._base is None:
            self._base = float(timestamp)
        return float(timestamp) - self._base

    def _write_clip(self, digest: bytes, inputs: np.ndarray) -> None:
        if self._clips is None or digest in self._seen_digests:
            return
        self._seen_digests.add(digest)
        array = np.ascontiguousarray(inputs, dtype=np.float32)
        dtype = array.dtype.str.encode("ascii")
        body = io.BytesIO()
        body.write(_CLIP_HEADER.pack(_CLIP_MAGIC, digest, len(dtype)))
        body.write(dtype)
        body.write(struct.pack("<B", array.ndim))
        body.write(struct.pack(f"<{array.ndim}I", *array.shape))
        payload = array.tobytes()
        body.write(struct.pack("<Q", len(payload)))
        body.write(payload)
        frame = body.getvalue()
        self._clips.write(frame)
        self._clips.write(struct.pack("<I", zlib.crc32(frame) & 0xFFFFFFFF))
        self._clips.flush()

    # ------------------------------------------------------------------ #
    def record_request(self, request: Request, result: RequestResult,
                       sla_class: Optional[str] = None) -> None:
        """Record one completed request (called by every completion path)."""
        digest = clip_digest(request.inputs)
        with self._lock:
            if self._closed:
                return
            self._write_clip(digest, request.inputs)
            self._write_line({
                "kind": "request",
                "id": int(result.request_id),
                "digest": digest.hex(),
                "arrival": round(self._offset(result.arrival_time), 9),
                "exit_t": int(result.exit_timestep),
                "prediction": int(result.prediction),
                "score": float(result.score),
                "threshold": result.threshold,
                "label": result.label,
                "queue_delay": round(float(result.queue_delay), 9),
                "service": round(float(result.service_time), 9),
                "energy": result.energy,
                "sla": sla_class,
                "epoch": getattr(result, "epoch", None),
                "horizon": getattr(result, "horizon", None),
                "brownout": bool(getattr(result, "brownout", False)),
                "priority": int(getattr(request, "priority", 1)),
            })
            self.records_written += 1

    def record_rejection(self, request: Request, timestamp: float,
                         reason: Optional[str] = None) -> None:
        """Record one shed/rejected submission.

        ``reason`` distinguishes the shed paths: ``None``/"queue" for
        queue-full backpressure, "storm" for storm-guard class sheds,
        "deadline" for deadline-expired dispatch drops.
        """
        digest = clip_digest(request.inputs)
        with self._lock:
            if self._closed:
                return
            line = {
                "kind": "reject",
                "id": int(request.request_id),
                "digest": digest.hex(),
                "arrival": round(self._offset(timestamp), 9),
            }
            if reason is not None:
                line["reason"] = str(reason)
                line["priority"] = int(getattr(request, "priority", 1))
            self._write_line(line)
            self.rejections_written += 1

    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Push buffered bytes to the OS (the server calls this at drain)."""
        with self._lock:
            if self._closed:
                return
            self._wal.flush()
            if self._clips is not None:
                self._clips.flush()

    def close(self) -> None:
        """Flush, fsync and close both files (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for handle in (self._wal, self._clips):
                if handle is None:
                    continue
                handle.flush()
                os.fsync(handle.fileno())  # lock-ok: close() teardown only; the lock orders the final fsync after every in-flight append
                handle.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Loading (WAL recovery)
# --------------------------------------------------------------------------- #
def _load_clips(path: str) -> Tuple[Dict[str, np.ndarray], bool]:
    """Read the framed clip store; returns (clips, truncated-tail flag).

    Recovery contract: frames are validated front to back, and the first
    frame that fails (short read, bad magic, CRC mismatch — a crash mid-
    append) ends the scan.  Everything before it is intact by construction.
    """
    clips: Dict[str, np.ndarray] = {}
    if not os.path.exists(path):
        return clips, False
    with open(path, "rb") as handle:
        data = handle.read()
    cursor = 0
    truncated = False
    total = len(data)
    while cursor < total:
        start = cursor
        head = data[cursor:cursor + _CLIP_HEADER.size]
        if len(head) < _CLIP_HEADER.size:
            truncated = True
            break
        magic, digest, dtype_len = _CLIP_HEADER.unpack(head)
        if magic != _CLIP_MAGIC:
            truncated = True
            break
        cursor += _CLIP_HEADER.size
        if cursor + dtype_len + 1 > total:
            truncated = True
            break
        dtype = data[cursor:cursor + dtype_len].decode("ascii")
        cursor += dtype_len
        ndim = data[cursor]
        cursor += 1
        if cursor + 4 * ndim + 8 > total:
            truncated = True
            break
        shape = struct.unpack(f"<{ndim}I", data[cursor:cursor + 4 * ndim])
        cursor += 4 * ndim
        (nbytes,) = struct.unpack("<Q", data[cursor:cursor + 8])
        cursor += 8
        if cursor + nbytes + 4 > total:
            truncated = True
            break
        payload = data[cursor:cursor + nbytes]
        cursor += nbytes
        (crc,) = struct.unpack("<I", data[cursor:cursor + 4])
        cursor += 4
        if zlib.crc32(data[start:cursor - 4]) & 0xFFFFFFFF != crc:
            truncated = True
            cursor = start
            break
        clips[digest.hex()] = np.frombuffer(payload, dtype=dtype).reshape(shape)
    return clips, truncated


def load_trace(path: str, load_clips: bool = True) -> Trace:
    """Load a trace, recovering the longest valid prefix of each file.

    A line that fails to parse or fails its CRC ends the record scan (WAL
    semantics: a crash corrupts only the tail, so the first bad line marks
    the durable frontier); ``Trace.truncated`` reports whether anything was
    dropped from either file.
    """
    header: Dict[str, Any] = {}
    records: List[TraceRecord] = []
    rejections: List[Dict[str, Any]] = []
    truncated = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.endswith("\n"):
                # A line without its terminator is an interrupted append.
                truncated = True
                break
            payload = _decode_line(line)
            if payload is None:
                truncated = True
                break
            kind = payload.get("kind")
            if kind == "header":
                header = {k: v for k, v in payload.items() if k != "kind"}
            elif kind == "request":
                records.append(TraceRecord(
                    request_id=int(payload["id"]),
                    digest=str(payload["digest"]),
                    arrival_offset=float(payload["arrival"]),
                    exit_timestep=int(payload["exit_t"]),
                    prediction=int(payload["prediction"]),
                    score=float(payload["score"]),
                    threshold=payload.get("threshold"),
                    label=payload.get("label"),
                    queue_delay=float(payload.get("queue_delay", 0.0)),
                    service_time=float(payload.get("service", 0.0)),
                    energy=payload.get("energy"),
                    sla_class=payload.get("sla"),
                    epoch=payload.get("epoch"),
                    horizon=payload.get("horizon"),
                    brownout=bool(payload.get("brownout", False)),
                    priority=payload.get("priority"),
                ))
            elif kind == "reject":
                rejections.append(payload)
    clips: Dict[str, np.ndarray] = {}
    if load_clips and header.get("store_clips", True):
        clips, clips_truncated = _load_clips(path + ".clips")
        truncated = truncated or clips_truncated
    return Trace(header=header, records=records, rejections=rejections,
                 clips=clips, truncated=truncated)
