"""Serving telemetry: latency percentiles, exit histograms, energy, queues.

Everything the operator of a DT-SNN serving deployment looks at lives here:

* per-request end-to-end latency / queue delay / service time percentiles,
* the exit-timestep histogram (the serving-time mirror of the paper's Fig. 5
  pie charts — it shows where the continuous batcher gets its free slots),
* queue-depth and batch-occupancy gauges,
* per-request energy and energy-delay product priced through any
  :class:`repro.core.InferenceCostModel` (e.g. the Table-I IMC chip),
* a rolling latency window consumed by the SLA threshold controller.

The class is thread-safe: the batcher worker records completions while
submitter threads read snapshots.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.lockorder import named_lock
from .request import RequestResult

__all__ = ["Telemetry"]


class Telemetry:
    """Accumulates per-request serving metrics."""

    def __init__(self, window: int = 256, gauge_window: int = 4096):
        if window < 1:
            raise ValueError("window must be >= 1")
        if gauge_window < 1:
            raise ValueError("gauge_window must be >= 1")
        self._lock = named_lock("serve.telemetry")
        self._results: List[RequestResult] = []
        self._recent_latencies: Deque[float] = deque(maxlen=window)
        # Gauges are sampled on every batcher step; bound them so a
        # long-running server cannot grow memory without traffic.
        self._queue_depths: Deque[int] = deque(maxlen=gauge_window)
        self._occupancies: Deque[float] = deque(maxlen=gauge_window)
        self._first_arrival: Optional[float] = None
        self._last_finish: Optional[float] = None
        self._rejected = 0
        self._shed = 0
        # Storm-guard accounting (docs/RESILIENCE.md): sheds and deadline
        # drops keyed by priority class, the peak FSM severity code observed
        # (0=NORMAL, 1=WARN, 2=STORM), and the number of state transitions.
        self._storm_shed: Dict[int, int] = {}
        self._deadline_drops: Dict[int, int] = {}
        self._storm_peak = 0
        self._storm_transitions = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_completion(self, result: RequestResult) -> None:
        with self._lock:
            self._results.append(result)
            self._recent_latencies.append(result.latency)
            if self._first_arrival is None or result.arrival_time < self._first_arrival:
                self._first_arrival = result.arrival_time
            if self._last_finish is None or result.finish_time > self._last_finish:
                self._last_finish = result.finish_time

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depths.append(int(depth))

    def record_occupancy(self, active: int, width: int) -> None:
        with self._lock:
            self._occupancies.append(active / width if width else 0.0)

    def record_rejection(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_shed(self, count: int = 1) -> None:
        """Requests failed *after* admission (abort/crash drain), as opposed
        to rejections shed at the door by queue backpressure."""
        with self._lock:
            self._shed += int(count)

    def record_storm_shed(self, priority: int) -> None:
        """A submission shed at the door by the storm guard, by class."""
        with self._lock:
            priority = int(priority)
            self._storm_shed[priority] = self._storm_shed.get(priority, 0) + 1

    def record_deadline_drop(self, priority: int) -> None:
        """A request dropped at dispatch because its deadline expired."""
        with self._lock:
            priority = int(priority)
            self._deadline_drops[priority] = (
                self._deadline_drops.get(priority, 0) + 1
            )

    def record_storm_state(self, code: int) -> None:
        """A storm-FSM transition to severity ``code`` (0/1/2)."""
        with self._lock:
            self._storm_transitions += 1
            if int(code) > self._storm_peak:
                self._storm_peak = int(code)

    # ------------------------------------------------------------------ #
    # Cross-instance merging (multi-replica serving)
    # ------------------------------------------------------------------ #
    def export_state(self, include_results: bool = True) -> Dict[str, object]:
        """A picklable snapshot of the raw samples behind every metric.

        This is the wire format replica processes ship at drain and the
        input to :meth:`merge_state`.  ``include_results=False`` drops every
        per-request and clock-domain field — the results list, the rolling
        latency window, and the first-arrival/last-finish span — leaving the
        gauges (queue depths, occupancies) and the rejection count.  That is
        the shape a replica may safely ship: its completions travel
        individually through the response pipe (shipping them again would
        double-count) and its absolute timestamps live on another process's
        clock.
        """
        with self._lock:
            return {
                "results": list(self._results) if include_results else [],
                "recent_latencies": (
                    list(self._recent_latencies) if include_results else []
                ),
                "queue_depths": list(self._queue_depths),
                "occupancies": list(self._occupancies),
                "first_arrival": self._first_arrival if include_results else None,
                "last_finish": self._last_finish if include_results else None,
                "rejected": self._rejected,
                "shed": self._shed,
                "storm_shed": dict(self._storm_shed),
                "deadline_drops": dict(self._deadline_drops),
                "storm_peak": self._storm_peak,
                "storm_transitions": self._storm_transitions,
            }

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold another telemetry's exported state into this one.

        Merging is defined so that every derived metric — latency
        percentiles, exit histograms, energy aggregates, throughput — equals
        the metric computed over the pooled raw samples (the property the
        replica test harness asserts).  Only the bounded rolling windows
        (recent latencies, gauges) are order-dependent: they concatenate in
        merge order and keep their usual truncation.
        """
        with self._lock:
            for result in state.get("results", ()):
                self._results.append(result)
            self._recent_latencies.extend(state.get("recent_latencies", ()))
            self._queue_depths.extend(state.get("queue_depths", ()))
            self._occupancies.extend(state.get("occupancies", ()))
            first = state.get("first_arrival")
            if first is not None and (
                self._first_arrival is None or first < self._first_arrival
            ):
                self._first_arrival = first
            last = state.get("last_finish")
            if last is not None and (
                self._last_finish is None or last > self._last_finish
            ):
                self._last_finish = last
            self._rejected += int(state.get("rejected", 0))
            self._shed += int(state.get("shed", 0))
            for priority, count in dict(state.get("storm_shed", {})).items():
                priority = int(priority)
                self._storm_shed[priority] = (
                    self._storm_shed.get(priority, 0) + int(count)
                )
            for priority, count in dict(state.get("deadline_drops", {})).items():
                priority = int(priority)
                self._deadline_drops[priority] = (
                    self._deadline_drops.get(priority, 0) + int(count)
                )
            self._storm_peak = max(
                self._storm_peak, int(state.get("storm_peak", 0))
            )
            self._storm_transitions += int(state.get("storm_transitions", 0))

    def merge_from(self, other: "Telemetry") -> None:
        """Merge another :class:`Telemetry` instance (see :meth:`merge_state`)."""
        self.merge_state(other.export_state())

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._results)

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def shed(self) -> int:
        with self._lock:
            return self._shed

    @property
    def storm_shed_by_class(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._storm_shed)

    @property
    def deadline_drops_by_class(self) -> Dict[int, int]:
        with self._lock:
            return dict(self._deadline_drops)

    @property
    def storm_peak(self) -> int:
        with self._lock:
            return self._storm_peak

    @property
    def storm_transitions(self) -> int:
        with self._lock:
            return self._storm_transitions

    def results(self) -> List[RequestResult]:
        with self._lock:
            return list(self._results)

    def recent_p95(self) -> Optional[float]:
        """p95 latency over the rolling window (None until data arrives)."""
        with self._lock:
            if not self._recent_latencies:
                return None
            return float(np.percentile(np.asarray(self._recent_latencies), 95))

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50, 90, 95, 99)
    ) -> Dict[str, float]:
        with self._lock:
            latencies = np.array([r.latency for r in self._results])
        if latencies.size == 0:
            return {}
        return {f"p{p:g}": float(np.percentile(latencies, p)) for p in percentiles}

    def exit_histogram(self, max_timesteps: int) -> np.ndarray:
        """Count of completed requests per exit timestep 1..T."""
        with self._lock:
            exits = np.array([r.exit_timestep for r in self._results], dtype=np.int64)
        return np.bincount(exits, minlength=max_timesteps + 1)[1:]

    def throughput(self) -> Optional[float]:
        """Completed requests per second over the observed serving interval."""
        with self._lock:
            count = len(self._results)
            first, last = self._first_arrival, self._last_finish
        if count == 0 or first is None or last is None or last <= first:
            return None
        return count / (last - first)

    def accuracy(self) -> Optional[float]:
        with self._lock:
            flags = [r.correct for r in self._results if r.correct is not None]
        if not flags:
            return None
        return float(np.mean(flags))

    def snapshot(self) -> Dict[str, float]:
        """One flat dict with every headline serving metric.

        Complete by construction: every counter (completed / rejected /
        shed) and every gauge family (queue depth, occupancy) the telemetry
        records is surfaced here, so ``serve --self-test`` and
        ``--stats-dump`` print the whole picture rather than a subset.
        """
        with self._lock:
            results = list(self._results)
            depths = list(self._queue_depths)
            occupancies = list(self._occupancies)
            rejected = self._rejected
            shed = self._shed
            storm_shed = dict(self._storm_shed)
            deadline_drops = dict(self._deadline_drops)
            storm_peak = self._storm_peak
            storm_transitions = self._storm_transitions
        stats: Dict[str, float] = {
            "completed": float(len(results)),
            "rejected": float(rejected),
            "shed": float(shed),
        }
        if storm_shed or deadline_drops or storm_transitions:
            names = {0: "high", 1: "normal", 2: "low"}
            for priority, count in sorted(storm_shed.items()):
                name = names.get(priority, str(priority))
                stats[f"storm_shed_{name}"] = float(count)
            stats["deadline_dropped"] = float(sum(deadline_drops.values()))
            stats["storm_state_peak"] = float(storm_peak)
            stats["storm_transitions"] = float(storm_transitions)
        if results:
            latencies = np.array([r.latency for r in results])
            delays = np.array([r.queue_delay for r in results])
            exits = np.array([r.exit_timestep for r in results], dtype=np.float64)  # dtype-ok: telemetry aggregation is analysis-side float64
            stats.update(
                {
                    "latency_p50": float(np.percentile(latencies, 50)),
                    "latency_p95": float(np.percentile(latencies, 95)),
                    "latency_p99": float(np.percentile(latencies, 99)),
                    "latency_mean": float(latencies.mean()),
                    "queue_delay_mean": float(delays.mean()),
                    "average_exit_timesteps": float(exits.mean()),
                }
            )
            throughput = self.throughput()
            if throughput is not None:
                stats["throughput_rps"] = throughput
            accuracy = self.accuracy()
            if accuracy is not None:
                stats["accuracy"] = accuracy
            energies = [r.energy for r in results if r.energy is not None]
            if energies:
                stats["energy_mean"] = float(np.mean(energies))
                stats["energy_total"] = float(np.sum(energies))
            edps = [r.edp for r in results if r.edp is not None]
            if edps:
                stats["edp_mean"] = float(np.mean(edps))
        if depths:
            stats["queue_depth_mean"] = float(np.mean(depths))
            stats["queue_depth_max"] = float(np.max(depths))
            stats["queue_depth_p95"] = float(np.percentile(np.asarray(depths), 95))
        if occupancies:
            stats["occupancy_mean"] = float(np.mean(occupancies))
            stats["occupancy_max"] = float(np.max(occupancies))
        return stats

    # ------------------------------------------------------------------ #
    # Metrics-registry export (repro.serve.obs)
    # ------------------------------------------------------------------ #
    def fill_registry(self, registry, max_timesteps: Optional[int] = None) -> None:
        """Feed a :class:`~repro.serve.obs.MetricsRegistry` from raw samples.

        Additive: counters increment and histograms observe on top of
        whatever the registry already holds, so feed a *fresh* registry per
        export (the registry's own :meth:`~repro.serve.obs.MetricsRegistry.merge`
        is the cross-instance aggregation path).  Histogram metrics are
        built from the raw per-request samples — not from the snapshot's
        derived percentiles — which is what makes merged registries equal
        pooled ones (fixed buckets, exact bucket-count addition).
        """
        with self._lock:
            results = list(self._results)
            depths = list(self._queue_depths)
            occupancies = list(self._occupancies)
            rejected = self._rejected
            shed = self._shed
            storm_shed = dict(self._storm_shed)
            deadline_drops = dict(self._deadline_drops)
            storm_peak = self._storm_peak
            storm_transitions = self._storm_transitions
        registry.counter(
            "repro_requests_completed_total", "Requests completed"
        ).inc(len(results))
        registry.counter(
            "repro_requests_rejected_total", "Submissions shed at the door"
        ).inc(rejected)
        registry.counter(
            "repro_requests_shed_total", "Admitted requests failed by shutdown/crash"
        ).inc(shed)
        # The registry has no label support, so per-class storm counters use
        # one distinct metric name per priority class.
        names = {0: "high", 1: "normal", 2: "low"}
        for priority, count in sorted(storm_shed.items()):
            name = names.get(priority, str(priority))
            registry.counter(
                f"repro_storm_shed_{name}_total",
                f"Submissions shed by the storm guard ({name} priority)",
            ).inc(count)
        for priority, count in sorted(deadline_drops.items()):
            name = names.get(priority, str(priority))
            registry.counter(
                f"repro_deadline_dropped_{name}_total",
                f"Requests dropped at dispatch past their deadline ({name} priority)",
            ).inc(count)
        if storm_transitions:
            registry.counter(
                "repro_storm_transitions_total", "Storm-FSM state transitions"
            ).inc(storm_transitions)
            registry.gauge(
                "repro_storm_state_peak",
                "Peak storm-FSM severity (0=normal, 1=warn, 2=storm)",
                mode="max",
            ).set(storm_peak)
        latency = registry.histogram(
            "repro_request_latency_seconds", "End-to-end request latency"
        )
        queue_delay = registry.histogram(
            "repro_request_queue_delay_seconds", "Arrival-to-admission wait"
        )
        horizon = max_timesteps or max(
            (r.exit_timestep for r in results), default=1
        )
        exits = registry.histogram(
            "repro_request_exit_timesteps", "Exit timestep per request",
            buckets=tuple(float(t) for t in range(1, horizon + 1)),
        )
        energy_total = registry.counter(
            "repro_request_energy_total", "Summed per-request energy (cost model units)"
        )
        for result in results:
            latency.observe(result.latency)
            queue_delay.observe(result.queue_delay)
            exits.observe(float(result.exit_timestep))
            if result.energy is not None:
                energy_total.inc(result.energy)
        depth_gauge = registry.gauge(
            "repro_queue_depth_max", "Peak admission-queue depth", mode="max"
        )
        for depth in depths:
            depth_gauge.set(depth)
        occupancy_gauge = registry.gauge(
            "repro_occupancy_max", "Peak batch-slot occupancy fraction", mode="max"
        )
        for occupancy in occupancies:
            occupancy_gauge.set(occupancy)
