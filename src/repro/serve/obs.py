"""Request-lifecycle spans and a metrics registry for the serving stack.

Telemetry answers *what* the fleet did (percentiles, histograms, counters);
this module answers *where each request spent its time* and exposes both in
machine-readable form:

* :class:`SpanTracker` — per-request span records.  The serving layers stamp
  stage events through the server's injectable clock as a request moves
  ``queued → admitted/dispatched → exited → completed``; per-stage durations
  (queue wait, service, completion hand-off) come out as percentile
  summaries.  Stage times within one request are monotone by construction —
  every stamp comes from the same monotonic clock domain — and the test
  suite pins that under a fake clock.
* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — a minimal metrics surface with two export formats:
  Prometheus text exposition (``to_prometheus``) and JSON (``to_json``).
  :meth:`repro.serve.Telemetry.fill_registry` feeds it, so ``serve
  --stats-dump`` turns a serving run into a scrape-able artifact.

Merge contract (the multi-replica invariant, property-tested): merging the
span/metric state exported by N replicas yields exactly the state of the
pooled raw samples — counters add, histogram buckets add, max-gauges take
the max, span maps union disjoint request ids.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.lockorder import named_lock

__all__ = [
    "SPAN_STAGES",
    "RequestSpan",
    "SpanTracker",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

# The span taxonomy, in lifecycle order (docs/OBSERVABILITY.md):
#   queued     — accepted into the admission queue (arrival_time)
#   dispatched — shipped to a replica process (replica mode only)
#   admitted   — occupying an engine slot (start of service)
#   exited     — satisfied the exit policy / hit the horizon
#   completed  — future resolved (telemetry recorded, client unblocked)
SPAN_STAGES = ("queued", "dispatched", "admitted", "exited", "completed")
_STAGE_ORDER = {stage: index for index, stage in enumerate(SPAN_STAGES)}


@dataclass
class RequestSpan:
    """Stage → timestamp map for one request (server clock domain).

    ``tags`` annotates the span with non-timing attributes (currently
    ``brownout=True`` for requests served under storm-degraded accuracy,
    plus the stamped threshold epoch).  Tags are a local annotation: the
    cross-replica export/merge wire format remains the bare
    ``{request_id: events}`` map, because the parent stamps the tags itself
    at completion time — replicas never ship them.
    """

    request_id: int
    events: Dict[str, float] = field(default_factory=dict)
    tags: Dict[str, Any] = field(default_factory=dict)

    def duration(self, start: str, end: str) -> Optional[float]:
        if start in self.events and end in self.events:
            return self.events[end] - self.events[start]
        return None

    @property
    def monotone(self) -> bool:
        """Stage times never decrease in lifecycle order."""
        stamped = sorted(
            (_STAGE_ORDER[stage], t) for stage, t in self.events.items()
        )
        return all(a[1] <= b[1] for a, b in zip(stamped, stamped[1:]))


class SpanTracker:
    """Collects per-request lifecycle spans (thread-safe, bounded).

    ``capacity`` bounds memory on long-running servers: the tracker keeps
    the most recent ``capacity`` request spans (completed requests evict
    oldest-first once full), which is plenty for the percentile summaries
    while keeping the per-event cost O(1).
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = named_lock("serve.obs.spans")
        self._spans: Dict[int, RequestSpan] = {}

    def record(self, request_id: int, stage: str, timestamp: float) -> None:
        if stage not in _STAGE_ORDER:
            raise ValueError(f"unknown span stage {stage!r}")
        with self._lock:
            span = self._spans.get(request_id)
            if span is None:
                if len(self._spans) >= self.capacity:
                    # dicts iterate in insertion order: drop the oldest.
                    self._spans.pop(next(iter(self._spans)))
                span = RequestSpan(request_id=request_id)
                self._spans[request_id] = span
            span.events[stage] = float(timestamp)

    def record_result(self, result, completed_at: float) -> None:
        """Stamp the whole lifecycle of a completed request from its result.

        One call per completion covers every stage the result's timestamps
        encode (arrival/admission/exit come straight off the
        :class:`~repro.serve.RequestResult`), so the hot-path cost of span
        tracking is a single lock acquisition per request.
        """
        with self._lock:
            span = self._spans.get(result.request_id)
            if span is None:
                if len(self._spans) >= self.capacity:
                    self._spans.pop(next(iter(self._spans)))
                span = RequestSpan(request_id=result.request_id)
                self._spans[result.request_id] = span
            span.events.setdefault("queued", float(result.arrival_time))
            span.events.setdefault("admitted", float(result.start_time))
            span.events.setdefault("exited", float(result.finish_time))
            span.events["completed"] = float(completed_at)
            if getattr(result, "brownout", False):
                span.tags["brownout"] = True
            epoch = getattr(result, "epoch", None)
            if epoch is not None:
                span.tags["epoch"] = int(epoch)

    def record_failure(
        self, request_id: int, failed_at: float, error: BaseException,
    ) -> None:
        """Stamp the terminal stage of a FAILED request.

        Every failure path (deadline drop, admission rejection, replica
        crash, shutdown shed) must land here: a request that already got a
        ``queued``/``dispatched`` stamp would otherwise sit in the tracker
        as a dangling open span until capacity eviction, and "no open spans
        after drain" is the invariant the conservation suite leans on.  The
        error type lands in the tags so traces can tell failure modes apart
        from genuine completions.
        """
        with self._lock:
            span = self._spans.get(request_id)
            if span is None:
                if len(self._spans) >= self.capacity:
                    self._spans.pop(next(iter(self._spans)))
                span = RequestSpan(request_id=int(request_id))
                self._spans[int(request_id)] = span
            span.events["completed"] = float(failed_at)
            span.tags["error"] = type(error).__name__

    # ------------------------------------------------------------------ #
    def spans(self) -> List[RequestSpan]:
        with self._lock:
            return [RequestSpan(s.request_id, dict(s.events), dict(s.tags))
                    for s in self._spans.values()]

    def open_spans(self) -> List[RequestSpan]:
        """Spans with no terminal stage — empty after a clean drain."""
        with self._lock:
            return [
                RequestSpan(s.request_id, dict(s.events), dict(s.tags))
                for s in self._spans.values()
                if "completed" not in s.events
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------ #
    # Cross-replica merge (same contract as Telemetry.export/merge_state)
    # ------------------------------------------------------------------ #
    def export_state(self) -> Dict[int, Dict[str, float]]:
        with self._lock:
            return {s.request_id: dict(s.events) for s in self._spans.values()}

    def merge_state(self, state: Dict[int, Dict[str, float]]) -> None:
        with self._lock:
            for request_id, events in state.items():
                span = self._spans.get(request_id)
                if span is None:
                    if len(self._spans) >= self.capacity:
                        self._spans.pop(next(iter(self._spans)))
                    span = RequestSpan(request_id=int(request_id))
                    self._spans[int(request_id)] = span
                span.events.update(events)

    # ------------------------------------------------------------------ #
    def stage_durations(self) -> Dict[str, List[float]]:
        """Raw per-stage durations over all tracked spans."""
        pairs = (
            ("queue_wait", "queued", "admitted"),
            ("dispatch", "queued", "dispatched"),
            ("service", "admitted", "exited"),
            ("completion", "exited", "completed"),
            ("total", "queued", "completed"),
        )
        out: Dict[str, List[float]] = {name: [] for name, _, _ in pairs}
        for span in self.spans():
            for name, start, end in pairs:
                duration = span.duration(start, end)
                if duration is not None:
                    out[name].append(duration)
        return {name: values for name, values in out.items() if values}

    def summary(self, percentiles: Sequence[float] = (50, 95, 99)) -> Dict[str, Dict[str, float]]:
        """Per-stage duration summaries (mean + requested percentiles)."""
        summary: Dict[str, Dict[str, float]] = {}
        for name, values in self.stage_durations().items():
            array = np.asarray(values, dtype=np.float64)  # dtype-ok: metrics percentile math is analysis-side float64
            entry = {"count": float(array.size), "mean": float(array.mean())}
            for p in percentiles:
                entry[f"p{p:g}"] = float(np.percentile(array, p))
            summary[name] = entry
        return summary


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
@dataclass
class Counter:
    """Monotonically increasing count (merge: sum)."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_json(self) -> Dict[str, Any]:
        return {"type": "counter", "help": self.help, "value": self.value}

    def to_prometheus(self) -> str:
        return (f"# HELP {self.name} {self.help}\n"
                f"# TYPE {self.name} counter\n"
                f"{self.name} {_format_value(self.value)}\n")


@dataclass
class Gauge:
    """Point-in-time value.  ``mode`` picks the merge rule: ``max`` (peak
    gauges like queue depth), ``sum`` (additive gauges like live replicas),
    or ``last`` (merge keeps the merging side's value if the other is
    unset)."""

    name: str
    help: str = ""
    mode: str = "max"
    value: Optional[float] = None

    def __post_init__(self):
        if self.mode not in ("max", "sum", "last"):
            raise ValueError("gauge mode must be 'max', 'sum' or 'last'")

    def set(self, value: float) -> None:
        value = float(value)
        if self.mode == "max" and self.value is not None:
            self.value = max(self.value, value)
        elif self.mode == "sum" and self.value is not None:
            self.value += value
        else:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value is None:
            return
        if self.value is None:
            self.value = other.value
        elif self.mode == "max":
            self.value = max(self.value, other.value)
        elif self.mode == "sum":
            self.value += other.value
        else:
            self.value = other.value

    def to_json(self) -> Dict[str, Any]:
        return {"type": "gauge", "help": self.help, "mode": self.mode,
                "value": self.value}

    def to_prometheus(self) -> str:
        value = 0.0 if self.value is None else self.value
        return (f"# HELP {self.name} {self.help}\n"
                f"# TYPE {self.name} gauge\n"
                f"{self.name} {_format_value(value)}\n")


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    Fixed buckets are what make the merge exact: observing a sample set on N
    instances and summing their bucket counts equals observing the pooled
    set on one instance — bucket assignment is a pure function of the value.
    """

    # Latency-shaped default buckets (seconds).
    DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                       0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: cannot merge differing bucket bounds"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def to_prometheus(self) -> str:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                         f"{cumulative}")
        cumulative += self.counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_format_value(self.total)}")
        lines.append(f"{self.name}_count {self.count}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    # Integral values print without a trailing .0 (Prometheus-conventional).
    return str(int(value)) if float(value).is_integer() else repr(float(value))


class MetricsRegistry:
    """A named collection of counters/gauges/histograms with two exports.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (idempotent),
    so feeders can address metrics by name without coordination.  Merging
    registries (:meth:`merge`) folds same-named metrics with each type's
    rule and adopts metrics the target did not have.
    """

    def __init__(self):
        self._lock = named_lock("serve.obs.metrics")
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "", mode: str = "max") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help, mode), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = Histogram.DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        for name, metric in other.metrics().items():
            with self._lock:
                mine = self._metrics.get(name)
                if mine is None:
                    self._metrics[name] = metric
                    continue
            if type(mine) is not type(metric):
                raise TypeError(
                    f"metric {name!r}: cannot merge {type(metric).__name__} "
                    f"into {type(mine).__name__}"
                )
            mine.merge(metric)

    def to_json(self) -> Dict[str, Any]:
        return {name: metric.to_json()
                for name, metric in sorted(self.metrics().items())}

    def to_prometheus(self) -> str:
        return "".join(metric.to_prometheus()
                       for _, metric in sorted(self.metrics().items()))
