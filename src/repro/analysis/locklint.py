"""AST lint: blocking calls inside ``with <lock>:`` blocks.

The runtime half of the lock-order story (:mod:`repro.analysis.lockorder`)
catches *ordering* cycles; this static half catches the other serving
deadlock pattern PR 5 hit — holding a lock across a call that can block
indefinitely (a pipe ``send`` to a dead replica, an ``fsync`` against a
stalled disk, a ``future.result`` on work that needs the very lock).

``blocking-call-under-lock``
    Inside a ``with`` statement whose context expression names a lock (the
    terminal identifier contains ``lock``, or is one of the
    ``AdmissionQueue`` condition handles ``_not_full``/``_not_empty``), any
    call whose method name is in :data:`BLOCKING_METHODS` is flagged.
    ``Condition.wait`` is deliberately *not* in the list — it releases the
    lock while blocking, which is the one sanctioned way to block "under"
    one.  Calls inside nested function/lambda definitions are skipped (they
    run later, not necessarily under the lock).

Deliberate exceptions carry a ``# lock-ok: <reason>`` pragma (same
hygiene rules as the dtype linter: a reason is mandatory, stale pragmas
are errors).  Explicit ``.acquire()``/``.release()`` pairs are outside
this lint's scope — the runtime tracker covers them.
"""

from __future__ import annotations

import ast
from typing import List

from .lintbase import FileLint, Finding, apply_pragmas

__all__ = ["PRAGMA_TAG", "BLOCKING_METHODS", "lint_source"]

PRAGMA_TAG = "lock-ok"

#: Method names that can block indefinitely and must not run under a lock.
BLOCKING_METHODS = frozenset({"send", "recv", "fsync", "sleep", "result"})

#: Condition-variable handles that wrap the queue lock.
_CONDITION_NAMES = frozenset({"_not_full", "_not_empty"})


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_lock_expr(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return "lock" in name.lower() or name in _CONDITION_NAMES


class _LockVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self._lock_depth = 0

    # -- scope handling ------------------------------------------------ #
    def _visit_deferred(self, node: ast.AST) -> None:
        """A nested def/lambda body runs later, not under the current lock."""
        depth, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = depth

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_deferred(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_deferred(node)

    # -- with-lock tracking -------------------------------------------- #
    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(
            _is_lock_expr(item.context_expr) for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
        if holds_lock:
            self._lock_depth += 1
        for child in node.body:
            self.visit(child)
        if holds_lock:
            self._lock_depth -= 1

    # -- the actual rule ----------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        if self._lock_depth > 0 and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in BLOCKING_METHODS:
                self.findings.append(
                    Finding(
                        path=self.path, line=node.lineno,
                        rule="blocking-call-under-lock",
                        message=(
                            f".{method}() call while a 'with <lock>:' block "
                            "is open — a blocked call pins the lock for "
                            "every other thread; move it outside the "
                            "critical section or justify with "
                            "'# lock-ok: <reason>'"
                        ),
                    )
                )
        self.generic_visit(node)


def lint_source(path: str, relpath: str, source: str) -> FileLint:
    """Lint one file's source; ``relpath`` is the path under ``src/repro``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result = FileLint(path=path)
        result.errors.append(
            Finding(
                path=path, line=error.lineno or 1, rule="parse-error",
                message=f"cannot parse: {error.msg}",
            )
        )
        return result
    visitor = _LockVisitor(path)
    visitor.visit(tree)
    return apply_pragmas(path, source, PRAGMA_TAG, visitor.findings)
