"""Named locks and a debug-mode lock-order tracker.

Every lock in ``repro.serve`` and ``repro.runtime`` is created through
:func:`named_lock`, which gives the lock a stable hierarchy name (the rank
table lives in docs/ANALYSIS.md).  With ``REPRO_LOCK_CHECK`` unset the
factory returns a plain ``threading.Lock`` — zero wrapper overhead, same
construction-time-flag pattern as ``REPRO_TRACE_OPS``.  With
``REPRO_LOCK_CHECK=1`` it returns a :class:`NamedLock` whose acquisitions
feed a process-global :class:`LockGraph`:

* each thread keeps the stack of named locks it currently holds;
* acquiring lock ``B`` while holding ``A`` records the edge ``A -> B``
  together with the first call site that established it;
* an edge that would close a cycle (``B`` already reaches ``A``) raises
  :class:`LockOrderError` *before* the edge is recorded, so the exported
  graph is acyclic by construction;
* re-acquiring a lock name the thread already holds raises immediately —
  these are non-reentrant ``threading.Lock``s, so that is a guaranteed
  self-deadlock.

The graph is keyed by lock *name*, not instance: two telemetry objects
share the rank "serve.telemetry".  That is the hierarchy contract — no
code path may hold two same-ranked locks at once (none does today; the
tracker enforces it as the re-acquire error).

``NamedLock`` deliberately implements only ``acquire``/``release``/context
manager, the subset ``threading.Condition`` uses when wrapping a foreign
lock, so ``Condition(named_lock(...))`` works unchanged (the
``AdmissionQueue`` dual-condition pattern).  ``Condition.wait`` releases
and re-acquires out of LIFO order, which is why release removes the *last
occurrence* of the name from the held stack instead of popping blindly.
"""

from __future__ import annotations

import json
import os
import threading
import traceback
from typing import Dict, List, Optional, Union

__all__ = [
    "LockOrderError",
    "NamedLock",
    "LockGraph",
    "named_lock",
    "lock_check_enabled",
    "acquisition_graph",
    "assert_acyclic",
    "reset_tracking",
    "dump_graph",
]

_TRUTHY = ("1", "true", "on", "yes")


def lock_check_enabled() -> bool:
    """Whether ``REPRO_LOCK_CHECK`` asks for tracked locks.

    Read at *lock construction* time, never per-acquisition: flipping the
    variable mid-process only affects locks created afterwards.
    """
    return os.environ.get("REPRO_LOCK_CHECK", "").strip().lower() in _TRUTHY


class LockOrderError(RuntimeError):
    """A lock acquisition violated the recorded ordering (potential deadlock)."""


_THIS_FILE = os.path.normcase(os.path.abspath(__file__))


def _call_site(skip: int = 3) -> str:
    """One-line summary of the innermost frame outside this module."""
    for frame in reversed(traceback.extract_stack()[:-skip]):
        if os.path.normcase(os.path.abspath(frame.filename)) != _THIS_FILE:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class LockGraph:
    """Per-thread acquisition tracking and the global name-level edge graph."""

    def __init__(self):
        # A plain lock on purpose: the tracker must never track itself.
        self._mutex = threading.Lock()
        # edge source -> {edge target: first call site that recorded it}
        self._edges: Dict[str, Dict[str, str]] = {}
        self._names: List[str] = []
        self._tls = threading.local()

    # ------------------------------------------------------------------ #
    def register(self, name: str) -> None:
        with self._mutex:
            if name not in self._names:
                self._names.append(name)

    def _held(self) -> List[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def held_by_current_thread(self, name: str) -> bool:
        return name in self._held()

    # ------------------------------------------------------------------ #
    def note_acquired(self, name: str) -> None:
        """Record that the current thread now holds ``name``.

        Raises :class:`LockOrderError` (without mutating the graph) if the
        acquisition re-enters a held name or closes a cycle.
        """
        held = self._held()
        if name in held:
            raise LockOrderError(
                f"lock {name!r} acquired by the thread already holding it "
                f"(non-reentrant lock: guaranteed self-deadlock) at "
                f"{_call_site()}; held: {held!r}"
            )
        if held:
            site = _call_site()
            with self._mutex:
                for outer in held:
                    self._add_edge_locked(outer, name, site)
        held.append(name)

    def note_released(self, name: str) -> None:
        held = self._held()
        # Condition.wait releases out of LIFO order: drop the last occurrence.
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    # ------------------------------------------------------------------ #
    def _add_edge_locked(self, outer: str, inner: str, site: str) -> None:
        bucket = self._edges.setdefault(outer, {})
        if inner in bucket:
            return
        path = self._path_locked(inner, outer)
        if path is not None:
            legs = " -> ".join(path)
            prior = " ; ".join(
                f"{u}->{v} at {self._edges[u][v]}"
                for u, v in zip(path, path[1:])
            )
            raise LockOrderError(
                f"lock-order cycle: acquiring {inner!r} while holding "
                f"{outer!r} at {site}, but the recorded order already has "
                f"{legs} ({prior})"
            )
        bucket[inner] = site

    def _path_locked(self, start: str, goal: str) -> Optional[List[str]]:
        """A recorded path start -> ... -> goal, or None."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, {}):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """JSON-able view of every registered lock and recorded edge."""
        with self._mutex:
            return {
                "locks": list(self._names),
                "edges": [
                    {"from": outer, "to": inner, "site": site}
                    for outer, bucket in sorted(self._edges.items())
                    for inner, site in sorted(bucket.items())
                ],
            }

    def assert_acyclic(self) -> None:
        """Belt-and-braces full check; cycles normally raise at acquire."""
        with self._mutex:
            edges = {u: list(vs) for u, vs in self._edges.items()}
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str, trail: List[str]) -> None:
            state[node] = 1
            trail.append(node)
            for nxt in edges.get(node, ()):
                if state.get(nxt) == 1:
                    cycle = trail[trail.index(nxt):] + [nxt]
                    raise LockOrderError(
                        "lock-order cycle in recorded graph: "
                        + " -> ".join(cycle)
                    )
                if state.get(nxt) is None:
                    visit(nxt, trail)
            trail.pop()
            state[node] = 2

        for node in list(edges):
            if state.get(node) is None:
                visit(node, [])

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._names.clear()


_GRAPH = LockGraph()


class NamedLock:
    """A ``threading.Lock`` that reports acquisitions to a :class:`LockGraph`.

    Exposes exactly the interface ``threading.Condition`` requires of a
    wrapped lock (``acquire``/``release``/``__enter__``/``__exit__``), plus
    ``locked()`` for parity with the plain lock.
    """

    __slots__ = ("name", "_inner", "_graph")

    def __init__(self, name: str, graph: Optional[LockGraph] = None):
        self.name = name
        self._inner = threading.Lock()
        self._graph = _GRAPH if graph is None else graph
        self._graph.register(name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # The re-entrancy check must run BEFORE touching the inner lock: a
        # same-thread blocking re-acquire would deadlock on the real lock
        # and never reach the tracker.  Non-blocking probes fall through —
        # Condition._is_owned relies on acquire(False) returning False.
        if blocking and self._graph.held_by_current_thread(self.name):
            raise LockOrderError(
                f"lock {self.name!r} acquired by the thread already holding "
                f"it (non-reentrant lock: guaranteed self-deadlock) at "
                f"{_call_site(skip=2)}"
            )
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._graph.note_acquired(self.name)
            except BaseException:
                self._inner.release()
                raise
        return acquired

    def release(self) -> None:
        self._graph.note_released(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<NamedLock {self.name!r} {state}>"


def named_lock(name: str) -> Union[threading.Lock, NamedLock]:
    """The lock factory every ``serve``/``runtime`` lock goes through.

    Plain ``threading.Lock`` (no wrapper, no tracking, no overhead) unless
    ``REPRO_LOCK_CHECK`` was truthy when the lock was *constructed*.
    Module-level locks are constructed at import, so the variable must be
    set before the process starts to track those (the CI shard does).
    """
    if lock_check_enabled():
        return NamedLock(name)
    return threading.Lock()


# ---------------------------------------------------------------------- #
# Module-level conveniences over the process-global graph
# ---------------------------------------------------------------------- #
def acquisition_graph() -> Dict[str, object]:
    return _GRAPH.snapshot()


def assert_acyclic() -> None:
    _GRAPH.assert_acyclic()


def reset_tracking() -> None:
    _GRAPH.reset()


def dump_graph(path: str) -> None:
    """Write the acquisition graph as JSON (the CI failure artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(acquisition_graph(), handle, indent=2, sort_keys=True)
        handle.write("\n")
