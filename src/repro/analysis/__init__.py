"""Static verification for the serving/runtime stack (docs/ANALYSIS.md).

Three analyzers, one package:

* :mod:`repro.analysis.planverify` — abstract interpretation over the
  compiled plan IR (:func:`verify_plan`, run on every
  ``compile_network``).
* :mod:`repro.analysis.dtypelint` / :mod:`repro.analysis.locklint` — AST
  linters enforcing the float32 dtype policy and the
  no-blocking-calls-under-lock rule (``tools/lint.py`` CLI).
* :mod:`repro.analysis.lockorder` — :func:`named_lock` and the
  ``REPRO_LOCK_CHECK=1`` acquisition-graph tracker.

Submodules load lazily: ``lockorder`` is imported by every lock-holding
module at startup and must stay stdlib-only, while ``planverify`` pulls in
``repro.runtime.plan`` — eager imports here would create a cycle with the
modules the analyzers analyze.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "verify_plan",
    "PlanVerificationError",
    "named_lock",
    "lock_check_enabled",
    "LockOrderError",
    "acquisition_graph",
    "assert_acyclic",
]

_LAZY = {
    "verify_plan": ("planverify", "verify_plan"),
    "PlanVerificationError": ("planverify", "PlanVerificationError"),
    "named_lock": ("lockorder", "named_lock"),
    "lock_check_enabled": ("lockorder", "lock_check_enabled"),
    "LockOrderError": ("lockorder", "LockOrderError"),
    "acquisition_graph": ("lockorder", "acquisition_graph"),
    "assert_acyclic": ("lockorder", "assert_acyclic"),
}

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from .lockorder import (  # noqa: F401
        LockOrderError,
        acquisition_graph,
        assert_acyclic,
        lock_check_enabled,
        named_lock,
    )
    from .planverify import PlanVerificationError, verify_plan  # noqa: F401


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
