"""AST enforcement of the weak-scalar float32 policy (docs/NUMERICS.md).

PR 3 collapsed the seed's silent float64 scalar leak into one policy
module, ``repro.autograd.dtypes`` — but nothing stopped the *next* bare
``np.float64`` from creeping in.  This linter makes the policy static:

``float64-construction``
    Any ``np.float64`` attribute use (``np.float64(x)``,
    ``dtype=np.float64``, ``.astype(np.float64)``, comparisons), any
    ``dtype=float`` keyword, and any ``dtype="float64"`` string — outside
    ``repro/autograd/dtypes.py``, the one module allowed to spell the wide
    dtype.  Sanctioned uses (decision-side score bookkeeping, analysis-side
    statistics) carry a ``# dtype-ok: <reason>`` pragma.

``naked-coercion``
    ``np.asarray``/``np.array`` without an explicit ``dtype=`` in the
    kernel modules (``runtime/kernels.py``, ``runtime/executor.py``,
    ``runtime/plan.py``, ``runtime/arena.py``), where operand coercion must
    go through ``repro.autograd.dtypes.coerce_array`` so the legacy
    ``REPRO_FLOAT64`` mode keeps reproducing the seed bit-for-bit.

``float-literal-operand``
    A Python ``float`` literal passed positionally to a ``np.*`` callable
    in ``runtime/kernels.py`` hot paths.  Under NEP 50 a Python float is a
    weak scalar, so today these do *not* promote — the pragma requirement
    forces each such operand to state that reliance explicitly.

Suppression syntax and hygiene rules (no bare pragmas, no stale pragmas)
live in :mod:`repro.analysis.lintbase`.
"""

from __future__ import annotations

import ast
from typing import List

from .lintbase import FileLint, Finding, apply_pragmas

__all__ = ["PRAGMA_TAG", "lint_source", "KERNEL_MODULES", "HOT_MODULES"]

PRAGMA_TAG = "dtype-ok"

#: Module basenames (relative to src/repro) exempt from every dtype rule:
#: the policy module itself is where float64 is *defined*.
POLICY_MODULES = ("autograd/dtypes.py",)

#: Where operand coercion must be explicit (rule ``naked-coercion``).
KERNEL_MODULES = (
    "runtime/kernels.py",
    "runtime/executor.py",
    "runtime/plan.py",
    "runtime/arena.py",
)

#: Where Python-float literals as array operands need a pragma
#: (rule ``float-literal-operand``).
HOT_MODULES = ("runtime/kernels.py",)

_NUMPY_NAMES = ("np", "numpy")


def _is_numpy_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    )


def _is_numpy_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_NAMES
    )


class _DtypeVisitor(ast.NodeVisitor):
    def __init__(self, path: str, relpath: str):
        self.path = path
        self.relpath = relpath
        self.findings: List[Finding] = []
        self.in_kernel_module = relpath.endswith(KERNEL_MODULES)
        self.in_hot_module = relpath.endswith(HOT_MODULES)

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(path=self.path, line=node.lineno, rule=rule, message=message)
        )

    # -- float64-construction ------------------------------------------ #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_numpy_attr(node, "float64"):
            self._flag(
                node, "float64-construction",
                "bare np.float64 outside repro.autograd.dtypes — use the "
                "policy helpers (scalar_operand / coerce_array / "
                "DEFAULT_DTYPE) or justify with '# dtype-ok: <reason>'",
            )
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg == "dtype":
            value = node.value
            if isinstance(value, ast.Name) and value.id == "float":
                self._flag(
                    value, "float64-construction",
                    "dtype=float is float64 in disguise — name the policy "
                    "dtype explicitly",
                )
            elif (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value in ("float64", "double", "f8", ">f8", "<f8")
            ):
                self._flag(
                    value, "float64-construction",
                    f"dtype={value.value!r} spells float64 by string — use "
                    "the policy helpers or justify with a pragma",
                )
        self.generic_visit(node)

    # -- naked-coercion / float-literal-operand ------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self.in_kernel_module and (
            _is_numpy_attr(func, "asarray") or _is_numpy_attr(func, "array")
        ):
            if not any(kw.arg == "dtype" for kw in node.keywords):
                self._flag(
                    node, "naked-coercion",
                    f"np.{func.attr} without dtype in a kernel module — "
                    "operand coercion must go through coerce_array so the "
                    "REPRO_FLOAT64 legacy mode stays bit-exact",
                )
        if self.in_hot_module and _is_numpy_call(node):
            for arg in node.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, float):
                    self._flag(
                        arg, "float-literal-operand",
                        f"Python float literal {arg.value!r} as a np."
                        f"{node.func.attr} operand in a kernel hot path — "
                        "weak-scalar reliance must be stated with a pragma",
                    )
        self.generic_visit(node)


def lint_source(path: str, relpath: str, source: str) -> FileLint:
    """Lint one file's source; ``relpath`` is the path under ``src/repro``."""
    if relpath.endswith(POLICY_MODULES):
        return FileLint(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        result = FileLint(path=path)
        result.errors.append(
            Finding(
                path=path, line=error.lineno or 1, rule="parse-error",
                message=f"cannot parse: {error.msg}",
            )
        )
        return result
    visitor = _DtypeVisitor(path, relpath)
    visitor.visit(tree)
    return apply_pragmas(path, source, PRAGMA_TAG, visitor.findings)
