"""Abstract interpretation over a :class:`CompiledPlan` — the plan-IR verifier.

The flat register IR behind every fast-path inference is produced by
``repro.runtime.plan.compile_network`` and consumed by ``PlanExecutor`` —
and, per the ROADMAP, eventually by a native executor where a malformed
plan becomes a segfault instead of a Python exception.  :func:`verify_plan`
proves the contracts the executor silently depends on *at compile time*:

**Register discipline (SSA).**  Register 0 is the input frame and is never
written; every other register is written exactly once, before any read; the
output register is written; every index is in ``[0, num_registers)``.

**Shape propagation.**  Symbolic ``(C, H, W)`` shapes (batch elided, unknown
dims ``None``) flow through ``ConvOp → NormOp/FoldedConvNormOp → LIFOp →
pool → LinearOp → AddOp`` and are checked against each op's stored
constants: conv weight geometry vs the module's kernel/stride/padding, norm
feature counts vs incoming channels, linear fan-in vs the flattened width,
residual-add operand compatibility.  Passing ``input_shape`` makes the
spatial dims concrete; without it, channel/feature bookkeeping is still
exact (convs pin the channel count) and spatial checks degrade gracefully.

**Dtype propagation.**  Under the default weak-scalar float32 policy
(docs/NUMERICS.md) the verifier proves the whole plan is float32-closed:
every stored constant and every register dtype must be float32.  Under the
``REPRO_FLOAT64=1`` escape hatch scalars deliberately promote, so constants
may be float32 or float64 and register dtypes are not pinned.

**Stem/liveness metadata.**  ``stem_len``, ``stem_registers`` and
``output_needs_copy`` are recomputed from the op list and compared — these
drive the executor's stem-skip restore and output aliasing, so a doctored
value silently corrupts results.  The liveness half: any register read
*after* the stem must be written after the stem, be a stem register, or be
the input — otherwise a cached-stem replay would read a register nobody
restored.

**Mode invariants.**  Folded conv+norm ops are forbidden under training
mode, under ``REPRO_FLOAT64`` (``float64_mode`` plans and inactive folds),
and on instrumented modules (instance-level ``forward`` overrides) — the
same gates the Tensor path applies in
:func:`repro.snn.architectures._conv_norm_forward`.

Violations raise :class:`PlanVerificationError` carrying the op index, the
register, and the expected-vs-found shape/dtype.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd.dtypes import float64_enabled
from ..autograd.ops import conv_output_size
from ..runtime.plan import (
    AddOp,
    AdaptiveAvgPoolOp,
    AvgPoolOp,
    CompiledPlan,
    ConvOp,
    FlattenOp,
    FoldedConvNormOp,
    LIFOp,
    LinearOp,
    MaxPoolOp,
    NormOp,
    PlanOp,
    ReLUOp,
)

__all__ = ["PlanVerificationError", "verify_plan"]

_FLOAT32 = np.dtype(np.float32)
_FLOAT64 = np.dtype(np.float64)  # dtype-ok: dtype constant used for verification comparisons only, never constructs data

# A register's abstract shape: ("chw", C, H, W) for feature maps or
# ("flat", F) for flattened rows; dims are ints or None (unknown).  The
# batch axis is elided — it is symbolic through the whole plan.
Shape = Tuple


class PlanVerificationError(RuntimeError):
    """A :class:`CompiledPlan` violates an IR contract.

    Carries the location and the expected-vs-found evidence so callers (and
    CI logs) can point at the exact op without re-deriving the walk.
    """

    def __init__(
        self,
        message: str,
        *,
        op_index: Optional[int] = None,
        register: Optional[int] = None,
        expected: Optional[object] = None,
        found: Optional[object] = None,
    ):
        self.op_index = op_index
        self.register = register
        self.expected = expected
        self.found = found
        parts = []
        if op_index is not None:
            parts.append(f"op[{op_index}]")
        if register is not None:
            parts.append(f"r{register}")
        prefix = " ".join(parts)
        detail = message if not prefix else f"{prefix}: {message}"
        if expected is not None or found is not None:
            detail += f" (expected {expected!r}, found {found!r})"
        super().__init__(f"plan verification failed: {detail}")


def _fmt_shape(shape: Optional[Shape]) -> str:
    if shape is None:
        return "<unknown>"
    if shape[0] == "flat":
        return f"(N, {shape[1] if shape[1] is not None else '?'})"
    dims = ", ".join("?" if d is None else str(d) for d in shape[1:])
    return f"(N, {dims})"


def _merge_dims(a: Optional[int], b: Optional[int]) -> Optional[int]:
    return a if b is None else b


def _check_constant_dtype(
    array: np.ndarray, what: str, index: int, float64_mode: bool
) -> None:
    dtype = np.asarray(array).dtype
    if float64_mode:
        if dtype not in (_FLOAT32, _FLOAT64):
            raise PlanVerificationError(
                f"{what} must be float32/float64 under REPRO_FLOAT64",
                op_index=index, expected="float32|float64", found=str(dtype),
            )
    elif dtype != _FLOAT32:
        raise PlanVerificationError(
            f"{what} violates the weak-scalar float32 policy",
            op_index=index, expected="float32", found=str(dtype),
        )


class _Interp:
    """One pass of abstract interpretation; raises on the first violation."""

    def __init__(self, plan: CompiledPlan, input_shape: Optional[Sequence[int]]):
        self.plan = plan
        self.float64_mode = bool(plan.float64_mode)
        # One env read per pass: ``FoldedConvNorm.active`` re-reads the
        # environment on every call, which dominates the verifier's cost.
        self.env_float64 = float64_enabled()
        if input_shape is None:
            frame: Shape = ("chw", None, None, None)
        else:
            if len(input_shape) != 3:
                raise ValueError(
                    "input_shape must be (channels, height, width) without "
                    f"the batch axis, got {tuple(input_shape)!r}"
                )
            frame = ("chw",) + tuple(int(d) for d in input_shape)
        # Register 0 is the input frame, encoded float32 by every encoder.
        self.shapes = {0: frame}
        self.dtypes = {0: _FLOAT32}
        self.written_at = {0: -1}

    # ------------------------------------------------------------------ #
    # SSA discipline
    # ------------------------------------------------------------------ #
    def check_registers(self, index: int, op: PlanOp) -> None:
        plan = self.plan
        reads = op.reads
        for register in (*reads, op.dst):
            if not isinstance(register, int) or not (
                0 <= register < plan.num_registers
            ):
                raise PlanVerificationError(
                    "register index out of range",
                    op_index=index, register=register,
                    expected=f"0..{plan.num_registers - 1}", found=register,
                )
        if op.dst == 0:
            raise PlanVerificationError(
                "register 0 is the input frame and must never be written",
                op_index=index, register=0,
            )
        for register in reads:
            if register not in self.written_at:
                raise PlanVerificationError(
                    "read of a register no prior op has written "
                    "(read-before-write breaks single assignment)",
                    op_index=index, register=register,
                )
        if op.dst in self.written_at:
            raise PlanVerificationError(
                "register written twice (single-assignment violation; "
                f"first write at op[{self.written_at[op.dst]}])",
                op_index=index, register=op.dst,
            )

    # ------------------------------------------------------------------ #
    # Per-op transfer functions: constants, shape, dtype
    # ------------------------------------------------------------------ #
    def _require_chw(self, index: int, op: PlanOp) -> Shape:
        shape = self.shapes[op.src]
        if shape[0] != "chw":
            raise PlanVerificationError(
                f"{type(op).__name__} needs a 4-D feature map input",
                op_index=index, register=op.src,
                expected="(N, C, H, W)", found=_fmt_shape(shape),
            )
        return shape

    def _conv_like(
        self, index: int, op: PlanOp, weight: np.ndarray,
        bias: Optional[np.ndarray], conv_module,
    ) -> Shape:
        shape = self._require_chw(index, op)
        if weight.ndim != 4:
            raise PlanVerificationError(
                "conv weight must be 4-D (out, in, kh, kw)",
                op_index=index, expected=4, found=weight.ndim,
            )
        out_channels, in_channels, kh, kw = weight.shape
        kernel = conv_module.kernel_size
        if kh != kernel or kw != kernel:
            raise PlanVerificationError(
                "conv weight window disagrees with the module's kernel_size",
                op_index=index, expected=(kernel, kernel), found=(kh, kw),
            )
        if shape[1] is not None and shape[1] != in_channels:
            raise PlanVerificationError(
                "conv input channels disagree with the weight fan-in",
                op_index=index, register=op.src,
                expected=in_channels, found=shape[1],
            )
        if bias is not None and bias.shape != (out_channels,):
            raise PlanVerificationError(
                "conv bias shape disagrees with the weight fan-out",
                op_index=index, expected=(out_channels,), found=bias.shape,
            )
        _check_constant_dtype(weight, "conv weight", index, self.float64_mode)
        if bias is not None:
            _check_constant_dtype(bias, "conv bias", index, self.float64_mode)
        stride, padding = conv_module.stride, conv_module.padding

        def spatial(size: Optional[int]) -> Optional[int]:
            if size is None:
                return None
            try:
                return conv_output_size(size, kernel, stride, padding)
            except ValueError as error:
                raise PlanVerificationError(
                    str(error), op_index=index, register=op.src,
                ) from None

        return ("chw", out_channels, spatial(shape[2]), spatial(shape[3]))

    def _pool(self, index: int, op: PlanOp, kernel: int, stride: int) -> Shape:
        shape = self._require_chw(index, op)

        def spatial(size: Optional[int]) -> Optional[int]:
            if size is None:
                return None
            try:
                return conv_output_size(size, kernel, stride, 0)
            except ValueError as error:
                raise PlanVerificationError(
                    str(error), op_index=index, register=op.src,
                ) from None

        return ("chw", shape[1], spatial(shape[2]), spatial(shape[3]))

    def transfer(self, index: int, op: PlanOp) -> Tuple[Shape, np.dtype]:
        """Output (shape, dtype) of ``op``; raises on any contract breach."""
        handler = _TRANSFER.get(type(op))
        if handler is None:
            # Subclasses of known op types resolve once and are memoized.
            for op_type, candidate in list(_TRANSFER.items()):
                if isinstance(op, op_type):
                    handler = _TRANSFER[type(op)] = candidate
                    break
            else:
                raise PlanVerificationError(
                    f"unknown op type {type(op).__name__}", op_index=index
                )
        return handler(self, index, op)

    def _t_conv(self, index: int, op: ConvOp) -> Tuple[Shape, np.dtype]:
        module = op.module
        bias = None if module.bias is None else np.asarray(module.bias.data)
        shape = self._conv_like(
            index, op, np.asarray(module.weight.data), bias, module
        )
        return shape, self.dtypes[op.src]

    def _t_fold(self, index: int, op: FoldedConvNormOp) -> Tuple[Shape, np.dtype]:
        self._check_fold_mode(index, op)
        weight, bias = op.folded.arrays()
        shape = self._conv_like(
            index, op, np.asarray(weight), np.asarray(bias), op.conv
        )
        return shape, self.dtypes[op.src]

    def _t_lif(self, index: int, op: LIFOp) -> Tuple[Shape, np.dtype]:
        module = op.module
        for attr in ("tau", "v_threshold", "reset"):
            if not hasattr(module, attr):
                raise PlanVerificationError(
                    f"LIF module is missing {attr!r}", op_index=index
                )
        # Elementwise: shape passes through.  Under the legacy mode the
        # float64 tau/threshold scalars promote the membrane (and hence
        # the spikes); under the default policy they stay weak.
        out = self.dtypes[op.src] if not self.float64_mode else _FLOAT64
        return self.shapes[op.src], out

    def _t_pool(self, index: int, op: PlanOp) -> Tuple[Shape, np.dtype]:
        shape = self._pool(index, op, op.kernel, op.stride)
        return shape, self.dtypes[op.src]

    def _t_adaptive(
        self, index: int, op: AdaptiveAvgPoolOp
    ) -> Tuple[Shape, np.dtype]:
        shape = self._require_chw(index, op)
        target = int(op.output_size)
        for size in (shape[2], shape[3]):
            if size is not None and (size < target or size % target):
                raise PlanVerificationError(
                    "adaptive pool needs spatial dims divisible by its "
                    "output size",
                    op_index=index, register=op.src,
                    expected=f"multiple of {target}", found=size,
                )
        return ("chw", shape[1], target, target), self.dtypes[op.src]

    def _t_flatten(self, index: int, op: FlattenOp) -> Tuple[Shape, np.dtype]:
        shape = self.shapes[op.src]
        if shape[0] == "flat":
            return shape, self.dtypes[op.src]
        dims = shape[1:]
        width = None
        if all(d is not None for d in dims):
            width = int(np.prod([int(d) for d in dims]))
        return ("flat", width), self.dtypes[op.src]

    def _t_relu(self, index: int, op: ReLUOp) -> Tuple[Shape, np.dtype]:
        return self.shapes[op.src], self.dtypes[op.src]

    def _norm(self, index: int, op: NormOp) -> Tuple[Shape, np.dtype]:
        shape = self._require_chw(index, op)
        module = op.module
        features = int(module.num_features)
        if shape[1] is not None and shape[1] != features:
            raise PlanVerificationError(
                "norm num_features disagrees with incoming channels",
                op_index=index, register=op.src,
                expected=features, found=shape[1],
            )
        for name in ("running_mean", "running_var"):
            stat = np.asarray(getattr(module, name))
            if stat.shape != (features,):
                raise PlanVerificationError(
                    f"norm {name} shape disagrees with num_features",
                    op_index=index, expected=(features,), found=stat.shape,
                )
            _check_constant_dtype(stat, f"norm {name}", index, self.float64_mode)
        for name in ("weight", "bias"):
            param = np.asarray(getattr(module, name).data)
            if param.shape != (features,):
                raise PlanVerificationError(
                    f"norm {name} shape disagrees with num_features",
                    op_index=index, expected=(features,), found=param.shape,
                )
            _check_constant_dtype(param, f"norm {name}", index, self.float64_mode)
        if op.scale is not None:
            scale_dtype = np.asarray(op.scale).dtype
            expected = _FLOAT64 if self.float64_mode else _FLOAT32
            if scale_dtype != expected:
                raise PlanVerificationError(
                    "norm scale scalar materialized at the wrong dtype",
                    op_index=index, expected=str(expected), found=str(scale_dtype),
                )
        # The eps scalar (and under tdBN the alpha*v_th scale) promotes the
        # register to float64 under the legacy mode; stays weak by default.
        out = self.dtypes[op.src] if not self.float64_mode else _FLOAT64
        return ("chw", features, shape[2], shape[3]), out

    def _linear(self, index: int, op: LinearOp) -> Tuple[Shape, np.dtype]:
        shape = self.shapes[op.src]
        if shape[0] != "flat":
            raise PlanVerificationError(
                "LinearOp needs a flattened (N, F) input — insert FlattenOp",
                op_index=index, register=op.src,
                expected="(N, F)", found=_fmt_shape(shape),
            )
        module = op.module
        weight = np.asarray(module.weight.data)
        if weight.ndim != 2:
            raise PlanVerificationError(
                "linear weight must be 2-D (out, in)",
                op_index=index, expected=2, found=weight.ndim,
            )
        out_features, in_features = weight.shape
        if shape[1] is not None and shape[1] != in_features:
            raise PlanVerificationError(
                "linear fan-in disagrees with the flattened width",
                op_index=index, register=op.src,
                expected=in_features, found=shape[1],
            )
        _check_constant_dtype(weight, "linear weight", index, self.float64_mode)
        if module.bias is not None:
            bias = np.asarray(module.bias.data)
            if bias.shape != (out_features,):
                raise PlanVerificationError(
                    "linear bias shape disagrees with the fan-out",
                    op_index=index, expected=(out_features,), found=bias.shape,
                )
            _check_constant_dtype(bias, "linear bias", index, self.float64_mode)
        return ("flat", out_features), self.dtypes[op.src]

    def _add(self, index: int, op: AddOp) -> Tuple[Shape, np.dtype]:
        left, right = self.shapes[op.src], self.shapes[op.src2]
        if left[0] != right[0]:
            raise PlanVerificationError(
                "residual add of a feature map and a flattened row",
                op_index=index, register=op.src2,
                expected=_fmt_shape(left), found=_fmt_shape(right),
            )
        merged: List[Optional[int]] = [None] * (len(left) - 1)
        for axis, (a, b) in enumerate(zip(left[1:], right[1:])):
            if a is not None and b is not None and a != b:
                raise PlanVerificationError(
                    "residual-add operand shapes are incompatible",
                    op_index=index, register=op.src2,
                    expected=_fmt_shape(left), found=_fmt_shape(right),
                )
            merged[axis] = _merge_dims(a, b)
        dtype = np.result_type(self.dtypes[op.src], self.dtypes[op.src2])
        return (left[0], *merged), np.dtype(dtype)

    # ------------------------------------------------------------------ #
    # Mode invariants for folded ops
    # ------------------------------------------------------------------ #
    def _check_fold_mode(self, index: int, op: FoldedConvNormOp) -> None:
        if self.float64_mode:
            raise PlanVerificationError(
                "folded conv+norm op in a REPRO_FLOAT64 plan — legacy mode "
                "must run the unfused op sequence",
                op_index=index,
            )
        if self.env_float64:  # == ``not op.folded.active``, without the env read
            raise PlanVerificationError(
                "folded conv+norm op whose fold cache is inactive (dtype "
                "mode changed after lowering?)",
                op_index=index,
            )
        model = self.plan.model
        if model is not None and getattr(model, "training", False):
            raise PlanVerificationError(
                "folded conv+norm op while the source model is in training "
                "mode — folding is frozen-inference only",
                op_index=index,
            )
        conv, norm = op.conv, op.folded.norm
        if "forward" in conv.__dict__ or "forward" in norm.__dict__:
            raise PlanVerificationError(
                "folded conv+norm op over instrumented modules (instance "
                "forward override) — instrumentation must see unfused ops",
                op_index=index,
            )

    # ------------------------------------------------------------------ #
    def record(self, op: PlanOp, index: int, shape: Shape, dtype: np.dtype) -> None:
        dtype = np.dtype(dtype)
        if not self.float64_mode and dtype != _FLOAT32:
            raise PlanVerificationError(
                "register dtype violates the weak-scalar float32 policy",
                op_index=index, register=op.dst,
                expected="float32", found=str(dtype),
            )
        self.shapes[op.dst] = shape
        self.dtypes[op.dst] = dtype
        self.written_at[op.dst] = index


# Exact-type transfer dispatch: the op set is closed and the verifier runs on
# every compile, so a dict lookup beats a ten-way isinstance chain.
_TRANSFER = {
    ConvOp: _Interp._t_conv,
    FoldedConvNormOp: _Interp._t_fold,
    NormOp: _Interp._norm,
    LIFOp: _Interp._t_lif,
    AvgPoolOp: _Interp._t_pool,
    MaxPoolOp: _Interp._t_pool,
    AdaptiveAvgPoolOp: _Interp._t_adaptive,
    FlattenOp: _Interp._t_flatten,
    LinearOp: _Interp._linear,
    ReLUOp: _Interp._t_relu,
    AddOp: _Interp._add,
}


def _check_stem_metadata(plan: CompiledPlan) -> None:
    ops = plan.ops
    # Liveness across the stem boundary, against the *stored* metadata (the
    # values the executor actually uses): a cached-stem replay restores only
    # plan.stem_registers (plus the input frame), so any other cross-boundary
    # read would hit a register nobody restored.
    stored_len = plan.stem_len
    restorable = set(plan.stem_registers)
    written_after = set()
    for offset, op in enumerate(ops[stored_len:]):
        for register in op.reads:
            if register == 0 or register in restorable or register in written_after:
                continue
            raise PlanVerificationError(
                "post-stem read of a register the stem replay does not "
                "restore (scratch-liveness violation)",
                op_index=stored_len + offset, register=register,
            )
        written_after.add(op.dst)
    # Canonical-lowering agreement: recompute the stem metadata from the op
    # list and require an exact match.
    stem_len = next((i for i, op in enumerate(ops) if op.is_stateful), 0)
    if plan.stem_len != stem_len:
        raise PlanVerificationError(
            "stem_len disagrees with the first stateful op",
            expected=stem_len, found=plan.stem_len,
        )
    written = {op.dst for op in ops[:stem_len]}
    read_later = {r for op in ops[stem_len:] for r in op.reads}
    stem_registers = tuple(sorted(written & read_later))
    if tuple(plan.stem_registers) != stem_registers:
        raise PlanVerificationError(
            "stem_registers disagree with the stem's live-out set",
            expected=stem_registers, found=tuple(plan.stem_registers),
        )
    producer = next(
        (op for op in reversed(ops) if op.dst == plan.output_register), None
    )
    needs_copy = not isinstance(producer, LinearOp)
    if bool(plan.output_needs_copy) != needs_copy:
        raise PlanVerificationError(
            "output_needs_copy disagrees with the output producer "
            f"({type(producer).__name__ if producer else 'input frame'})",
            register=plan.output_register,
            expected=needs_copy, found=bool(plan.output_needs_copy),
        )


def _check_lif_bookkeeping(plan: CompiledPlan) -> None:
    lif_ops = [
        (index, op) for index, op in enumerate(plan.ops) if isinstance(op, LIFOp)
    ]
    if plan.num_lif != len(lif_ops):
        raise PlanVerificationError(
            "num_lif disagrees with the number of LIF ops",
            expected=len(lif_ops), found=plan.num_lif,
        )
    seen = {}
    for index, op in lif_ops:
        state_index = op.state_index
        if not (0 <= state_index < plan.num_lif):
            raise PlanVerificationError(
                "LIF state_index out of range",
                op_index=index, expected=f"0..{plan.num_lif - 1}",
                found=state_index,
            )
        if state_index in seen:
            raise PlanVerificationError(
                "two LIF ops share one membrane state slot "
                f"(also used by op[{seen[state_index]}])",
                op_index=index, found=state_index,
            )
        seen[state_index] = index


def verify_plan(
    plan: CompiledPlan, input_shape: Optional[Sequence[int]] = None
) -> CompiledPlan:
    """Verify every IR contract of ``plan``; returns the plan for chaining.

    ``input_shape`` is the optional concrete ``(channels, height, width)``
    of the encoded input frame (no batch axis).  With it, spatial shape
    propagation is exact end to end; without it, channel/feature/dtype/SSA
    checking still runs in full (the compile-time invocation inside
    ``compile_network`` has no sample in hand and passes ``None``).

    Raises :class:`PlanVerificationError` on the first violation.  Cost is
    O(#ops) with no array math — per-compile, never per-step.
    """
    if plan.num_registers < 1:
        raise PlanVerificationError(
            "plan needs at least the input register",
            expected=">= 1", found=plan.num_registers,
        )
    if not (0 <= plan.output_register < plan.num_registers):
        raise PlanVerificationError(
            "output register out of range",
            register=plan.output_register,
            expected=f"0..{plan.num_registers - 1}", found=plan.output_register,
        )
    interp = _Interp(plan, input_shape)
    for index, op in enumerate(plan.ops):
        interp.check_registers(index, op)
        shape, dtype = interp.transfer(index, op)
        interp.record(op, index, shape, dtype)
    if plan.output_register not in interp.written_at:
        raise PlanVerificationError(
            "output register is never written",
            register=plan.output_register,
        )
    _check_lif_bookkeeping(plan)
    _check_stem_metadata(plan)
    return plan
