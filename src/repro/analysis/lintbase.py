"""Shared plumbing for the AST linters: findings, pragmas, reports.

Both linters (:mod:`repro.analysis.dtypelint`,
:mod:`repro.analysis.locklint`) use the same suppression mechanism — an
in-source pragma comment on the flagged line::

    exits = np.array(values, dtype=np.float64)  # dtype-ok: decision-side scores

The pragma *must* carry a non-empty reason after the colon; a bare pragma
is itself an error, and a pragma on a line with no finding is a *stale
pragma* error — so the suppression list can never silently rot in either
direction (every exception is justified, every justification still
justifies something).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Finding", "FileLint", "scan_pragmas", "apply_pragmas"]


@dataclass(frozen=True)
class Finding:
    """One linter hit, anchored to a file and line."""

    path: str
    line: int
    rule: str
    message: str
    suppressed_by: Optional[str] = None  # the pragma reason, when suppressed

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FileLint:
    """The outcome of linting one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)  # active (fail CI)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)  # pragma misuse


def scan_pragmas(source: str, tag: str) -> Tuple[Dict[int, str], List[Tuple[int, str]]]:
    """Per-line pragma reasons for ``# <tag>: <reason>`` comments.

    Returns ``(reasons, bad)``: a ``{line: reason}`` map for well-formed
    pragmas and a list of ``(line, problem)`` for malformed ones (missing
    colon or empty reason).
    """
    well_formed = re.compile(r"#\s*" + re.escape(tag) + r"\s*:\s*(\S.*)$")
    bare = re.compile(r"#\s*" + re.escape(tag) + r"\b")
    reasons: Dict[int, str] = {}
    bad: List[Tuple[int, str]] = []
    # Tokenize so only real COMMENT tokens count — a docstring *describing*
    # the pragma syntax must not register as a pragma.
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        comments = []  # the AST pass reports the parse error
    for number, text in comments:
        match = well_formed.search(text)
        if match:
            reasons[number] = match.group(1).strip()
        elif bare.search(text):
            bad.append(
                (number, f"bare '# {tag}' pragma — write '# {tag}: <reason>'")
            )
    return reasons, bad


def apply_pragmas(
    path: str, source: str, tag: str, raw_findings: List[Finding]
) -> FileLint:
    """Split raw findings into active/suppressed and police pragma hygiene."""
    reasons, bad = scan_pragmas(source, tag)
    result = FileLint(path=path)
    for line, problem in bad:
        result.errors.append(
            Finding(path=path, line=line, rule=f"{tag}-pragma", message=problem)
        )
    used: Dict[int, bool] = {line: False for line in reasons}
    for finding in raw_findings:
        reason = reasons.get(finding.line)
        if reason is None:
            result.findings.append(finding)
        else:
            used[finding.line] = True
            result.suppressed.append(
                Finding(
                    path=finding.path, line=finding.line, rule=finding.rule,
                    message=finding.message, suppressed_by=reason,
                )
            )
    for line, was_used in sorted(used.items()):
        if not was_used:
            result.errors.append(
                Finding(
                    path=path, line=line, rule=f"{tag}-pragma",
                    message=(
                        f"stale '# {tag}' pragma: no finding on this line — "
                        "delete it or move it to the flagged line"
                    ),
                )
            )
    return result
