"""Mapping a spiking network onto the tiled IMC chip.

The paper maps each SNN layer onto one or more tiles; a tile holds 64
crossbars grouped into processing elements (PEs), and a 64x64 crossbar holds
a block of the layer's unrolled weight matrix (rows = ``k*k*C_in``, columns =
``C_out * cells_per_weight``).  This module computes that mapping for any
network built from :class:`~repro.nn.layers.Conv2d` and
:class:`~repro.nn.layers.Linear` layers and derives the per-timestep event
counts (crossbar reads, row activations, ADC conversions, buffer and
interconnect traffic, LIF updates) the energy/latency model prices.

Event counts depend on spike activity, so the mapping is built by *tracing*
the trained network on a representative input batch: every conv/linear layer
records its input shape and the fraction of non-zero inputs it actually saw,
which is exactly the row-activation activity of the crossbars implementing
it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..autograd import no_grad
from ..autograd.ops import conv_output_size
from ..nn.layers import Conv2d, Linear
from ..snn.network import SpikingNetwork
from .config import HardwareConfig

__all__ = ["LayerGeometry", "LayerMapping", "ChipMapping", "trace_network_geometry"]


@dataclass
class LayerGeometry:
    """Shape and activity information of one weight layer, from tracing."""

    name: str
    kind: str                    # "conv" or "linear"
    in_channels: int
    out_channels: int
    kernel_size: int
    output_positions: int        # number of output pixels per timestep (1 for linear)
    input_activity: float        # mean fraction of non-zero inputs observed
    weight_rows: int             # unrolled rows = k*k*C_in (or in_features)
    weight_cols: int             # output neurons = C_out (or out_features)

    @property
    def macs_per_timestep(self) -> float:
        """Multiply-accumulate operations this layer performs per timestep."""
        return float(self.output_positions) * self.weight_rows * self.weight_cols


def trace_network_geometry(
    model: SpikingNetwork,
    sample_input: np.ndarray,
    timesteps: int = 1,
) -> List[LayerGeometry]:
    """Run the network on ``sample_input`` and record each weight layer's geometry.

    Temporarily wraps every ``Conv2d``/``Linear`` forward to observe input
    shapes and input sparsity, then restores the original methods.  The trace
    runs in inference mode and does not modify the model.
    """
    records: Dict[str, Dict] = {}
    wrapped: List[tuple] = []

    def make_wrapper(layer_name: str, layer, kind: str):
        original_forward = layer.forward

        def wrapper(x, _original=original_forward, _name=layer_name, _layer=layer, _kind=kind):
            data = x.data if hasattr(x, "data") else np.asarray(x)
            record = records.setdefault(
                _name,
                {
                    "kind": _kind,
                    "layer": _layer,
                    "nonzero": 0.0,
                    "total": 0.0,
                    "input_shape": data.shape,
                },
            )
            record["nonzero"] += float(np.count_nonzero(data))
            record["total"] += float(data.size)
            record["input_shape"] = data.shape
            return _original(x)

        return wrapper

    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            kind = "conv" if isinstance(module, Conv2d) else "linear"
            object.__setattr__(module, "forward", make_wrapper(name or kind, module, kind))
            wrapped.append((module,))

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model.forward(np.asarray(sample_input, dtype=np.float32), timesteps)
    finally:
        model.train(was_training)
        for (module,) in wrapped:
            if "forward" in module.__dict__:
                del module.__dict__["forward"]

    geometries: List[LayerGeometry] = []
    for name, record in records.items():
        layer = record["layer"]
        activity = record["nonzero"] / record["total"] if record["total"] else 0.0
        if record["kind"] == "conv":
            _, _, h, w = record["input_shape"]
            out_h = conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
            out_w = conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
            geometries.append(
                LayerGeometry(
                    name=name,
                    kind="conv",
                    in_channels=layer.in_channels,
                    out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size,
                    output_positions=out_h * out_w,
                    input_activity=activity,
                    weight_rows=layer.kernel_size * layer.kernel_size * layer.in_channels,
                    weight_cols=layer.out_channels,
                )
            )
        else:
            geometries.append(
                LayerGeometry(
                    name=name,
                    kind="linear",
                    in_channels=layer.in_features,
                    out_channels=layer.out_features,
                    kernel_size=1,
                    output_positions=1,
                    input_activity=activity,
                    weight_rows=layer.in_features,
                    weight_cols=layer.out_features,
                )
            )
    return geometries


@dataclass
class LayerMapping:
    """Hardware resources assigned to one layer and its per-timestep event counts."""

    geometry: LayerGeometry
    row_splits: int
    col_splits: int
    num_crossbars: int
    num_pes: int
    num_tiles: int
    # per-timestep event counts
    crossbar_reads: float
    row_activations: float
    adc_conversions: float
    accumulator_ops: float
    shift_add_ops: float
    buffer_accesses: float
    htree_transfers: float
    noc_transfers: float
    lif_updates: float

    @classmethod
    def from_geometry(cls, geometry: LayerGeometry, config: HardwareConfig) -> "LayerMapping":
        size = config.crossbar_size
        physical_cols = geometry.weight_cols * config.cells_per_weight
        row_splits = math.ceil(geometry.weight_rows / size)
        col_splits = math.ceil(physical_cols / size)
        num_crossbars = row_splits * col_splits
        num_pes = math.ceil(num_crossbars / config.crossbars_per_pe)
        num_tiles = math.ceil(num_crossbars / config.crossbars_per_tile)

        positions = float(geometry.output_positions)
        activity = geometry.input_activity
        # Every output position requires one read of every crossbar of the layer.
        crossbar_reads = positions * num_crossbars
        # Only rows whose input spiked draw read current (binary activations).
        row_activations = positions * geometry.weight_rows * activity * col_splits
        # Every physical column is converted once per read (muxed onto shared ADCs).
        adc_conversions = positions * physical_cols * row_splits
        # Partial sums from the row splits are added, then bit slices combined.
        accumulator_ops = positions * physical_cols * max(row_splits - 1, 0) + (
            positions * geometry.weight_cols * (config.cells_per_weight - 1)
        )
        shift_add_ops = positions * geometry.weight_cols * (config.cells_per_weight - 1)
        # Buffer traffic: read the input row vector once per position, write the
        # output vector once per position (words of activations / partial sums).
        buffer_accesses = positions * (geometry.weight_rows + geometry.weight_cols)
        # H-tree moves crossbar partial sums up to the PE/tile accumulators.
        htree_transfers = positions * physical_cols * row_splits
        # NoC moves the layer's output feature map to the tile(s) of the next layer.
        noc_transfers = positions * geometry.weight_cols
        # LIF module updates one membrane per output value.
        lif_updates = positions * geometry.weight_cols
        return cls(
            geometry=geometry,
            row_splits=row_splits,
            col_splits=col_splits,
            num_crossbars=num_crossbars,
            num_pes=num_pes,
            num_tiles=num_tiles,
            crossbar_reads=crossbar_reads,
            row_activations=row_activations,
            adc_conversions=adc_conversions,
            accumulator_ops=accumulator_ops,
            shift_add_ops=shift_add_ops,
            buffer_accesses=buffer_accesses,
            htree_transfers=htree_transfers,
            noc_transfers=noc_transfers,
            lif_updates=lif_updates,
        )


@dataclass
class ChipMapping:
    """Complete mapping of a network onto the chip."""

    config: HardwareConfig
    layers: List[LayerMapping] = field(default_factory=list)
    input_pixels: int = 0

    @classmethod
    def from_network(
        cls,
        model: SpikingNetwork,
        sample_input: np.ndarray,
        config: Optional[HardwareConfig] = None,
        timesteps: int = 1,
    ) -> "ChipMapping":
        """Trace ``model`` on ``sample_input`` and map every weight layer."""
        config = (config or HardwareConfig.paper_default()).validate()
        sample_input = np.asarray(sample_input, dtype=np.float32)
        if sample_input.ndim == 3:
            sample_input = sample_input[None]
        geometries = trace_network_geometry(model, sample_input, timesteps)
        if not geometries:
            raise ValueError("the network contains no Conv2d/Linear layers to map")
        layers = [LayerMapping.from_geometry(geometry, config) for geometry in geometries]
        # Per-sample input pixels loaded into the global buffer once per inference.
        per_sample_shape = sample_input.shape[1:]
        input_pixels = int(np.prod(per_sample_shape[-3:]))
        return cls(config=config, layers=layers, input_pixels=input_pixels)

    @classmethod
    def from_geometries(
        cls,
        geometries: List[LayerGeometry],
        config: Optional[HardwareConfig] = None,
        input_pixels: int = 0,
    ) -> "ChipMapping":
        """Build a mapping from externally supplied layer geometries."""
        config = (config or HardwareConfig.paper_default()).validate()
        layers = [LayerMapping.from_geometry(geometry, config) for geometry in geometries]
        return cls(config=config, layers=layers, input_pixels=input_pixels)

    # ------------------------------------------------------------------ #
    @property
    def total_crossbars(self) -> int:
        return sum(layer.num_crossbars for layer in self.layers)

    @property
    def total_tiles(self) -> int:
        return sum(layer.num_tiles for layer in self.layers)

    @property
    def total_pes(self) -> int:
        return sum(layer.num_pes for layer in self.layers)

    def total_event(self, name: str) -> float:
        """Sum one per-timestep event count over all layers."""
        return float(sum(getattr(layer, name) for layer in self.layers))

    def event_totals(self) -> Dict[str, float]:
        """All per-timestep event totals keyed by event name."""
        names = (
            "crossbar_reads",
            "row_activations",
            "adc_conversions",
            "accumulator_ops",
            "shift_add_ops",
            "buffer_accesses",
            "htree_transfers",
            "noc_transfers",
            "lif_updates",
        )
        return {name: self.total_event(name) for name in names}

    def utilization_summary(self) -> Dict[str, float]:
        """Chip-level occupancy summary (used by the mapping report)."""
        return {
            "num_layers": float(len(self.layers)),
            "total_crossbars": float(self.total_crossbars),
            "total_pes": float(self.total_pes),
            "total_tiles": float(self.total_tiles),
            "total_macs_per_timestep": float(
                sum(layer.geometry.macs_per_timestep for layer in self.layers)
            ),
        }
