"""Simple area model of the tiled IMC chip.

Area is not a headline metric of the paper (the DT-SNN additions are two 3 KB
LUTs and a small FIFO/MAC), but a component-wise area accounting is useful to
confirm the sigma-E module is a negligible fraction of the chip — the area
analogue of the "2e-5x energy overhead" statement in Sec. III-B — and it
rounds out the NeuroSim-style report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import HardwareConfig
from .mapping import ChipMapping

__all__ = ["AreaConstants", "AreaModel"]


@dataclass
class AreaConstants:
    """Component areas in square micrometres (32 nm-class estimates)."""

    crossbar_um2: float = 650.0          # 64x64 RRAM array incl. drivers
    adc_um2: float = 1200.0              # one SAR ADC
    switch_matrix_um2: float = 300.0
    shift_add_um2: float = 250.0
    accumulator_um2: float = 350.0
    buffer_um2_per_kb: float = 1500.0
    htree_um2_per_tile: float = 2000.0
    noc_router_um2: float = 4500.0
    lif_module_um2: float = 3000.0
    lut_um2_per_kb: float = 1800.0       # sigma / entropy LUTs
    fifo_um2: float = 500.0
    entropy_mac_um2: float = 900.0


class AreaModel:
    """Adds up component areas for a mapped network."""

    def __init__(
        self,
        mapping: ChipMapping,
        config: Optional[HardwareConfig] = None,
        constants: Optional[AreaConstants] = None,
    ):
        self.mapping = mapping
        self.config = (config or mapping.config).validate()
        self.constants = constants or AreaConstants()

    def breakdown(self) -> Dict[str, float]:
        """Component-wise area in square micrometres."""
        constants = self.constants
        config = self.config
        num_crossbars = self.mapping.total_crossbars
        num_pes = self.mapping.total_pes
        num_tiles = self.mapping.total_tiles
        adcs = num_crossbars * max(config.crossbar_size // config.adc_share_columns, 1)

        crossbar_area = num_crossbars * constants.crossbar_um2
        adc_area = adcs * constants.adc_um2
        peripheral_area = num_crossbars * (
            constants.switch_matrix_um2 + constants.shift_add_um2
        ) + num_pes * constants.accumulator_um2
        buffer_area = (
            num_pes * config.pe_buffer_kb
            + num_tiles * config.tile_buffer_kb
            + config.global_buffer_kb
        ) * constants.buffer_um2_per_kb
        interconnect_area = (
            num_tiles * constants.htree_um2_per_tile + num_tiles * constants.noc_router_um2
        )
        lif_area = constants.lif_module_um2
        sigma_e_area = (
            (config.sigma_lut_kb + config.entropy_lut_kb) * constants.lut_um2_per_kb
            + 2 * constants.fifo_um2
            + constants.entropy_mac_um2
        )
        total = (
            crossbar_area
            + adc_area
            + peripheral_area
            + buffer_area
            + interconnect_area
            + lif_area
            + sigma_e_area
        )
        return {
            "crossbar": crossbar_area,
            "adc": adc_area,
            "digital_peripherals": peripheral_area,
            "buffers": buffer_area,
            "interconnect": interconnect_area,
            "lif_module": lif_area,
            "sigma_e_module": sigma_e_area,
            "total": total,
        }

    def sigma_e_fraction(self) -> float:
        """Fraction of total chip area occupied by the DT-SNN sigma-E module."""
        breakdown = self.breakdown()
        return breakdown["sigma_e_module"] / breakdown["total"]
