"""Injecting device non-idealities into a trained network (Fig. 6B).

The paper evaluates DT-SNN under 20% RRAM conductance variation by "adding
noise to the weights post-training".  :func:`apply_device_variation` performs
that procedure through the full device model (weight quantization →
conductance mapping → multiplicative variation → read-back), returning a
perturbed copy of the network's weights; :func:`with_device_variation` is a
context manager that applies the noise, runs the caller's evaluation, and
restores the original weights afterwards so one trained model can be
evaluated at many noise levels.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional

import numpy as np

from ..nn.module import Module
from ..utils.rng import spawn_rng
from .config import HardwareConfig
from .device import RRAMDeviceModel

__all__ = ["perturbed_state_dict", "apply_device_variation", "with_device_variation"]


def _is_weight_key(key: str) -> bool:
    """Only convolution/linear weights live on the crossbars; BN/bias do not."""
    return key.endswith("weight") and "norm" not in key and "running" not in key


def perturbed_state_dict(
    model: Module,
    sigma: Optional[float] = None,
    config: Optional[HardwareConfig] = None,
    rng: Optional[np.random.Generator] = None,
    quantize: bool = True,
) -> Dict[str, np.ndarray]:
    """Return a copy of ``model.state_dict()`` with crossbar weights perturbed."""
    config = (config or HardwareConfig.paper_default()).validate()
    device_model = RRAMDeviceModel(config)
    rng = rng or spawn_rng()
    state = model.state_dict()
    perturbed: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        if _is_weight_key(key) and np.asarray(value).ndim >= 2:
            perturbed[key] = device_model.perturb_weights(
                value, sigma=sigma, rng=rng, quantize=quantize
            ).astype(np.float32)
        else:
            perturbed[key] = np.asarray(value).copy()
    return perturbed


def apply_device_variation(
    model: Module,
    sigma: Optional[float] = None,
    config: Optional[HardwareConfig] = None,
    rng: Optional[np.random.Generator] = None,
    quantize: bool = True,
) -> Dict[str, np.ndarray]:
    """Perturb ``model`` in place; returns the original state dict for restoring."""
    original = model.state_dict()
    model.load_state_dict(
        perturbed_state_dict(model, sigma=sigma, config=config, rng=rng, quantize=quantize)
    )
    return original


@contextlib.contextmanager
def with_device_variation(
    model: Module,
    sigma: Optional[float] = None,
    config: Optional[HardwareConfig] = None,
    seed: Optional[int] = None,
    quantize: bool = True,
) -> Iterator[Module]:
    """Context manager: evaluate ``model`` under device variation, then restore it."""
    rng = spawn_rng(seed)
    original = apply_device_variation(model, sigma=sigma, config=config, rng=rng, quantize=quantize)
    try:
        yield model
    finally:
        model.load_state_dict(original)
