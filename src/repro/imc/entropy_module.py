"""Hardware model of the sigma-E (softmax + entropy) exit-decision module.

Fig. 3(b) of the paper: the global accumulator output of the final layer is
pushed into a y-FIFO, looked up in a 3 KB sigma-LUT to produce softmax
probabilities, pushed through a sigma-FIFO into the entropy module, which uses
a log-LUT, a multiplier and an adder/register to accumulate the Eq. 7 entropy,
and finally compares against the threshold theta.  The paper reports that the
energy of one such check is about ``2e-5`` of a one-timestep inference —
negligible — which this model lets us verify quantitatively for any mapped
network (see ``benchmarks/bench_sigma_e_overhead.py``).

Besides energy/latency accounting, the module also provides a *functional*
fixed-point LUT evaluation of softmax + entropy, so tests can check that the
hardware's quantized decision agrees with the floating-point decision of
:mod:`repro.core.entropy` for all but borderline inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.entropy import normalized_entropy, softmax_probabilities
from .config import HardwareConfig

__all__ = ["SigmaEModuleModel"]


@dataclass
class SigmaEModuleModel:
    """Energy, latency and functional model of the sigma-E module."""

    config: HardwareConfig
    num_classes: int = 10
    lut_input_bits: int = 8   # quantization of the logits addressing the sigma LUT
    lut_output_bits: int = 12  # precision of the LUT contents

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def energy_per_check(self) -> float:
        """Energy (pJ) of evaluating softmax + entropy + compare once."""
        constants = self.config.energy
        k = self.num_classes
        fifo = 2 * k * constants.fifo_access_pj          # y-FIFO and sigma-FIFO
        sigma_lut = k * constants.lut_lookup_pj          # sigma LUT lookups
        log_lut = k * constants.lut_lookup_pj            # log(sigma) LUT lookups
        mac = k * (constants.multiplier_pj + constants.accumulator_op_pj)
        compare = constants.comparator_pj
        return fifo + sigma_lut + log_lut + mac + compare

    def latency_per_check(self) -> float:
        """Latency (ns) of one exit check (pipelined through the FIFOs)."""
        return self.config.latency.sigma_e_check_ns

    def relative_overhead(self, one_timestep_energy: float) -> float:
        """Energy of one check relative to a one-timestep inference."""
        if one_timestep_energy <= 0:
            raise ValueError("one_timestep_energy must be positive")
        return self.energy_per_check() / one_timestep_energy

    def storage_bits(self) -> Dict[str, float]:
        """Storage used by the module (should fit the Table I 3 KB LUTs)."""
        sigma_entries = 2**self.lut_input_bits
        return {
            "sigma_lut_bits": sigma_entries * self.lut_output_bits,
            "log_lut_bits": sigma_entries * self.lut_output_bits,
            "sigma_lut_budget_bits": self.config.sigma_lut_kb * 1024 * 8,
            "log_lut_budget_bits": self.config.entropy_lut_kb * 1024 * 8,
            "y_fifo_bits": self.num_classes * self.lut_input_bits,
            "sigma_fifo_bits": self.num_classes * self.lut_output_bits,
        }

    def fits_lut_budget(self) -> bool:
        """True when the LUT contents fit in the Table I LUT sizes."""
        storage = self.storage_bits()
        return (
            storage["sigma_lut_bits"] <= storage["sigma_lut_budget_bits"]
            and storage["log_lut_bits"] <= storage["log_lut_budget_bits"]
        )

    # ------------------------------------------------------------------ #
    # Functional (fixed-point) model
    # ------------------------------------------------------------------ #
    def quantized_entropy(self, logits: np.ndarray) -> np.ndarray:
        """Normalized entropy as the LUT-based datapath computes it.

        Logits are quantized to ``lut_input_bits`` over their observed range
        (the y-FIFO width), softmax values to ``lut_output_bits`` (the sigma
        LUT output width), and the log-LUT output likewise; the entropy MAC
        then accumulates the products.  The result tracks the floating-point
        entropy closely except exactly at quantization boundaries.
        """
        logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        span = np.max(np.abs(logits), axis=-1, keepdims=True)
        span = np.where(span == 0, 1.0, span)
        input_levels = 2 ** (self.lut_input_bits - 1) - 1
        quantized_logits = np.round(logits / span * input_levels) / input_levels * span

        probabilities = softmax_probabilities(quantized_logits)
        output_levels = 2**self.lut_output_bits - 1
        quantized_probs = np.round(probabilities * output_levels) / output_levels
        # Renormalize the quantized probabilities as the hardware's shared
        # exponent alignment effectively does.
        sums = quantized_probs.sum(axis=-1, keepdims=True)
        sums = np.where(sums == 0, 1.0, sums)
        quantized_probs = quantized_probs / sums
        return normalized_entropy(quantized_probs)

    def should_exit(self, logits: np.ndarray, threshold: float) -> np.ndarray:
        """The hardware exit decision (quantized entropy < threshold)."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        return self.quantized_entropy(logits) < threshold
