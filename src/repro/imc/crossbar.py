"""Functional model of one IMC crossbar (analog MAC + ADC).

The crossbar stores a ``rows x cols`` weight sub-matrix on differential RRAM
pairs and computes dot products between binary spike vectors (applied on the
source lines) and the stored conductances, accumulating currents on the bit
lines (Sec. III-B of the paper).  The model captures the non-idealities that
matter for accuracy and energy:

* weight quantization to the 8-bit programmable resolution,
* conductance quantization to 4-bit devices,
* optional device-to-device conductance variation,
* ADC quantization of the analog partial sum,
* per-operation event counts feeding the energy/latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..utils.rng import spawn_rng
from .config import HardwareConfig
from .device import RRAMDeviceModel

__all__ = ["CrossbarArray", "CrossbarReadStats"]


@dataclass
class CrossbarReadStats:
    """Event counts accumulated over the reads a crossbar has served."""

    read_operations: int = 0
    row_activations: float = 0.0
    adc_conversions: int = 0

    def merge(self, other: "CrossbarReadStats") -> "CrossbarReadStats":
        return CrossbarReadStats(
            read_operations=self.read_operations + other.read_operations,
            row_activations=self.row_activations + other.row_activations,
            adc_conversions=self.adc_conversions + other.adc_conversions,
        )


class CrossbarArray:
    """One physical crossbar programmed with a weight sub-matrix."""

    def __init__(
        self,
        weights: np.ndarray,
        config: Optional[HardwareConfig] = None,
        apply_variation: bool = False,
        variation_sigma: Optional[float] = None,
        quantize: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        config = (config or HardwareConfig.paper_default()).validate()
        weights = np.asarray(weights, dtype=np.float64)  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        if weights.ndim != 2:
            raise ValueError("crossbar weights must be a 2-D matrix")
        rows, cols = weights.shape
        if rows > config.crossbar_size or cols > config.crossbar_size:
            raise ValueError(
                f"weight block {weights.shape} exceeds crossbar size {config.crossbar_size}"
            )
        self.config = config
        self.device_model = RRAMDeviceModel(config)
        self.rows = rows
        self.cols = cols
        self.ideal_weights = weights.astype(np.float32)
        self.stats = CrossbarReadStats()

        max_abs = float(np.max(np.abs(weights))) or 1.0
        self._max_abs = max_abs
        programmed = self.device_model.quantize_weights(weights, max_abs) if quantize else weights
        g_plus, g_minus, self._scale = self.device_model.weights_to_conductances(
            programmed, max_abs
        )
        if quantize:
            g_plus = self.device_model.quantize_conductances(g_plus)
            g_minus = self.device_model.quantize_conductances(g_minus)
        if apply_variation:
            rng = rng or spawn_rng()
            g_plus = self.device_model.apply_variation(g_plus, variation_sigma, rng)
            g_minus = self.device_model.apply_variation(g_minus, variation_sigma, rng)
        self.g_plus = g_plus
        self.g_minus = g_minus

    # ------------------------------------------------------------------ #
    @property
    def effective_weights(self) -> np.ndarray:
        """The weights as the analog array actually realizes them."""
        return self.device_model.conductances_to_weights(self.g_plus, self.g_minus, self._scale)

    def _quantize_adc(self, partial_sums: np.ndarray) -> np.ndarray:
        """Quantize analog partial sums to the ADC resolution.

        The full-scale range is the worst-case column current for the weights
        actually programmed (all rows of that column active), which is how
        NeuroSim-style models size the column ADC range.
        """
        column_worst_case = np.abs(self.effective_weights).sum(axis=0)
        full_scale = float(column_worst_case.max())
        if full_scale == 0:
            return partial_sums
        levels = 2**self.config.adc_bits - 1
        step = 2.0 * full_scale / levels
        return np.clip(np.round(partial_sums / step) * step, -full_scale, full_scale)

    def read(self, inputs: np.ndarray, quantize_adc: bool = True) -> np.ndarray:
        """Analog MAC: ``inputs`` ``(batch, rows)`` -> partial sums ``(batch, cols)``.

        Inputs are expected to be binary spikes (0/1); analog input values are
        accepted for testing but the activity accounting treats any non-zero
        entry as an activated row.
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        if inputs.shape[1] != self.rows:
            raise ValueError(f"expected {self.rows} input rows, got {inputs.shape[1]}")
        partial = inputs @ self.effective_weights.astype(np.float64)  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        if quantize_adc:
            partial = self._quantize_adc(partial)

        batch = inputs.shape[0]
        self.stats = self.stats.merge(
            CrossbarReadStats(
                read_operations=batch,
                row_activations=float(np.count_nonzero(inputs)),
                adc_conversions=batch * self.cols,
            )
        )
        return partial.astype(np.float32)

    def reset_stats(self) -> None:
        self.stats = CrossbarReadStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrossbarArray(rows={self.rows}, cols={self.cols})"
