"""Text report generation for the hardware model (NeuroSim-style summaries).

Benchmarks print these tables so the regenerated results can be compared
side-by-side with the paper's tables and figures.  Everything is plain text:
the benchmark harness captures stdout into ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_breakdown", "format_comparison_rows"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_breakdown(shares: Mapping[str, float], title: str = "Energy breakdown") -> str:
    """Render a component-share mapping as a percentage table (Fig. 1(A) style)."""
    rows = [[name, 100.0 * share] for name, share in sorted(shares.items(), key=lambda kv: -kv[1])]
    return format_table(["component", "share (%)"], rows, title=title, float_format="{:.1f}")


def format_comparison_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows selecting ``columns`` (Table II style)."""
    table_rows = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(columns, table_rows, title=title)
