"""In-memory-computing hardware simulator (NeuroSim-style analytical model)."""

from .architecture import IMCChip
from .area import AreaConstants, AreaModel
from .config import (
    COMPONENT_FIELDS,
    ENERGY_BREAKDOWN_TARGETS,
    EnergyConstants,
    HardwareConfig,
    LatencyConstants,
)
from .crossbar import CrossbarArray, CrossbarReadStats
from .device import RRAMDeviceModel
from .energy import EnergyBreakdown, EnergyCalibrator, EnergyModel
from .entropy_module import SigmaEModuleModel
from .latency import LatencyModel
from .mapping import ChipMapping, LayerGeometry, LayerMapping, trace_network_geometry
from .noise import apply_device_variation, perturbed_state_dict, with_device_variation
from .report import format_breakdown, format_comparison_rows, format_table

__all__ = [
    "HardwareConfig",
    "EnergyConstants",
    "LatencyConstants",
    "ENERGY_BREAKDOWN_TARGETS",
    "COMPONENT_FIELDS",
    "RRAMDeviceModel",
    "CrossbarArray",
    "CrossbarReadStats",
    "LayerGeometry",
    "LayerMapping",
    "ChipMapping",
    "trace_network_geometry",
    "EnergyModel",
    "EnergyBreakdown",
    "EnergyCalibrator",
    "LatencyModel",
    "AreaModel",
    "AreaConstants",
    "SigmaEModuleModel",
    "IMCChip",
    "apply_device_variation",
    "perturbed_state_dict",
    "with_device_variation",
    "format_table",
    "format_breakdown",
    "format_comparison_rows",
]
