"""The assembled IMC chip: mapping + energy + latency + sigma-E module.

:class:`IMCChip` is the object the benchmarks hand to the DT-SNN accounting
layer: it implements the :class:`repro.core.accounting.InferenceCostModel`
protocol (``energy(T)`` / ``latency(T)``), includes the per-timestep sigma-E
exit-check overhead in both, and exposes the diagnostic breakdowns behind
Fig. 1(A)/(B) and the Sec. III-B overhead claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..snn.network import SpikingNetwork
from .area import AreaModel
from .config import HardwareConfig
from .energy import EnergyCalibrator, EnergyModel
from .latency import LatencyModel
from .mapping import ChipMapping
from .entropy_module import SigmaEModuleModel

__all__ = ["IMCChip"]


@dataclass
class IMCChip:
    """A spiking network mapped onto the Table-I IMC architecture."""

    mapping: ChipMapping
    config: HardwareConfig
    num_classes: int = 10
    include_exit_checks: bool = True
    pipelined: bool = False

    def __post_init__(self):
        self.config = self.config.validate()
        self.energy_model = EnergyModel(self.mapping, self.config)
        self.latency_model = LatencyModel(self.mapping, self.config, pipelined=self.pipelined)
        self.sigma_e = SigmaEModuleModel(self.config, num_classes=self.num_classes)
        self.area_model = AreaModel(self.mapping, self.config)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_network(
        cls,
        model: SpikingNetwork,
        sample_input: np.ndarray,
        num_classes: int,
        config: Optional[HardwareConfig] = None,
        calibrate: bool = True,
        trace_timesteps: int = 2,
        include_exit_checks: bool = True,
        pipelined: bool = False,
    ) -> "IMCChip":
        """Map ``model`` onto the chip, optionally calibrating energy constants.

        ``calibrate=True`` reproduces the paper's reference measurements
        (Fig. 1(A) component shares and the 40/60 static/dynamic split of
        Fig. 1(B)) for this network, as described in DESIGN.md §7.
        """
        config = (config or HardwareConfig.paper_default()).validate()
        mapping = ChipMapping.from_network(model, sample_input, config, timesteps=trace_timesteps)
        if calibrate:
            config = EnergyCalibrator().calibrate(mapping, config)
            mapping.config = config
        return cls(
            mapping=mapping,
            config=config,
            num_classes=num_classes,
            include_exit_checks=include_exit_checks,
            pipelined=pipelined,
        )

    # ------------------------------------------------------------------ #
    # InferenceCostModel protocol
    # ------------------------------------------------------------------ #
    def energy(self, timesteps: int) -> float:
        """Energy (pJ) of one inference that executes ``timesteps`` timesteps."""
        base = self.energy_model.energy(timesteps)
        if self.include_exit_checks:
            base += timesteps * self.sigma_e.energy_per_check()
        return base

    def latency(self, timesteps: int) -> float:
        """Latency (ns) of one inference that executes ``timesteps`` timesteps."""
        return self.latency_model.latency(timesteps, include_exit_checks=self.include_exit_checks)

    def edp(self, timesteps: int) -> float:
        """Energy-delay product (pJ * ns)."""
        return self.energy(timesteps) * self.latency(timesteps)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def energy_breakdown_shares(self) -> Dict[str, float]:
        """Per-timestep component shares (Fig. 1(A))."""
        return self.energy_model.per_timestep_breakdown().shares()

    def normalized_energy_curve(self, max_timesteps: int = 8) -> Dict[int, float]:
        """Energy vs timesteps normalized to T=1 (Fig. 1(B), left axis)."""
        baseline = self.energy(1)
        return {t: self.energy(t) / baseline for t in range(1, max_timesteps + 1)}

    def normalized_latency_curve(self, max_timesteps: int = 8) -> Dict[int, float]:
        """Latency vs timesteps normalized to T=1 (Fig. 1(B), right axis)."""
        baseline = self.latency(1)
        return {t: self.latency(t) / baseline for t in range(1, max_timesteps + 1)}

    def sigma_e_overhead(self) -> float:
        """Energy of one exit check relative to one timestep of inference."""
        return self.sigma_e.relative_overhead(self.energy_model.per_timestep_energy())

    def area_breakdown(self) -> Dict[str, float]:
        return self.area_model.breakdown()

    def summary(self) -> Dict[str, float]:
        """Headline chip numbers for reports and tests."""
        return {
            "total_crossbars": float(self.mapping.total_crossbars),
            "total_tiles": float(self.mapping.total_tiles),
            "per_timestep_energy_pj": self.energy_model.per_timestep_energy(),
            "static_energy_pj": self.energy_model.static_energy(),
            "per_timestep_latency_ns": self.latency_model.per_timestep_latency(),
            "sigma_e_energy_pj": self.sigma_e.energy_per_check(),
            "sigma_e_overhead": self.sigma_e_overhead(),
            "static_fraction": self.energy_model.static_fraction(),
        }
