"""Analytical energy model of the IMC chip.

Energy for one inference with ``T`` timesteps decomposes as

    E(T) = E_static + T * E_dynamic

where ``E_dynamic`` is the per-timestep energy (crossbar + ADC reads, digital
peripherals, H-Tree, NoC, LIF module — the Fig. 1(A) components) and
``E_static`` is the per-inference cost that does not repeat with timesteps
(loading the input into the global buffer, control setup).  The paper's
Fig. 1(B) measurement — normalized energy 1.0, 1.4, 2.0, 2.6, ... for
T = 1..8 — corresponds to ``E_static ≈ 0.4`` and ``E_dynamic ≈ 0.6`` of the
one-timestep total, and that ratio together with the Fig. 1(A) component
shares is what :class:`EnergyCalibrator` reproduces for a reference mapping.

All energies are reported in picojoules (the unit of the per-event constants
in :class:`~repro.imc.config.EnergyConstants`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import COMPONENT_FIELDS, ENERGY_BREAKDOWN_TARGETS, EnergyConstants, HardwareConfig
from .mapping import ChipMapping

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyCalibrator"]


@dataclass
class EnergyBreakdown:
    """Per-component energy of one timestep (picojoules)."""

    crossbar_adc: float
    digital_peripherals: float
    htree: float
    noc: float
    lif: float

    def total(self) -> float:
        return self.crossbar_adc + self.digital_peripherals + self.htree + self.noc + self.lif

    def shares(self) -> Dict[str, float]:
        total = self.total()
        if total <= 0:
            raise ValueError("energy breakdown total must be positive")
        return {
            "crossbar_adc": self.crossbar_adc / total,
            "digital_peripherals": self.digital_peripherals / total,
            "htree": self.htree / total,
            "noc": self.noc / total,
            "lif": self.lif / total,
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "crossbar_adc": self.crossbar_adc,
            "digital_peripherals": self.digital_peripherals,
            "htree": self.htree,
            "noc": self.noc,
            "lif": self.lif,
            "total": self.total(),
        }


class EnergyModel:
    """Prices the event counts of a :class:`ChipMapping`."""

    def __init__(self, mapping: ChipMapping, config: Optional[HardwareConfig] = None):
        self.mapping = mapping
        self.config = (config or mapping.config).validate()

    # ------------------------------------------------------------------ #
    def per_timestep_breakdown(self) -> EnergyBreakdown:
        """Dynamic energy of one timestep, split by Fig. 1(A) component."""
        events = self.mapping.event_totals()
        constants = self.config.energy
        size = self.config.crossbar_size

        crossbar_adc = (
            events["row_activations"] * constants.row_activation_pj
            + events["row_activations"] * size * constants.cell_read_pj
            + events["adc_conversions"] * constants.adc_conversion_pj
        )
        digital = (
            events["crossbar_reads"] * constants.switch_matrix_pj
            + events["buffer_accesses"] * constants.buffer_access_pj
            + events["accumulator_ops"] * constants.accumulator_op_pj
            + events["shift_add_ops"] * constants.shift_add_pj
        )
        htree = events["htree_transfers"] * constants.htree_transfer_pj
        noc = events["noc_transfers"] * constants.noc_transfer_pj
        lif = events["lif_updates"] * constants.lif_update_pj
        return EnergyBreakdown(
            crossbar_adc=crossbar_adc,
            digital_peripherals=digital,
            htree=htree,
            noc=noc,
            lif=lif,
        )

    def per_timestep_energy(self) -> float:
        """Total dynamic energy of one timestep (pJ)."""
        return self.per_timestep_breakdown().total()

    def static_energy(self) -> float:
        """Per-inference energy independent of the number of timesteps (pJ)."""
        constants = self.config.energy
        return (
            self.mapping.input_pixels * constants.input_load_pj_per_pixel
            + constants.control_setup_pj
        )

    def energy(self, timesteps: int) -> float:
        """Total energy of one inference with ``timesteps`` timesteps (pJ)."""
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        return self.static_energy() + timesteps * self.per_timestep_energy()

    def normalized_energy_curve(self, max_timesteps: int = 8) -> Dict[int, float]:
        """Energy at T = 1..max normalized to T = 1 (the Fig. 1(B) series)."""
        baseline = self.energy(1)
        return {t: self.energy(t) / baseline for t in range(1, max_timesteps + 1)}

    def static_fraction(self) -> float:
        """Share of the 1-timestep inference energy that is static."""
        return self.static_energy() / self.energy(1)


class EnergyCalibrator:
    """Rescales the per-event constants to match the paper's measurements.

    Two calibrations are applied for a *reference* mapping (the spiking
    VGG-16 used in Fig. 1):

    1. Component shares — each Fig. 1(A) component's constants are scaled so
       its share of the per-timestep dynamic energy equals the target
       (digital peripherals 45%, crossbar+ADC 25%, H-Tree 17%, NoC 9%,
       LIF 1%).
    2. Static/dynamic split — the per-inference static constants are scaled
       so the static energy is ``static_fraction`` of the one-timestep total
       (0.4, implied by Fig. 1(B)).

    The calibrated constants are then reused, unchanged, for every other
    network/dataset in the evaluation — mirroring how the paper calibrates
    NeuroSim once for its technology node.
    """

    def __init__(
        self,
        targets: Optional[Dict[str, float]] = None,
        static_fraction: float = 0.4,
    ):
        self.targets = dict(targets or ENERGY_BREAKDOWN_TARGETS)
        if not 0.0 <= static_fraction < 1.0:
            raise ValueError("static_fraction must be in [0, 1)")
        total = sum(self.targets.values())
        if total <= 0:
            raise ValueError("calibration targets must sum to a positive value")
        self.targets = {key: value / total for key, value in self.targets.items()}
        self.static_fraction = static_fraction

    def calibrate(self, mapping: ChipMapping, config: Optional[HardwareConfig] = None) -> HardwareConfig:
        """Return a new config whose constants reproduce the targets on ``mapping``."""
        config = (config or mapping.config).validate()
        model = EnergyModel(mapping, config)
        breakdown = model.per_timestep_breakdown().as_dict()
        dynamic_total = breakdown["total"]

        factors: Dict[str, float] = {}
        for component, target_share in self.targets.items():
            if component not in COMPONENT_FIELDS:
                raise KeyError(f"unknown component {component!r}")
            current = breakdown[component]
            if current <= 0:
                raise ValueError(
                    f"component {component!r} has zero energy on the reference mapping; "
                    "cannot calibrate"
                )
            factors[component] = target_share * dynamic_total / current
        calibrated_energy = config.energy.scaled(factors)

        # After component scaling the dynamic total is unchanged (shares are a
        # partition of the same total), so scale the static constants to hit
        # the requested static fraction of the one-timestep energy:
        #   static = f/(1-f) * dynamic_total
        calibrated_config = config.with_energy(calibrated_energy)
        interim_model = EnergyModel(mapping, calibrated_config)
        desired_static = self.static_fraction / (1.0 - self.static_fraction) * (
            interim_model.per_timestep_energy()
        )
        current_static = interim_model.static_energy()
        if current_static <= 0:
            raise ValueError("static energy is zero; cannot calibrate static fraction")
        static_scale = desired_static / current_static
        final_energy = EnergyConstants(
            **{
                **calibrated_energy.__dict__,
                "input_load_pj_per_pixel": calibrated_energy.input_load_pj_per_pixel * static_scale,
                "control_setup_pj": calibrated_energy.control_setup_pj * static_scale,
            }
        )
        return config.with_energy(final_energy)
