"""Hardware configuration of the monolithic-tiled IMC chip (Table I).

:class:`HardwareConfig` collects every architectural parameter the paper
lists in Table I (crossbar size, crossbars per tile, device precision,
Ron/Roff, buffer sizes, supply/read voltages, LUT sizes) plus the per-event
energy and latency constants the analytical energy model multiplies against
event counts.  The default per-event constants are plausible 32 nm values;
:class:`repro.imc.energy.EnergyCalibrator` can rescale them so the
component-wise breakdown matches the paper's Fig. 1(A) for a reference
network, which is how the benchmark harness uses them (see DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..utils.validation import check_non_negative, check_positive

__all__ = ["EnergyConstants", "LatencyConstants", "HardwareConfig", "ENERGY_BREAKDOWN_TARGETS"]


# Component-wise energy share reported in Fig. 1(A) for CIFAR10 VGG-16 on the
# 64x64 4-bit RRAM chip.  Used as the calibration target and by tests.
ENERGY_BREAKDOWN_TARGETS: Dict[str, float] = {
    "crossbar_adc": 0.25,
    "digital_peripherals": 0.45,
    "htree": 0.17,
    "noc": 0.09,
    "lif": 0.01,
    # The remaining ~3% in the paper's pie chart is buffer leakage folded into
    # digital peripherals here; shares are renormalized when calibrating.
}


@dataclass
class EnergyConstants:
    """Per-event dynamic energies in picojoules.

    Every architectural event the simulator counts is priced by one of these
    constants.  They are grouped by the Fig. 1(A) component they belong to so
    the calibrator can rescale a whole component at once.
    """

    # -- crossbar + ADC ------------------------------------------------- #
    row_activation_pj: float = 0.08      # driving one wordline for one read
    cell_read_pj: float = 0.002          # per bitcell sensed on an active row
    adc_conversion_pj: float = 1.6       # one ADC conversion (per column read)

    # -- digital peripherals (switch matrix, buffers, accumulators, S&A) - #
    switch_matrix_pj: float = 0.35       # per crossbar read operation
    buffer_access_pj: float = 0.45       # per word read/written from PE/tile buffer
    accumulator_op_pj: float = 0.25      # per partial-sum addition
    shift_add_pj: float = 0.15           # per shift-and-add combining bit slices

    # -- interconnect ---------------------------------------------------- #
    htree_transfer_pj: float = 0.9       # per word moved over the intra-tile H-tree
    noc_transfer_pj: float = 1.8         # per word moved over the inter-tile NoC

    # -- LIF module ------------------------------------------------------ #
    lif_update_pj: float = 0.05          # one membrane update + threshold compare

    # -- sigma-E module (softmax + entropy + compare; Sec. III-B) -------- #
    lut_lookup_pj: float = 0.4           # one LUT read (sigma or log sigma)
    fifo_access_pj: float = 0.1          # one FIFO push/pop
    multiplier_pj: float = 0.6           # one multiply in the entropy MAC
    comparator_pj: float = 0.05          # threshold comparison

    # -- per-inference static cost (independent of timestep count) ------- #
    input_load_pj_per_pixel: float = 4.0     # loading an input pixel into the GB
    control_setup_pj: float = 20000.0        # global control / sequencing setup

    def scaled(self, factors: Dict[str, float]) -> "EnergyConstants":
        """Return a copy with component groups scaled by ``factors``.

        ``factors`` keys follow the Fig. 1(A) component names; see
        :data:`COMPONENT_FIELDS` for the grouping.
        """
        updates: Dict[str, float] = {}
        for component, scale in factors.items():
            check_non_negative(f"scale[{component}]", scale)
            for field_name in COMPONENT_FIELDS.get(component, ()):
                updates[field_name] = getattr(self, field_name) * scale
        return replace(self, **updates)


# Mapping from Fig. 1(A) component names to the EnergyConstants fields that
# belong to them (used by the calibrator and by the breakdown report).
COMPONENT_FIELDS: Dict[str, tuple] = {
    "crossbar_adc": ("row_activation_pj", "cell_read_pj", "adc_conversion_pj"),
    "digital_peripherals": (
        "switch_matrix_pj",
        "buffer_access_pj",
        "accumulator_op_pj",
        "shift_add_pj",
    ),
    "htree": ("htree_transfer_pj",),
    "noc": ("noc_transfer_pj",),
    "lif": ("lif_update_pj",),
}


@dataclass
class LatencyConstants:
    """Per-event latencies in nanoseconds."""

    crossbar_read_ns: float = 40.0     # one analog read of a crossbar (all rows settled)
    adc_conversion_ns: float = 5.0     # one ADC conversion (columns are muxed)
    accumulation_ns: float = 1.0       # one partial-sum addition
    htree_transfer_ns: float = 2.0     # one word over the H-tree
    noc_hop_ns: float = 4.0            # one word over the NoC
    lif_update_ns: float = 1.0         # one LIF membrane update
    sigma_e_check_ns: float = 50.0     # one sigma-E entropy evaluation
    input_load_ns: float = 0.0         # overlapped with compute (paper: latency ∝ T)


@dataclass
class HardwareConfig:
    """Full chip configuration (Table I parameters + analytical-model constants)."""

    # ---- Table I ------------------------------------------------------- #
    technology_nm: int = 32
    crossbar_size: int = 64
    crossbars_per_tile: int = 64
    crossbars_per_pe: int = 16
    device_bits: int = 4
    weight_bits: int = 8
    r_on_ohm: float = 20e3
    r_off_on_ratio: float = 10.0
    device_variation_sigma: float = 0.20
    global_buffer_kb: float = 20.0
    tile_buffer_kb: float = 10.0
    pe_buffer_kb: float = 5.0
    vdd: float = 0.9
    v_read: float = 0.1
    sigma_lut_kb: float = 3.0
    entropy_lut_kb: float = 3.0

    # ---- activation / ADC precision ------------------------------------ #
    input_bits: int = 1                 # SNN inputs are binary spikes
    adc_bits: int = 4
    adc_share_columns: int = 8          # columns multiplexed per ADC

    # ---- analytical-model constants ------------------------------------ #
    energy: EnergyConstants = field(default_factory=EnergyConstants)
    latency: LatencyConstants = field(default_factory=LatencyConstants)

    def validate(self) -> "HardwareConfig":
        check_positive("crossbar_size", self.crossbar_size)
        check_positive("crossbars_per_tile", self.crossbars_per_tile)
        check_positive("crossbars_per_pe", self.crossbars_per_pe)
        if self.crossbars_per_tile % self.crossbars_per_pe:
            raise ValueError("crossbars_per_tile must be a multiple of crossbars_per_pe")
        check_positive("device_bits", self.device_bits)
        check_positive("weight_bits", self.weight_bits)
        if self.weight_bits % self.device_bits:
            raise ValueError("weight_bits must be a multiple of device_bits")
        check_positive("r_on_ohm", self.r_on_ohm)
        if self.r_off_on_ratio <= 1.0:
            raise ValueError("r_off_on_ratio must exceed 1")
        check_non_negative("device_variation_sigma", self.device_variation_sigma)
        check_positive("adc_share_columns", self.adc_share_columns)
        return self

    # ------------------------------------------------------------------ #
    @property
    def cells_per_weight(self) -> int:
        """Number of RRAM cells holding one weight (bit slicing)."""
        return self.weight_bits // self.device_bits

    @property
    def pes_per_tile(self) -> int:
        return self.crossbars_per_tile // self.crossbars_per_pe

    @property
    def conductance_levels(self) -> int:
        """Distinct conductance states one device can store."""
        return 2**self.device_bits

    @property
    def g_on(self) -> float:
        """Maximum (on-state) conductance in siemens."""
        return 1.0 / self.r_on_ohm

    @property
    def g_off(self) -> float:
        """Minimum (off-state) conductance in siemens."""
        return 1.0 / (self.r_on_ohm * self.r_off_on_ratio)

    def with_energy(self, energy: EnergyConstants) -> "HardwareConfig":
        """Return a copy of the config using different energy constants."""
        return replace(self, energy=energy)

    @classmethod
    def paper_default(cls) -> "HardwareConfig":
        """The Table I configuration used throughout the paper's evaluation."""
        return cls().validate()
