"""RRAM device model: weight-to-conductance mapping, quantization, variation.

Weights are stored on 4-bit RRAM devices (Table I): each 8-bit weight is
bit-sliced across ``weight_bits / device_bits`` cells and positive/negative
values use a differential pair of columns (G+ and G-), the standard
NeuroSim-style mapping.  The same model provides the 20% conductance
variation used for the non-ideal accuracy study (Fig. 6B): quantize the
weight to conductance levels, perturb each device multiplicatively, and map
back to an effective weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..utils.rng import spawn_rng
from .config import HardwareConfig

__all__ = ["RRAMDeviceModel"]


@dataclass
class RRAMDeviceModel:
    """Quantization and variation behaviour of one crossbar's worth of devices."""

    config: HardwareConfig

    # ------------------------------------------------------------------ #
    # Quantization
    # ------------------------------------------------------------------ #
    def quantize_weights(self, weights: np.ndarray, max_abs: Optional[float] = None) -> np.ndarray:
        """Quantize weights to the programmable conductance resolution.

        The full weight (before bit slicing) has ``weight_bits`` of precision
        over the symmetric range ``[-max_abs, +max_abs]``; this returns the
        dequantized value actually representable on the devices.
        """
        weights = np.asarray(weights, dtype=np.float64)  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        if max_abs is None:
            max_abs = float(np.max(np.abs(weights))) or 1.0
        levels = 2 ** (self.config.weight_bits - 1) - 1
        step = max_abs / levels
        quantized = np.clip(np.round(weights / step), -levels, levels)
        return (quantized * step).astype(np.float32)

    # ------------------------------------------------------------------ #
    # Conductance mapping
    # ------------------------------------------------------------------ #
    def weights_to_conductances(
        self, weights: np.ndarray, max_abs: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Map signed weights onto differential conductance pairs (G+, G-).

        Positive weights program the G+ device between ``g_off`` and ``g_on``
        proportionally to magnitude (G- stays at ``g_off``) and vice versa.
        Returns ``(g_plus, g_minus, scale)`` where ``scale`` converts a
        differential conductance back to weight units:
        ``weight = (g_plus - g_minus) * scale``.
        """
        weights = np.asarray(weights, dtype=np.float64)  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        if max_abs is None:
            max_abs = float(np.max(np.abs(weights))) or 1.0
        g_on, g_off = self.config.g_on, self.config.g_off
        g_range = g_on - g_off
        magnitude = np.clip(np.abs(weights) / max_abs, 0.0, 1.0)
        g_plus = np.where(weights >= 0, g_off + magnitude * g_range, g_off)
        g_minus = np.where(weights < 0, g_off + magnitude * g_range, g_off)
        scale = max_abs / g_range
        return g_plus, g_minus, scale

    def conductances_to_weights(
        self, g_plus: np.ndarray, g_minus: np.ndarray, scale: float
    ) -> np.ndarray:
        """Inverse of :meth:`weights_to_conductances` (up to quantization)."""
        return ((np.asarray(g_plus) - np.asarray(g_minus)) * scale).astype(np.float32)

    def quantize_conductances(self, conductances: np.ndarray) -> np.ndarray:
        """Snap conductances to the ``2**device_bits`` programmable levels."""
        g_on, g_off = self.config.g_on, self.config.g_off
        levels = self.config.conductance_levels - 1
        normalized = np.clip((np.asarray(conductances) - g_off) / (g_on - g_off), 0.0, 1.0)
        return g_off + np.round(normalized * levels) / levels * (g_on - g_off)

    # ------------------------------------------------------------------ #
    # Device-to-device variation (Fig. 6B)
    # ------------------------------------------------------------------ #
    def apply_variation(
        self,
        conductances: np.ndarray,
        sigma: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Multiplicative Gaussian conductance variation (sigma/mu from Table I)."""
        sigma = self.config.device_variation_sigma if sigma is None else sigma
        if sigma < 0:
            raise ValueError("variation sigma must be non-negative")
        if sigma == 0:
            return np.asarray(conductances, dtype=np.float64)  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        rng = rng or spawn_rng()
        noise = rng.normal(1.0, sigma, size=np.shape(conductances))
        # A device cannot have negative conductance; clip at a tenth of g_off.
        return np.maximum(np.asarray(conductances) * noise, 0.1 * self.config.g_off)

    def perturb_weights(
        self,
        weights: np.ndarray,
        sigma: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        quantize: bool = True,
    ) -> np.ndarray:
        """End-to-end non-ideality: quantize, map to devices, perturb, map back.

        This is the "adding noise to the weights post-training" procedure the
        paper uses to simulate 20% conductance variation.
        """
        weights = np.asarray(weights, dtype=np.float64)  # dtype-ok: IMC chip-physics model runs float64 by convention, off the inference path
        max_abs = float(np.max(np.abs(weights))) or 1.0
        source = self.quantize_weights(weights, max_abs) if quantize else weights
        g_plus, g_minus, scale = self.weights_to_conductances(source, max_abs)
        if quantize:
            g_plus = self.quantize_conductances(g_plus)
            g_minus = self.quantize_conductances(g_minus)
        rng = rng or spawn_rng()
        g_plus = self.apply_variation(g_plus, sigma, rng)
        g_minus = self.apply_variation(g_minus, sigma, rng)
        return self.conductances_to_weights(g_plus, g_minus, scale)
