"""Analytical latency model of the IMC chip.

The paper processes timesteps **sequentially without pipelining** (Sec. III-B)
so that dynamic-timestep inference can terminate cleanly after any timestep;
as a consequence latency is proportional to the number of timesteps executed
(Fig. 1(B): 1x ... 8x for T = 1..8).  The per-timestep latency is dominated by
the serial sequence of layers; within a layer, crossbars operate in parallel
across the weight matrix but output positions are processed serially through
the shared ADCs.

A pipelined mode is included (``pipelined=True``) for the ablation discussed
in DESIGN.md: it overlaps consecutive timesteps across layers, which is
faster for static SNNs but would have to flush the pipeline on a dynamic
exit — exactly the overhead the paper's design choice avoids.
"""

from __future__ import annotations

from typing import Dict, Optional

from .config import HardwareConfig
from .mapping import ChipMapping, LayerMapping

__all__ = ["LatencyModel"]


class LatencyModel:
    """Prices the per-timestep latency of a :class:`ChipMapping` (nanoseconds)."""

    def __init__(
        self,
        mapping: ChipMapping,
        config: Optional[HardwareConfig] = None,
        pipelined: bool = False,
    ):
        self.mapping = mapping
        self.config = (config or mapping.config).validate()
        self.pipelined = pipelined

    # ------------------------------------------------------------------ #
    def layer_latency(self, layer: LayerMapping) -> float:
        """Latency of one layer for one timestep (ns)."""
        constants = self.config.latency
        positions = float(layer.geometry.output_positions)
        # Each output position: one analog read (rows settle in parallel),
        # then the used columns are converted through the shared ADCs.
        physical_cols = layer.geometry.weight_cols * self.config.cells_per_weight
        adc_serial = (physical_cols / self.config.adc_share_columns) * constants.adc_conversion_ns
        read_time = constants.crossbar_read_ns + adc_serial
        accumulate = max(layer.row_splits - 1, 0) * constants.accumulation_ns
        transfer = (
            constants.htree_transfer_ns
            + (constants.noc_hop_ns if layer.num_tiles >= 1 else 0.0)
        )
        lif = constants.lif_update_ns
        return positions * (read_time + accumulate + transfer + lif)

    def per_timestep_latency(self) -> float:
        """Latency of one timestep: the serial sum over layers (ns)."""
        layer_latencies = [self.layer_latency(layer) for layer in self.mapping.layers]
        if self.pipelined:
            # A perfectly balanced pipeline is limited by its slowest stage.
            return max(layer_latencies)
        return sum(layer_latencies)

    def sigma_e_latency(self) -> float:
        """Latency of one entropy-module exit check (ns)."""
        return self.config.latency.sigma_e_check_ns

    def latency(self, timesteps: int, include_exit_checks: bool = True) -> float:
        """Latency of one inference with ``timesteps`` timesteps (ns)."""
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        base = timesteps * self.per_timestep_latency() + self.config.latency.input_load_ns
        if include_exit_checks:
            base += timesteps * self.sigma_e_latency()
        if self.pipelined:
            # Pipelining overlaps timesteps but pays a fill/drain penalty of one
            # pipeline depth (the number of layers) when inference terminates.
            fill_drain = self.per_timestep_latency() * max(len(self.mapping.layers) - 1, 0)
            base += fill_drain
        return base

    def normalized_latency_curve(self, max_timesteps: int = 8) -> Dict[int, float]:
        """Latency at T = 1..max normalized to T = 1 (the Fig. 1(B) series)."""
        baseline = self.latency(1)
        return {t: self.latency(t) / baseline for t in range(1, max_timesteps + 1)}
