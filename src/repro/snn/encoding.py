"""Input encoders turning images or event streams into per-timestep inputs.

The paper uses *direct encoding*: the analog image is fed to the first
convolutional block at every timestep and that block's LIF layer produces the
spike trains (``g_1(x)`` in Eq. 1).  A Poisson rate encoder and an
event-stream (DVS) encoder are also provided — the former as a classical
baseline, the latter to exercise the CIFAR10-DVS-style experiments where the
input itself varies over time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..utils.rng import spawn_rng
from ..utils.validation import check_positive

__all__ = ["DirectEncoder", "PoissonEncoder", "EventFrameEncoder", "build_encoder"]


class DirectEncoder:
    """Repeat the same analog input at every timestep (the paper's choice)."""

    name = "direct"
    # Deterministic encoders produce the same frame for a sample regardless of
    # batch composition, which is what lets dynamic inference compact batches
    # (and the serving engine splice slots) without changing any trajectory.
    deterministic = True
    # frame_cacheable marks encoders whose emitted frame bytes fully determine
    # the network's stateless stem output AND recur across requests (replayed
    # inputs), so the runtime may memoize stem results keyed on frame content
    # (repro.runtime.plan.StemCache).  Stochastic encoders must leave this
    # False: their frames never deterministically recur.
    frame_cacheable = True

    def __call__(self, x: np.ndarray, timestep: int) -> Tensor:
        return Tensor(np.asarray(x, dtype=np.float32))

    def __repr__(self) -> str:  # pragma: no cover
        return "DirectEncoder()"


class PoissonEncoder:
    """Bernoulli/Poisson rate coding: pixel intensity = firing probability.

    Intensities are expected in ``[0, 1]``; values outside are clipped.  Each
    timestep draws an independent binary frame, so temporal averaging over
    more timesteps recovers the analog image with decreasing variance — the
    classical reason accuracy grows with T.
    """

    name = "poisson"
    deterministic = False  # draws from a shared RNG: batch composition matters
    frame_cacheable = False  # fresh random frame every call: nothing recurs

    def __init__(self, gain: float = 1.0, seed: Optional[int] = None):
        check_positive("gain", gain)
        self.gain = gain
        self._rng = spawn_rng(seed)

    def __call__(self, x: np.ndarray, timestep: int) -> Tensor:
        probabilities = np.clip(np.asarray(x, dtype=np.float32) * self.gain, 0.0, 1.0)
        frame = (self._rng.random(probabilities.shape) < probabilities).astype(np.float32)
        return Tensor(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PoissonEncoder(gain={self.gain})"


class EventFrameEncoder:
    """Select the ``t``-th frame of an event-stream tensor ``(N, T, C, H, W)``.

    Used for the CIFAR10-DVS-style synthetic dataset where every timestep has
    its own accumulated event frame.  If the requested timestep exceeds the
    number of recorded frames the last frame is repeated, matching the common
    practice of padding short event recordings.
    """

    name = "event"
    deterministic = True
    # Frames vary per timestep (so the aligned direct-encoding stem cache
    # cannot apply) but are pure slices of the request payload: a replayed
    # DVS clip re-emits byte-identical frames, which the serving engine
    # exploits through the content-keyed stem memo.
    frame_cacheable = True

    def __call__(self, x: np.ndarray, timestep: int) -> Tensor:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 5:
            raise ValueError(
                f"EventFrameEncoder expects (N, T, C, H, W) input, got shape {x.shape}"
            )
        return Tensor(x[:, self.frame_index(x.shape[1], timestep)])

    def frame_index(self, num_frames: int, timestep: int) -> int:
        """Index of the recorded frame emitted at ``timestep``.

        Exposes the padding rule (short recordings repeat their last frame)
        so the serving engine can intern stem-memo keys per request: a
        ``(clip digest, frame_index)`` pair fully determines the emitted
        frame bytes, and padded tail timesteps collapse onto one key exactly
        as their identical frame bytes used to.
        """
        return min(timestep, num_frames - 1)

    def __repr__(self) -> str:  # pragma: no cover
        return "EventFrameEncoder()"


def build_encoder(name: str, **kwargs):
    """Instantiate an encoder by name (``direct``, ``poisson`` or ``event``)."""
    encoders = {
        "direct": DirectEncoder,
        "poisson": PoissonEncoder,
        "event": EventFrameEncoder,
    }
    key = name.lower()
    if key not in encoders:
        raise KeyError(f"unknown encoder {name!r}; available: {sorted(encoders)}")
    return encoders[key](**kwargs)
