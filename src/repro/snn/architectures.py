"""Spiking network architectures: VGG and ResNet families.

The paper evaluates spiking VGG-16 and ResNet-19.  The builders here follow
those topologies (conv -> normalization -> LIF blocks, average pooling between
stages, a final linear classifier averaged over timesteps) while exposing a
``width_multiplier`` and reduced presets so the same code runs at laptop scale
on the synthetic datasets used by the benchmark harness.

Every builder returns a :class:`~repro.snn.network.SpikingNetwork`, so the
DT-SNN engine, the trainer and the IMC mapper treat all architectures
uniformly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from ..autograd import Tensor, functional as F, is_grad_enabled
from ..nn import AvgPool2d, BatchNorm2d, Conv2d, Flatten, Identity, Linear, Sequential
from ..nn.module import Module
from ..utils.registry import Registry
from .encoding import DirectEncoder
from .folding import fold_candidate
from .neurons import LIFNeuron
from .network import SpikingNetwork
from .surrogate import SurrogateGradient, TriangularSurrogate
from .tdbn import TemporalBatchNorm2d

__all__ = [
    "ConvSpikeBlock",
    "SpikingResidualBlock",
    "spiking_vgg",
    "spiking_resnet",
    "build_architecture",
    "ARCHITECTURES",
    "VGG_PRESETS",
    "RESNET_PRESETS",
]

ARCHITECTURES = Registry("architecture")

# Stage configurations: integers are conv output channels, "M" is a 2x2
# average-pool.  The full vgg16 preset mirrors Simonyan & Zisserman; the small
# presets keep the stage structure but shrink depth/width for CPU training.
VGG_PRESETS: Dict[str, List[Union[int, str]]] = {
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512],
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512],
    "vgg9": [64, "M", 128, "M", 256, 256, "M", 512, 512],
    "vgg5": [64, "M", 128, "M", 256],
    "tiny": [16, "M", 32, "M"],
}

# (block counts per stage, stage widths). resnet19 follows Zheng et al. 2021.
RESNET_PRESETS: Dict[str, Dict[str, Sequence[int]]] = {
    "resnet19": {"blocks": (3, 3, 2), "widths": (128, 256, 512)},
    "resnet11": {"blocks": (2, 2, 1), "widths": (64, 128, 256)},
    "tiny": {"blocks": (1, 1), "widths": (16, 32)},
}


def _make_norm(norm: str, channels: int, v_threshold: float) -> Module:
    """Build the normalization layer placed between conv and LIF."""
    if norm == "bn":
        return BatchNorm2d(channels)
    if norm == "tdbn":
        return TemporalBatchNorm2d(channels, v_threshold=v_threshold)
    if norm == "none":
        return Identity()
    raise ValueError(f"unknown norm {norm!r}; expected 'bn', 'tdbn' or 'none'")


def _conv_norm_forward(conv: Module, norm: Module, folded, x, training: bool):
    """Run a conv→norm pair, using the folded single-GEMM form when frozen.

    Folding applies only during frozen inference — eval mode with gradient
    recording off — and only under the default float32 dtype policy; every
    other situation (training-mode statistics, surrogate-gradient backward,
    ``REPRO_FLOAT64=1`` legacy numerics) runs the unfused modules.  The
    compiled plan folds the *same* pairs from the *same* cache, so the
    define-by-run oracle and the runtime fast path stay bitwise-identical
    (see :mod:`repro.snn.folding` and docs/NUMERICS.md).

    Instance-level ``forward`` overrides (the IMC mapper temporarily wraps
    conv/linear forwards to trace geometry and input activity) also disable
    folding, so instrumentation observes the real per-layer dataflow.
    """
    instrumented = "forward" in conv.__dict__ or "forward" in norm.__dict__
    if (
        folded is not None
        and not training
        and not instrumented
        and not is_grad_enabled()
        and folded.active
    ):
        weight, bias = folded.arrays()
        return F.conv2d(
            x, Tensor(weight), Tensor(bias), stride=conv.stride, padding=conv.padding
        )
    return norm(conv(x))


class ConvSpikeBlock(Module):
    """``g_l`` of Eq. 1: convolution, optional normalization, LIF firing."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        norm: str = "bn",
        tau: float = 0.5,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateGradient] = None,
    ):
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride, padding=padding)
        self.norm = _make_norm(norm, out_channels, v_threshold)
        self.lif = LIFNeuron(tau=tau, v_threshold=v_threshold, surrogate=surrogate)
        # Eval-time conv+norm fold (shared with the compiled plan, which is
        # what keeps the two execution paths bitwise-identical after folding).
        self.folded = fold_candidate(self.conv, self.norm)

    def forward(self, x):
        return self.lif(_conv_norm_forward(self.conv, self.norm, self.folded, x, self.training))


class SpikingResidualBlock(Module):
    """Basic spiking residual block (two conv-norm stages, LIF after the sum).

    The residual sum is taken on the normalized membrane currents before the
    final LIF, following the tdBN-style spiking ResNet used by the paper's
    ResNet-19 baseline.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        norm: str = "bn",
        tau: float = 0.5,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateGradient] = None,
    ):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1)
        self.norm1 = _make_norm(norm, out_channels, v_threshold)
        self.lif1 = LIFNeuron(tau=tau, v_threshold=v_threshold, surrogate=surrogate)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1)
        self.norm2 = _make_norm(norm, out_channels, v_threshold)
        self.lif2 = LIFNeuron(tau=tau, v_threshold=v_threshold, surrogate=surrogate)
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = Conv2d(in_channels, out_channels, 1, stride=stride, padding=0)
            self.shortcut_norm = _make_norm(norm, out_channels, v_threshold)
            self._has_projection = True
        else:
            self.shortcut_conv = Identity()
            self.shortcut_norm = Identity()
            self._has_projection = False
        self.folded1 = fold_candidate(self.conv1, self.norm1)
        self.folded2 = fold_candidate(self.conv2, self.norm2)
        self.folded_shortcut = fold_candidate(self.shortcut_conv, self.shortcut_norm)

    def forward(self, x):
        out = self.lif1(_conv_norm_forward(self.conv1, self.norm1, self.folded1, x, self.training))
        out = _conv_norm_forward(self.conv2, self.norm2, self.folded2, out, self.training)
        shortcut = _conv_norm_forward(
            self.shortcut_conv, self.shortcut_norm, self.folded_shortcut, x, self.training
        )
        return self.lif2(out + shortcut)


def _classifier(in_features: int, num_classes: int, hidden: Optional[int] = None,
                tau: float = 0.5, v_threshold: float = 1.0,
                surrogate: Optional[SurrogateGradient] = None) -> Module:
    """Final classifier ``h``; optionally a hidden spiking linear stage."""
    if hidden is None:
        return Sequential(Flatten(), Linear(in_features, num_classes))
    return Sequential(
        Flatten(),
        Linear(in_features, hidden),
        LIFNeuron(tau=tau, v_threshold=v_threshold, surrogate=surrogate),
        Linear(hidden, num_classes),
    )


def _spatial_after_pools(input_size: int, num_pools: int) -> int:
    size = input_size
    for _ in range(num_pools):
        size = max(size // 2, 1)
    return size


@ARCHITECTURES.register("vgg")
def spiking_vgg(
    preset: str = "vgg16",
    num_classes: int = 10,
    in_channels: int = 3,
    input_size: int = 32,
    width_multiplier: float = 1.0,
    norm: str = "bn",
    tau: float = 0.5,
    v_threshold: float = 1.0,
    surrogate: Optional[SurrogateGradient] = None,
    default_timesteps: int = 4,
    encoder=None,
) -> SpikingNetwork:
    """Build a spiking VGG network.

    ``preset`` selects the stage layout (see :data:`VGG_PRESETS`);
    ``width_multiplier`` scales every stage width, which is how the benchmark
    harness shrinks VGG-16 to a CPU-trainable size without changing topology.
    """
    if preset not in VGG_PRESETS:
        raise KeyError(f"unknown VGG preset {preset!r}; available: {sorted(VGG_PRESETS)}")
    surrogate = surrogate or TriangularSurrogate()
    layers: List[Module] = []
    channels = in_channels
    num_pools = 0
    for item in VGG_PRESETS[preset]:
        if item == "M":
            layers.append(AvgPool2d(2))
            num_pools += 1
            continue
        out_channels = max(int(round(item * width_multiplier)), 4)
        layers.append(
            ConvSpikeBlock(
                channels,
                out_channels,
                norm=norm,
                tau=tau,
                v_threshold=v_threshold,
                surrogate=surrogate,
            )
        )
        channels = out_channels
    features = Sequential(*layers)
    spatial = _spatial_after_pools(input_size, num_pools)
    classifier = _classifier(channels * spatial * spatial, num_classes)
    return SpikingNetwork(
        features,
        classifier,
        default_timesteps=default_timesteps,
        encoder=encoder or DirectEncoder(),
        name=f"spiking-{preset}",
    )


@ARCHITECTURES.register("resnet")
def spiking_resnet(
    preset: str = "resnet19",
    num_classes: int = 10,
    in_channels: int = 3,
    input_size: int = 32,
    width_multiplier: float = 1.0,
    norm: str = "bn",
    tau: float = 0.5,
    v_threshold: float = 1.0,
    surrogate: Optional[SurrogateGradient] = None,
    default_timesteps: int = 4,
    encoder=None,
) -> SpikingNetwork:
    """Build a spiking ResNet (ResNet-19 by default, per the paper)."""
    if preset not in RESNET_PRESETS:
        raise KeyError(f"unknown ResNet preset {preset!r}; available: {sorted(RESNET_PRESETS)}")
    surrogate = surrogate or TriangularSurrogate()
    config = RESNET_PRESETS[preset]
    widths = [max(int(round(w * width_multiplier)), 4) for w in config["widths"]]
    blocks = list(config["blocks"])

    stem_channels = widths[0]
    layers: List[Module] = [
        ConvSpikeBlock(
            in_channels,
            stem_channels,
            norm=norm,
            tau=tau,
            v_threshold=v_threshold,
            surrogate=surrogate,
        )
    ]
    channels = stem_channels
    num_downsamples = 0
    for stage_index, (stage_blocks, stage_width) in enumerate(zip(blocks, widths)):
        for block_index in range(stage_blocks):
            stride = 2 if (block_index == 0 and stage_index > 0) else 1
            if stride == 2:
                num_downsamples += 1
            layers.append(
                SpikingResidualBlock(
                    channels,
                    stage_width,
                    stride=stride,
                    norm=norm,
                    tau=tau,
                    v_threshold=v_threshold,
                    surrogate=surrogate,
                )
            )
            channels = stage_width
    # Global average pooling to 1x1 keeps the classifier small regardless of
    # the input resolution.
    spatial = input_size
    for _ in range(num_downsamples):
        spatial = math.ceil(spatial / 2)
    layers.append(AvgPool2d(spatial))
    features = Sequential(*layers)
    classifier = _classifier(channels, num_classes)
    return SpikingNetwork(
        features,
        classifier,
        default_timesteps=default_timesteps,
        encoder=encoder or DirectEncoder(),
        name=f"spiking-{preset}",
    )


def build_architecture(family: str, **kwargs) -> SpikingNetwork:
    """Instantiate an architecture family (``vgg`` or ``resnet``) by name."""
    return ARCHITECTURES.create(family, **kwargs)
