"""Temporally-unrolled spiking network producing per-timestep logits.

:class:`SpikingNetwork` is the ``f_T(x)`` of Eq. 1: a stack of
conv/norm/LIF blocks followed by a linear classifier ``h``.  A forward pass
runs the same (stateful) blocks once per timestep and records the classifier
output of every timestep; the network prediction at horizon ``t`` is the
running mean of the first ``t`` outputs (Eq. 1 and Eq. 5).

The per-timestep outputs are exactly what both the DT-SNN inference engine
(entropy-based exit, Eq. 8) and the per-timestep training loss (Eq. 10)
consume, so this class is the single integration point between the spiking
substrate and the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn.module import Module
from .encoding import DirectEncoder
from .neurons import LIFNeuron

__all__ = ["TemporalOutput", "SpikingNetwork", "cumulative_mean_logits"]


def cumulative_mean_logits(per_timestep: Sequence[Tensor]) -> List[Tensor]:
    """Running mean of the classifier outputs: ``f_t(x) = (1/t) sum_{k<=t} o_k``.

    The returned tensors stay attached to the autograd graph, so they can be
    used directly in the Eq. 10 training loss.  The ``1/t`` reciprocal
    adopts the logits' float32 dtype (weak-scalar policy, docs/NUMERICS.md);
    :func:`repro.runtime.run_cumulative_logits` mirrors the same scalar so
    the fast path's accumulation is bitwise-identical.
    """
    cumulative: List[Tensor] = []
    running: Optional[Tensor] = None
    for index, logits in enumerate(per_timestep, start=1):
        running = logits if running is None else running + logits
        cumulative.append(running * (1.0 / index))
    return cumulative


@dataclass
class TemporalOutput:
    """Outputs of one multi-timestep forward pass."""

    per_timestep: List[Tensor] = field(default_factory=list)

    @property
    def num_timesteps(self) -> int:
        return len(self.per_timestep)

    def cumulative(self) -> List[Tensor]:
        """Running-mean logits ``f_t(x)`` for every horizon ``t``."""
        return cumulative_mean_logits(self.per_timestep)

    def final(self) -> Tensor:
        """The full-horizon prediction ``f_T(x)`` (Eq. 1)."""
        if not self.per_timestep:
            raise ValueError("TemporalOutput is empty")
        return self.cumulative()[-1]

    def cumulative_numpy(self) -> np.ndarray:
        """Running-mean logits as a ``(T, N, K)`` array (forward values only)."""
        return np.stack([logits.data for logits in self.cumulative()], axis=0)

    def per_timestep_numpy(self) -> np.ndarray:
        """Raw per-timestep logits as a ``(T, N, K)`` array."""
        return np.stack([logits.data for logits in self.per_timestep], axis=0)


class SpikingNetwork(Module):
    """Feature extractor + classifier evaluated over a configurable horizon.

    Parameters
    ----------
    features:
        Module mapping an encoded input frame to a spike feature map.  It is
        called once per timestep and is expected to contain the stateful LIF
        layers.
    classifier:
        Module mapping the (flattened) feature map to class logits.
    default_timesteps:
        Horizon ``T`` used when ``forward`` is called without an explicit
        ``timesteps`` argument (the paper uses 4 for static images and 10 for
        DVS data).
    encoder:
        Input encoder; defaults to the paper's direct encoding.
    """

    def __init__(
        self,
        features: Module,
        classifier: Module,
        default_timesteps: int = 4,
        encoder=None,
        name: str = "snn",
    ):
        super().__init__()
        if default_timesteps < 1:
            raise ValueError("default_timesteps must be >= 1")
        self.features = features
        self.classifier = classifier
        self.default_timesteps = default_timesteps
        self.encoder = encoder or DirectEncoder()
        self.model_name = name

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def lif_layers(self) -> List[LIFNeuron]:
        """All stateful spiking layers in forward order."""
        return [module for module in self.modules() if isinstance(module, LIFNeuron)]

    def reset_state(self) -> None:
        """Clear membrane potentials (between batches / samples)."""
        for layer in self.lif_layers():
            layer.reset_state()

    def compact_state(self, keep: np.ndarray) -> None:
        """Drop membrane rows of samples that left the batch (early exit).

        ``keep`` is a boolean mask or an index array over the current batch
        axis; the surviving rows keep their membrane trajectories so the
        remaining samples continue exactly as if the batch had never been
        wider (the per-sample dynamics are independent).
        """
        for layer in self.lif_layers():
            layer.compact_state_rows(keep)

    def extend_state(self, count: int) -> None:
        """Append ``count`` fresh rows to every membrane (newly admitted samples)."""
        for layer in self.lif_layers():
            layer.extend_state_rows(count)

    def reset_state_rows(self, rows: np.ndarray) -> None:
        """Reset the membrane of specific batch rows to a fresh state in place."""
        for layer in self.lif_layers():
            layer.reset_state_rows(rows)

    def reset_spike_statistics(self) -> None:
        """Clear the per-layer spike counters used by the IMC activity model."""
        for layer in self.lif_layers():
            layer.reset_statistics()

    def spike_statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-LIF-layer spike counts and rates accumulated since last reset."""
        stats: Dict[str, Dict[str, float]] = {}
        for name, module in self.named_modules():
            if isinstance(module, LIFNeuron):
                rate = (
                    module.total_spikes / module.total_neuron_updates
                    if module.total_neuron_updates
                    else 0.0
                )
                stats[name or "lif"] = {
                    "total_spikes": module.total_spikes,
                    "total_updates": module.total_neuron_updates,
                    "mean_rate": rate,
                }
        return stats

    def mean_spike_rate(self) -> float:
        """Network-wide mean firing rate since the last statistics reset."""
        total_spikes = 0.0
        total_updates = 0.0
        for layer in self.lif_layers():
            total_spikes += layer.total_spikes
            total_updates += layer.total_neuron_updates
        return total_spikes / total_updates if total_updates else 0.0

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, timesteps: Optional[int] = None) -> TemporalOutput:
        """Run ``timesteps`` sequential timesteps and return all logits."""
        horizon = self.default_timesteps if timesteps is None else timesteps
        if horizon < 1:
            raise ValueError("timesteps must be >= 1")
        self.reset_state()
        outputs: List[Tensor] = []
        for t in range(horizon):
            frame = self.encoder(x, t)
            spikes = self.features(frame)
            logits = self.classifier(spikes)
            outputs.append(logits)
        return TemporalOutput(per_timestep=outputs)

    def predict(self, x: np.ndarray, timesteps: Optional[int] = None) -> np.ndarray:
        """Inference-mode class predictions using the full horizon (static SNN)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(x, timesteps)
                logits = output.final().data
        finally:
            self.train(was_training)
        return np.argmax(logits, axis=-1)

    def extra_repr(self) -> str:
        return f"name={self.model_name}, T={self.default_timesteps}, encoder={self.encoder!r}"
