"""Spiking neuron models (leaky integrate-and-fire and integrate-and-fire).

The neuron layers are *stateful*: a network forward pass over ``T`` timesteps
calls the same layer ``T`` times and the layer carries its membrane potential
between calls (Eq. 2 of the paper).  Backpropagation-through-time falls out
naturally because the membrane potential is a :class:`~repro.autograd.Tensor`
that stays connected to the graph across timesteps.

Reset semantics
---------------
The paper uses a *hard* reset: after a spike the membrane potential is set to
zero, ``u <- u * (1 - s)``.  A *soft* (subtractive) reset ``u <- u - s*V_th``
is also provided because the IMC literature sometimes prefers it; tests cover
both.

Dtype: the scalar coefficients (``tau``, ``V_th``) adopt the membrane dtype
(weak-scalar float32; docs/NUMERICS.md), so the membrane trajectory stays
float32 across timesteps instead of silently promoting to float64 on the
first leak multiply as the seed implementation did.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..nn.module import Module
from ..utils.validation import check_in_choices, check_positive
from .surrogate import SurrogateGradient, TriangularSurrogate

__all__ = ["LIFNeuron", "IFNeuron"]


class LIFNeuron(Module):
    """Leaky integrate-and-fire layer.

    Parameters
    ----------
    tau:
        Leak factor in ``(0, 1]`` multiplying the previous membrane potential
        (Eq. 2).  ``tau = 1`` recovers the non-leaky IF neuron.
    v_threshold:
        Firing threshold ``V_th`` (Eq. 3).
    surrogate:
        Surrogate gradient used in the backward pass (defaults to the paper's
        triangular surrogate, Eq. 4).
    reset:
        ``"hard"`` (set to zero, the paper's choice) or ``"soft"``
        (subtract ``V_th``).
    detach_reset:
        When True the reset term is detached from the graph, a common trick
        that stabilizes surrogate-gradient training; the membrane integration
        path itself is never detached.
    """

    def __init__(
        self,
        tau: float = 0.5,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateGradient] = None,
        reset: str = "hard",
        detach_reset: bool = True,
    ):
        super().__init__()
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        check_positive("v_threshold", v_threshold)
        check_in_choices("reset", reset, ("hard", "soft"))
        self.tau = tau
        self.v_threshold = v_threshold
        self.surrogate = surrogate or TriangularSurrogate()
        self.reset = reset
        self.detach_reset = detach_reset
        self.membrane: Optional[Tensor] = None
        # Spike statistics for the IMC activity model (spikes per call).
        self.last_spike_rate: float = 0.0
        self.total_spikes: float = 0.0
        self.total_neuron_updates: float = 0.0

    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        """Clear the membrane potential (call between input samples/batches)."""
        self.membrane = None

    def reset_statistics(self) -> None:
        """Clear the accumulated spike counters used by the energy model."""
        self.last_spike_rate = 0.0
        self.total_spikes = 0.0
        self.total_neuron_updates = 0.0

    # ------------------------------------------------------------------ #
    # Per-row (per-sample) state surgery for batched early exit / serving.
    #
    # A zero membrane row is indistinguishable from a fresh state: with hard
    # reset the first integration gives ``0 * tau + current = current`` and
    # with soft reset the same, which is exactly what ``membrane is None``
    # produces.  That identity is what lets a serving batcher splice a new
    # request into a slot mid-horizon without touching the other rows.
    # ------------------------------------------------------------------ #
    def compact_state_rows(self, keep: np.ndarray) -> None:
        """Keep only the membrane rows selected by ``keep`` (mask or indices)."""
        if self.membrane is not None:
            self.membrane = Tensor(self.membrane.data[keep])

    def extend_state_rows(self, count: int) -> None:
        """Append ``count`` fresh (zero) membrane rows for newly admitted samples."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count and self.membrane is not None:
            data = self.membrane.data
            fresh = np.zeros((count,) + data.shape[1:], dtype=data.dtype)
            self.membrane = Tensor(np.concatenate([data, fresh], axis=0))

    def reset_state_rows(self, rows: np.ndarray) -> None:
        """Zero the membrane of the given batch rows (fresh state for those slots)."""
        if self.membrane is not None:
            self.membrane.data[rows] = 0.0

    # ------------------------------------------------------------------ #
    def _fire(self, membrane: Tensor) -> Tensor:
        """Binary spike with surrogate gradient."""
        v_th = self.v_threshold
        surrogate = self.surrogate

        def forward_fn(u: np.ndarray) -> np.ndarray:
            return (u > v_th).astype(u.dtype)

        def grad_fn(u: np.ndarray) -> np.ndarray:
            return surrogate(u, v_th)

        return membrane.custom_grad(forward_fn, grad_fn)

    def forward(self, current: Tensor) -> Tensor:
        """Integrate one timestep of input current and emit spikes."""
        if self.membrane is not None and self.membrane.shape != current.shape:
            # A new batch size or feature shape implies a new sample stream.
            self.membrane = None
        if self.membrane is None:
            membrane = current
        else:
            membrane = self.membrane * self.tau + current

        spikes = self._fire(membrane)

        reset_spikes = spikes.detach() if self.detach_reset else spikes
        if self.reset == "hard":
            membrane_after = membrane * (Tensor(np.ones_like(reset_spikes.data)) - reset_spikes)
        else:
            membrane_after = membrane - reset_spikes * self.v_threshold
        self.membrane = membrane_after

        # Bookkeeping for the hardware activity model (forward values only).
        spike_count = float(spikes.data.sum())
        self.last_spike_rate = spike_count / float(spikes.data.size)
        self.total_spikes += spike_count
        self.total_neuron_updates += float(spikes.data.size)
        return spikes

    def extra_repr(self) -> str:
        return (
            f"tau={self.tau}, v_th={self.v_threshold}, reset={self.reset}, "
            f"surrogate={self.surrogate.name}"
        )


class IFNeuron(LIFNeuron):
    """Integrate-and-fire neuron (no leak), a special case of LIF with tau=1."""

    def __init__(
        self,
        v_threshold: float = 1.0,
        surrogate: Optional[SurrogateGradient] = None,
        reset: str = "hard",
        detach_reset: bool = True,
    ):
        super().__init__(
            tau=1.0,
            v_threshold=v_threshold,
            surrogate=surrogate,
            reset=reset,
            detach_reset=detach_reset,
        )
