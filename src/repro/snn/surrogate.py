"""Surrogate gradient functions for the non-differentiable spike function.

The LIF firing function (Eq. 3 of the paper) is a Heaviside step of the
membrane potential: it has zero gradient almost everywhere, so training uses
a *surrogate* gradient in the backward pass while keeping the exact binary
spike in the forward pass (Eq. 4).  Several surrogates from the literature
are provided because the paper compares against Dspike [Li et al. 2021] and
tdBN [Zheng et al. 2021] which use different shapes; all of them share the
interface ``surrogate(u, v_th) -> d spike / d u``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..utils.registry import Registry

__all__ = [
    "SurrogateGradient",
    "RectangularSurrogate",
    "TriangularSurrogate",
    "DspikeSurrogate",
    "SigmoidSurrogate",
    "ArctanSurrogate",
    "SURROGATES",
    "build_surrogate",
]

SURROGATES = Registry("surrogate gradient")


class SurrogateGradient:
    """Base class: callable returning d(spike)/d(membrane potential)."""

    name = "base"

    def __call__(self, membrane: np.ndarray, v_threshold: float) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@SURROGATES.register("rectangular")
@dataclass
class RectangularSurrogate(SurrogateGradient):
    """Boxcar surrogate: 1/width inside a window of ``width`` around V_th.

    This is the classic STBP surrogate [Wu et al. 2018]; with ``width`` equal
    to ``V_th`` and unit height scaling it coincides with the paper's Eq. 4
    evaluated as a rectangle approximation.
    """

    width: float = 1.0
    name: str = "rectangular"

    def __call__(self, membrane: np.ndarray, v_threshold: float) -> np.ndarray:
        inside = np.abs(membrane - v_threshold) < (self.width / 2.0)
        return inside.astype(membrane.dtype) / self.width


@SURROGATES.register("triangular")
@dataclass
class TriangularSurrogate(SurrogateGradient):
    """Triangular surrogate, the paper's Eq. 4:
    ``d s / d u = max(0, V_th - |u - V_th|)`` (optionally scaled by gamma)."""

    gamma: float = 1.0
    name: str = "triangular"

    def __call__(self, membrane: np.ndarray, v_threshold: float) -> np.ndarray:
        return self.gamma * np.maximum(
            0.0, v_threshold - np.abs(membrane - v_threshold)
        ).astype(membrane.dtype)


@SURROGATES.register("dspike")
@dataclass
class DspikeSurrogate(SurrogateGradient):
    """Dspike surrogate [Li et al. NeurIPS 2021].

    The Dspike family uses a temperature-controlled hyperbolic-tangent shape
    whose derivative concentrates around the threshold as ``temperature``
    grows.  We implement the derivative of the Dspike forward relaxation
    normalized so its peak value is ``peak``.
    """

    temperature: float = 3.0
    peak: float = 1.0
    name: str = "dspike"

    def __call__(self, membrane: np.ndarray, v_threshold: float) -> np.ndarray:
        b = self.temperature
        x = np.clip(membrane - v_threshold, -1.0, 1.0)
        # d/dx [ tanh(b x) / (2 tanh(b)) + 1/2 ] = b sech^2(b x) / (2 tanh(b))
        sech2 = 1.0 / np.cosh(b * x) ** 2
        grad = b * sech2 / (2.0 * math.tanh(b))
        peak_value = b / (2.0 * math.tanh(b))
        return (self.peak * grad / peak_value).astype(membrane.dtype)


@SURROGATES.register("sigmoid")
@dataclass
class SigmoidSurrogate(SurrogateGradient):
    """Derivative of a scaled sigmoid centred at the threshold."""

    slope: float = 4.0
    name: str = "sigmoid"

    def __call__(self, membrane: np.ndarray, v_threshold: float) -> np.ndarray:
        z = 1.0 / (1.0 + np.exp(-self.slope * (membrane - v_threshold)))
        return (self.slope * z * (1.0 - z)).astype(membrane.dtype)


@SURROGATES.register("atan")
@dataclass
class ArctanSurrogate(SurrogateGradient):
    """Derivative of a scaled arctan relaxation (used by PLIF/SpikingJelly)."""

    alpha: float = 2.0
    name: str = "atan"

    def __call__(self, membrane: np.ndarray, v_threshold: float) -> np.ndarray:
        x = membrane - v_threshold
        return (self.alpha / 2.0 / (1.0 + (math.pi / 2.0 * self.alpha * x) ** 2)).astype(
            membrane.dtype
        )


def build_surrogate(name: str, **kwargs) -> SurrogateGradient:
    """Instantiate a surrogate gradient by registry name."""
    return SURROGATES.create(name, **kwargs)
