"""Eval-time folding of a frozen norm layer into the preceding convolution.

In eval mode a (temporal) batch-norm layer is an affine function of its
input with *constant* coefficients::

    y = (x - mean) / sqrt(var + eps) * gamma [* alpha * V_th] + beta
      = x * k + b,    k = gamma [* alpha * V_th] / sqrt(var + eps),
                      b = beta - mean * k

and because the per-channel scale ``k`` commutes with the convolution, the
whole conv→norm pair collapses into a single convolution with folded
weights ``W * k`` and bias ``b`` — the norm costs **zero** passes over the
activation instead of four elementwise sweeps.

Bitwise contract
----------------
Folding regroups float operations, so it moves every numeric artifact (this
is why it shipped in the same PR as the float32 dtype policy, the sanctioned
golden-moving change — see docs/NUMERICS.md).  What stays *bitwise* is the
path-vs-path equivalence: :class:`ConvSpikeBlock` / ``SpikingResidualBlock``
and the compiled plan's ``FoldedConvNormOp`` share the **same**
:class:`FoldedConvNorm` instance, so both execution paths consume literally
the same folded arrays and run the same im2col+GEMM+bias forward on them.

Folding engages only when the block runs frozen inference — eval mode, no
gradient recording — and never under ``REPRO_FLOAT64=1`` (the legacy-
numerics escape hatch reproduces the seed's unfused op sequence exactly).
Training-mode forwards, and eval forwards that record a graph (e.g.
fine-tuning with frozen statistics), keep the unfused conv→norm ops.

The folded arrays are cached and refreshed by identity: every source array
(conv weight/bias, norm gamma/beta, running mean/var) is replaced — never
mutated — by the optimizer, ``load_state_dict`` and ``update_buffer``, so an
``is``-comparison against the remembered sources detects staleness exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd.dtypes import float64_enabled, scalar_operand
from ..nn.layers import BatchNorm2d, Conv2d
from ..nn.module import Module
from .tdbn import TemporalBatchNorm2d

__all__ = ["FoldedConvNorm", "fold_candidate"]


def fold_candidate(conv: Module, norm: Module) -> Optional["FoldedConvNorm"]:
    """A :class:`FoldedConvNorm` for the pair, or ``None`` if not foldable."""
    if isinstance(conv, Conv2d) and isinstance(norm, (BatchNorm2d, TemporalBatchNorm2d)):
        return FoldedConvNorm(conv, norm)
    return None


class FoldedConvNorm:
    """Lazily-computed, identity-cached folded weights for a conv→norm pair."""

    def __init__(self, conv: Conv2d, norm: Module):
        self.conv = conv
        self.norm = norm
        self._weight: Optional[np.ndarray] = None
        self._bias: Optional[np.ndarray] = None
        self._sources: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    def _current_sources(self) -> tuple:
        conv, norm = self.conv, self.norm
        return (
            conv.weight.data,
            None if conv.bias is None else conv.bias.data,
            norm.weight.data,
            norm.bias.data,
            norm.running_mean,
            norm.running_var,
            float64_enabled(),
        )

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The folded ``(weight, bias)`` pair, recomputed only when a source
        array object (or the dtype-policy mode) changed."""
        sources = self._current_sources()
        if self._weight is None or any(
            a is not b for a, b in zip(sources, self._sources)
        ):
            norm = self.norm
            var = norm.running_var
            std = np.sqrt(var + scalar_operand(norm.eps, var.dtype))
            k = norm.weight.data / std
            if isinstance(norm, TemporalBatchNorm2d):
                k = k * scalar_operand(norm.alpha * norm.v_threshold, k.dtype)
            bias = norm.bias.data - norm.running_mean * k
            if sources[1] is not None:
                bias = bias + sources[1] * k
            self._weight = sources[0] * k.reshape(-1, 1, 1, 1)
            self._bias = bias
            self._sources = sources
        return self._weight, self._bias

    @property
    def active(self) -> bool:
        """Whether the dtype policy permits folding (always false under the
        ``REPRO_FLOAT64=1`` legacy mode, which reproduces the seed's unfused
        op sequence).  Callers add the eval / no-grad conditions themselves.
        """
        return not float64_enabled()
