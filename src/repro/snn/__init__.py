"""Spiking neural network substrate: neurons, surrogates, encoders, architectures."""

from .architectures import (
    ARCHITECTURES,
    ConvSpikeBlock,
    RESNET_PRESETS,
    SpikingResidualBlock,
    VGG_PRESETS,
    build_architecture,
    spiking_resnet,
    spiking_vgg,
)
from .encoding import DirectEncoder, EventFrameEncoder, PoissonEncoder, build_encoder
from .network import SpikingNetwork, TemporalOutput, cumulative_mean_logits
from .neurons import IFNeuron, LIFNeuron
from .surrogate import (
    SURROGATES,
    ArctanSurrogate,
    DspikeSurrogate,
    RectangularSurrogate,
    SigmoidSurrogate,
    SurrogateGradient,
    TriangularSurrogate,
    build_surrogate,
)
from .tdbn import TemporalBatchNorm2d

__all__ = [
    "LIFNeuron",
    "IFNeuron",
    "SurrogateGradient",
    "TriangularSurrogate",
    "RectangularSurrogate",
    "DspikeSurrogate",
    "SigmoidSurrogate",
    "ArctanSurrogate",
    "SURROGATES",
    "build_surrogate",
    "DirectEncoder",
    "PoissonEncoder",
    "EventFrameEncoder",
    "build_encoder",
    "SpikingNetwork",
    "TemporalOutput",
    "cumulative_mean_logits",
    "TemporalBatchNorm2d",
    "ConvSpikeBlock",
    "SpikingResidualBlock",
    "spiking_vgg",
    "spiking_resnet",
    "build_architecture",
    "ARCHITECTURES",
    "VGG_PRESETS",
    "RESNET_PRESETS",
]
