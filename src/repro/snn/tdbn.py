"""Threshold-dependent batch normalization (tdBN), Zheng et al. AAAI 2021.

tdBN is the normalization scheme used by the "tdBN" baseline in Fig. 6(A) of
the paper.  It differs from plain per-timestep BatchNorm2d in two ways:

1. Statistics are computed jointly over the *time and batch* dimensions, so
   the firing behaviour is balanced across the whole spike train rather than
   per timestep.
2. The normalized activation is scaled by ``alpha * V_th`` so that the
   pre-activation variance matches the firing threshold of the following LIF
   layer.

Because our networks call layers once per timestep, :class:`TemporalBatchNorm2d`
buffers the per-timestep activations statistics using running estimates that
incorporate every timestep of the current batch (each timestep's forward call
contributes to the same running statistics), and applies the joint batch
statistics when normalizing.  For the purposes of the Fig. 6(A) comparison
(accuracy as a function of T under different training recipes) this captures
the essential tdBN behaviour: threshold-scaled, time-aggregated normalization.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..nn import init
from ..nn.module import Module, Parameter
from ..utils.validation import check_positive

__all__ = ["TemporalBatchNorm2d"]


class TemporalBatchNorm2d(Module):
    """Threshold-dependent batch norm applied timestep-by-timestep.

    Parameters
    ----------
    num_features:
        Number of channels.
    v_threshold:
        The firing threshold of the LIF layer that follows; the output is
        scaled to ``alpha * v_threshold`` standard deviations.
    alpha:
        Additional scale factor (Zheng et al. use 1).
    """

    def __init__(
        self,
        num_features: int,
        v_threshold: float = 1.0,
        alpha: float = 1.0,
        eps: float = 1e-5,
        momentum: float = 0.1,
    ):
        super().__init__()
        check_positive("num_features", num_features)
        check_positive("v_threshold", v_threshold)
        check_positive("alpha", alpha)
        self.num_features = num_features
        self.v_threshold = v_threshold
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="gamma")
        self.bias = Parameter(init.zeros((num_features,)), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"TemporalBatchNorm2d expects (N, C, H, W), got {x.shape}")
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            self.update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1),
            )
            self.update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1),
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        # The scalars (eps, alpha * V_th) adopt the activation dtype via the
        # as_tensor chokepoint — weak-scalar float32 (docs/NUMERICS.md).
        normalized = (x - mean) / (var + self.eps).sqrt()
        scale = self.alpha * self.v_threshold
        gamma = self.weight.reshape(1, self.num_features, 1, 1)
        beta = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * gamma * scale + beta

    def extra_repr(self) -> str:
        return (
            f"features={self.num_features}, v_th={self.v_threshold}, alpha={self.alpha}, "
            f"eps={self.eps}"
        )
