"""General digital processor (GPU-like) latency/throughput model (Table III).

Section IV-B of the paper shows DT-SNN also accelerates inference on ordinary
digital hardware: batch-1 throughput on an RTX 2080Ti drops roughly linearly
with the number of timesteps, and DT-SNN recovers most of the one-timestep
throughput while keeping the four-timestep accuracy.

Without that GPU, the reproduction models batch-1 latency as

    latency(T) = t_fixed + T * (t_timestep + t_exit_check)

where ``t_fixed`` is the per-inference framework/launch overhead, ``t_timestep``
is one timestep of network execution, and ``t_exit_check`` is the (small)
softmax/entropy evaluation DT-SNN adds per timestep.  The default constants
are fitted to the paper's measured static-SNN column for the VGG-16 model
(199.3 / 121.8 / 85.2 / 64.3 images per second at T = 1..4), so the model
reproduces the *shape* of Table III; the same class also prices any other
calibration.  :class:`repro.processors.wallclock.WallClockProfiler` provides
the corresponding measured numbers for this repo's NumPy inference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.dynamic_inference import DynamicInferenceResult
from ..utils.validation import check_non_negative, check_positive

__all__ = ["DigitalProcessorModel", "fit_processor_model"]


@dataclass
class DigitalProcessorModel:
    """Batch-1 latency model of a general digital processor (milliseconds)."""

    fixed_ms: float = 1.55
    per_timestep_ms: float = 3.46
    exit_check_ms: float = 0.05

    def __post_init__(self):
        check_non_negative("fixed_ms", self.fixed_ms)
        check_positive("per_timestep_ms", self.per_timestep_ms)
        check_non_negative("exit_check_ms", self.exit_check_ms)

    # -- InferenceCostModel protocol (latency doubles as "energy" is unused) -- #
    def latency(self, timesteps: float, dynamic: bool = False) -> float:
        """Latency in milliseconds for one inference of ``timesteps`` timesteps."""
        if timesteps < 1:
            raise ValueError("timesteps must be >= 1")
        per_step = self.per_timestep_ms + (self.exit_check_ms if dynamic else 0.0)
        return self.fixed_ms + timesteps * per_step

    def energy(self, timesteps: float) -> float:
        """Energy proxy: proportional to busy time (used only for completeness)."""
        return self.latency(timesteps)

    def throughput(self, timesteps: float, dynamic: bool = False) -> float:
        """Images per second at batch size 1."""
        return 1000.0 / self.latency(timesteps, dynamic=dynamic)

    # ------------------------------------------------------------------ #
    def static_throughput_table(self, max_timesteps: int = 4) -> Dict[int, float]:
        """Static-SNN throughput for T = 1..max (the SNN rows of Table III)."""
        return {t: self.throughput(t) for t in range(1, max_timesteps + 1)}

    def dynamic_throughput(self, result: DynamicInferenceResult) -> float:
        """Average throughput of a DT-SNN run, priced per sample.

        Each sample's latency depends on its own exit timestep (plus the
        per-timestep exit check); throughput is the reciprocal of the mean
        latency, matching how the paper measures images/second over the test
        set at batch size 1.
        """
        latencies = np.array(
            [self.latency(int(t), dynamic=True) for t in result.exit_timesteps], dtype=np.float64  # dtype-ok: energy/latency accounting is analysis-side float64
        )
        return 1000.0 / float(latencies.mean())


def fit_processor_model(
    timesteps: Sequence[int],
    throughputs_img_per_s: Sequence[float],
    exit_check_ms: float = 0.05,
) -> DigitalProcessorModel:
    """Fit ``fixed_ms``/``per_timestep_ms`` to measured static throughputs.

    A least-squares fit of ``latency = fixed + T * per_timestep`` to the
    reciprocal throughputs.  Used to calibrate the model either to the
    paper's published GPU numbers or to wall-clock measurements of this
    repository's own inference engine.
    """
    timesteps = np.asarray(timesteps, dtype=np.float64)  # dtype-ok: energy/latency accounting is analysis-side float64
    throughputs = np.asarray(throughputs_img_per_s, dtype=np.float64)  # dtype-ok: energy/latency accounting is analysis-side float64
    if timesteps.shape != throughputs.shape or timesteps.size < 2:
        raise ValueError("need matching arrays with at least two measurement points")
    if np.any(throughputs <= 0):
        raise ValueError("throughputs must be positive")
    latencies_ms = 1000.0 / throughputs
    design = np.stack([np.ones_like(timesteps), timesteps], axis=1)
    (fixed, slope), *_ = np.linalg.lstsq(design, latencies_ms, rcond=None)
    fixed = max(float(fixed), 0.0)
    slope = max(float(slope), 1e-6)
    return DigitalProcessorModel(fixed_ms=fixed, per_timestep_ms=slope, exit_check_ms=exit_check_ms)
