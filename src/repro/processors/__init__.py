"""Digital-processor cost models and wall-clock measurement helpers (Table III)."""

from .digital import DigitalProcessorModel, fit_processor_model
from .wallclock import ThroughputMeasurement, WallClockProfiler

__all__ = [
    "DigitalProcessorModel",
    "fit_processor_model",
    "ThroughputMeasurement",
    "WallClockProfiler",
]
