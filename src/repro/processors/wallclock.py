"""Wall-clock throughput measurement of this repository's inference engine.

Table III of the paper is a *measurement* (images per second on a GPU).  The
closest measurement this environment supports is timing the NumPy inference
engine itself at batch size 1, statically for T = 1..T_max and dynamically
with the entropy-threshold exit.  The absolute numbers are CPU/NumPy numbers,
but the claim under test is relational — throughput degrades with timesteps
and DT-SNN recovers most of it — and that shape is hardware independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.dynamic_inference import DynamicTimestepInference
from ..core.policies import EntropyExitPolicy
from ..snn.network import SpikingNetwork
from ..autograd import no_grad

__all__ = ["ThroughputMeasurement", "WallClockProfiler"]


@dataclass
class ThroughputMeasurement:
    """Result of one throughput measurement."""

    images_per_second: float
    mean_latency_ms: float
    num_images: int
    average_timesteps: float


class WallClockProfiler:
    """Times static and dynamic batch-1 inference of a spiking network."""

    def __init__(self, model: SpikingNetwork, max_timesteps: Optional[int] = None):
        self.model = model
        self.max_timesteps = max_timesteps or model.default_timesteps

    def measure_static(self, inputs: np.ndarray, timesteps: int) -> ThroughputMeasurement:
        """Batch-1 static SNN inference at a fixed horizon."""
        inputs = np.asarray(inputs, dtype=np.float32)
        was_training = self.model.training
        self.model.eval()
        start = time.perf_counter()
        try:
            with no_grad():
                for index in range(inputs.shape[0]):
                    self.model.forward(inputs[index : index + 1], timesteps)
        finally:
            self.model.train(was_training)
        elapsed = time.perf_counter() - start
        count = inputs.shape[0]
        return ThroughputMeasurement(
            images_per_second=count / elapsed if elapsed > 0 else float("inf"),
            mean_latency_ms=1000.0 * elapsed / count,
            num_images=count,
            average_timesteps=float(timesteps),
        )

    def measure_dynamic(self, inputs: np.ndarray, threshold: float) -> ThroughputMeasurement:
        """Batch-1 DT-SNN inference with the entropy-threshold exit."""
        inputs = np.asarray(inputs, dtype=np.float32)
        engine = DynamicTimestepInference(
            self.model,
            policy=EntropyExitPolicy(threshold=threshold),
            max_timesteps=self.max_timesteps,
        )
        exit_timesteps = []
        start = time.perf_counter()
        for index in range(inputs.shape[0]):
            result = engine.infer(inputs[index : index + 1])
            exit_timesteps.append(int(result.exit_timesteps[0]))
        elapsed = time.perf_counter() - start
        count = inputs.shape[0]
        return ThroughputMeasurement(
            images_per_second=count / elapsed if elapsed > 0 else float("inf"),
            mean_latency_ms=1000.0 * elapsed / count,
            num_images=count,
            average_timesteps=float(np.mean(exit_timesteps)) if exit_timesteps else 0.0,
        )

    def throughput_table(
        self, inputs: np.ndarray, thresholds: Optional[Dict[str, float]] = None
    ) -> Dict[str, ThroughputMeasurement]:
        """Static rows for T = 1..max plus one dynamic row per threshold."""
        table: Dict[str, ThroughputMeasurement] = {}
        for t in range(1, self.max_timesteps + 1):
            table[f"static_T{t}"] = self.measure_static(inputs, t)
        for name, threshold in (thresholds or {}).items():
            table[f"dynamic_{name}"] = self.measure_dynamic(inputs, threshold)
        return table
