"""Deterministic random-number management.

Every stochastic component in the reproduction (weight initialization,
dataset synthesis, dropout, device-variation noise) draws from a
``numpy.random.Generator`` handed to it explicitly or obtained from
:func:`global_rng`.  Seeding once via :func:`seed_everything` makes training
runs, dataset splits and hardware noise injection reproducible, which the
benchmark harness relies on to report stable numbers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["seed_everything", "global_rng", "spawn_rng"]

_GLOBAL_RNG: np.random.Generator = np.random.default_rng(0)


def seed_everything(seed: int) -> np.random.Generator:
    """Reset the module-level generator and return it."""
    global _GLOBAL_RNG
    if seed < 0:
        raise ValueError("seed must be non-negative")
    _GLOBAL_RNG = np.random.default_rng(seed)
    return _GLOBAL_RNG


def global_rng() -> np.random.Generator:
    """Return the process-wide generator (seed it with :func:`seed_everything`)."""
    return _GLOBAL_RNG


def spawn_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create an independent generator.

    When ``seed`` is None a child generator is derived from the global one so
    that independent components stay reproducible without sharing state.
    """
    if seed is not None:
        return np.random.default_rng(seed)
    return np.random.default_rng(_GLOBAL_RNG.integers(0, 2**63 - 1))
