"""Small argument-validation helpers shared across the package.

Centralizing these keeps error messages consistent and the calling code
readable ("validate, then compute"), which matters in the hardware model
where silently-wrong geometry would produce plausible but meaningless energy
numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_choices",
    "check_ndim",
]


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_choices(name: str, value, choices: Sequence) -> object:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {list(choices)}, got {value!r}")
    return value


def check_ndim(name: str, array: np.ndarray, ndim: int) -> np.ndarray:
    """Raise ``ValueError`` unless ``array`` has exactly ``ndim`` dimensions."""
    array = np.asarray(array)
    if array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    return array
