"""Saving and loading model parameters and experiment results.

Model state dicts are stored as ``.npz`` archives (one array per parameter)
and experiment results as JSON, so checkpoints and benchmark outputs remain
inspectable without this package installed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

__all__ = ["save_state_dict", "load_state_dict", "save_json", "load_json"]

PathLike = Union[str, Path]


def save_state_dict(path: PathLike, state: Mapping[str, np.ndarray]) -> Path:
    """Write a parameter-name -> array mapping to an ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {key: np.asarray(value) for key, value in state.items()}
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def _jsonify(value):
    """Convert NumPy scalars/arrays to plain Python for JSON output."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def save_json(path: PathLike, payload: Mapping) -> Path:
    """Write ``payload`` (possibly containing NumPy values) as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonify(dict(payload)), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Dict:
    """Load a JSON file written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
