"""Shared utilities: deterministic RNG, logging, registries, serialization."""

from .logging import MetricLogger, get_logger
from .registry import Registry
from .rng import global_rng, seed_everything, spawn_rng
from .serialization import load_json, load_state_dict, save_json, save_state_dict
from .validation import (
    check_in_choices,
    check_ndim,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "MetricLogger",
    "get_logger",
    "Registry",
    "global_rng",
    "seed_everything",
    "spawn_rng",
    "save_state_dict",
    "load_state_dict",
    "save_json",
    "load_json",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_choices",
    "check_ndim",
]
