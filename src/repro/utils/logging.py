"""Lightweight structured logging for training and benchmarking runs.

The trainer and the benchmark harness both want (a) human-readable progress
lines and (b) a machine-readable history of scalar metrics they can assert
on.  :class:`MetricLogger` provides both without pulling in any external
dependency.
"""

from __future__ import annotations

import logging
import sys
import time
from collections import defaultdict
from typing import Dict, List, Optional

__all__ = ["get_logger", "MetricLogger"]


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured stdlib logger writing to stderr."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s"))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger


class MetricLogger:
    """Accumulates named scalar series over the course of a run."""

    def __init__(self, name: str = "run", verbose: bool = False):
        self.name = name
        self.verbose = verbose
        self._series: Dict[str, List[float]] = defaultdict(list)
        self._start = time.time()
        self._logger = get_logger(f"repro.{name}")

    def log(self, step: Optional[int] = None, **metrics: float) -> None:
        """Record one value per named metric; optionally echo to the logger."""
        for key, value in metrics.items():
            self._series[key].append(float(value))
        if self.verbose:
            rendered = ", ".join(f"{k}={v:.4f}" for k, v in metrics.items())
            prefix = f"step {step}: " if step is not None else ""
            self._logger.info("%s%s", prefix, rendered)

    def series(self, key: str) -> List[float]:
        """Return the recorded history of one metric (empty list if unseen)."""
        return list(self._series.get(key, []))

    def latest(self, key: str) -> float:
        """Return the most recent value of a metric."""
        values = self._series.get(key)
        if not values:
            raise KeyError(f"metric {key!r} has not been logged")
        return values[-1]

    def keys(self) -> List[str]:
        return sorted(self._series)

    def elapsed(self) -> float:
        """Seconds since this logger was created."""
        return time.time() - self._start

    def as_dict(self) -> Dict[str, List[float]]:
        """Return a copy of every recorded series."""
        return {key: list(values) for key, values in self._series.items()}
