"""A minimal name -> factory registry.

Used to register surrogate gradient functions, exit policies, network
architectures and dataset generators under string names so that benchmark
configurations and example scripts can select components declaratively
(mirroring the config-driven style of the original NeuroSim/PyTorch stacks).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = ["Registry"]

T = TypeVar("T")


class Registry:
    """Maps string keys to factories with decorator-style registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    def register(self, name: str, obj: Optional[Callable] = None) -> Callable:
        """Register ``obj`` under ``name``; usable as a decorator."""

        def decorator(fn: Callable) -> Callable:
            key = name.lower()
            if key in self._entries:
                raise KeyError(f"{self.kind} {name!r} is already registered")
            self._entries[key] = fn
            return fn

        if obj is not None:
            return decorator(obj)
        return decorator

    def get(self, name: str) -> Callable:
        """Look up a registered factory; raises ``KeyError`` with suggestions."""
        key = name.lower()
        if key not in self._entries:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {', '.join(sorted(self._entries))}"
            )
        return self._entries[key]

    def create(self, name: str, *args, **kwargs):
        """Instantiate the registered factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)
