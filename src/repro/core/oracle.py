"""Oracle exit analysis: the lower bound on achievable average timesteps.

The entropy rule (Eq. 8) is a heuristic; a useful diagnostic is how close it
gets to an *oracle* that exits each sample at the earliest timestep whose
cumulative prediction is already correct (and at the full horizon when no
timestep ever predicts correctly).  The oracle needs the labels, so it is not
deployable — it bounds what any input-aware exit policy could achieve on a
given trained network and quantifies how much of that potential the entropy
threshold actually realizes (the "potential" argument of Sec. III-A(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .dynamic_inference import DynamicInferenceResult

__all__ = ["oracle_exit_result", "exit_policy_efficiency"]


def oracle_exit_result(cumulative_logits: np.ndarray, labels: np.ndarray) -> DynamicInferenceResult:
    """Exit each sample at the first timestep whose prediction is correct.

    Samples that are *never* predicted correctly exit immediately at timestep
    1: spending more timesteps on them cannot change the outcome, so the
    oracle simultaneously achieves the highest accuracy any exit rule could
    reach on this network (the "any-timestep" accuracy) and the lowest average
    timestep count at which that accuracy is reachable.
    """
    cumulative_logits = np.asarray(cumulative_logits)
    labels = np.asarray(labels, dtype=np.int64)
    if cumulative_logits.ndim != 3:
        raise ValueError("cumulative_logits must have shape (T, N, K)")
    horizon, num_samples, _ = cumulative_logits.shape
    if labels.shape[0] != num_samples:
        raise ValueError("labels must have one entry per sample")

    predictions_per_t = cumulative_logits.argmax(axis=-1)           # (T, N)
    correct_per_t = predictions_per_t == labels[None, :]             # (T, N)

    exit_timesteps = np.ones(num_samples, dtype=np.int64)
    predictions = predictions_per_t[0].copy()
    for sample in range(num_samples):
        hits = np.flatnonzero(correct_per_t[:, sample])
        if hits.size:
            exit_timesteps[sample] = hits[0] + 1
            predictions[sample] = predictions_per_t[hits[0], sample]
    return DynamicInferenceResult(
        exit_timesteps=exit_timesteps,
        predictions=predictions,
        labels=labels,
        scores=np.zeros(num_samples),
        max_timesteps=horizon,
        policy_name="oracle",
        threshold=None,
    )


def exit_policy_efficiency(
    policy_result: DynamicInferenceResult, oracle_result: DynamicInferenceResult
) -> Dict[str, float]:
    """How much of the oracle's timestep saving a deployable policy realizes.

    ``efficiency`` is the ratio of saved timesteps:
    ``(T_max - avg_policy) / (T_max - avg_oracle)`` — 1.0 means the policy
    exits as early as the oracle, 0.0 means it always runs the full horizon.
    Values above 1.0 are possible when the policy exits *mis*-classified
    samples earlier than the oracle's earliest-correct timestep (trading
    accuracy for speed); the accompanying accuracies disambiguate that case.
    """
    if policy_result.max_timesteps != oracle_result.max_timesteps:
        raise ValueError("policy and oracle results use different horizons")
    horizon = float(policy_result.max_timesteps)
    oracle_saving = horizon - oracle_result.average_timesteps
    policy_saving = horizon - policy_result.average_timesteps
    efficiency = policy_saving / oracle_saving if oracle_saving > 0 else 1.0
    return {
        "horizon": horizon,
        "oracle_average_timesteps": oracle_result.average_timesteps,
        "policy_average_timesteps": policy_result.average_timesteps,
        "oracle_accuracy": oracle_result.accuracy(),
        "policy_accuracy": policy_result.accuracy() if policy_result.labels is not None else float("nan"),
        "timestep_saving_efficiency": float(np.clip(efficiency, 0.0, 1.5)),
    }
