"""Confidence calibration for the entropy-based exit decision.

DT-SNN's exit rule assumes that low entropy implies a probably-correct
prediction; the paper justifies this with the calibration literature (Guo et
al., ICML 2017).  This module provides the standard tools to *measure* and
*improve* that assumption:

* :func:`expected_calibration_error` — the ECE of a probability/label set,
  computed with equal-width confidence bins.
* :func:`reliability_curve` — per-bin confidence vs accuracy (the reliability
  diagram's data).
* :class:`TemperatureScaler` — single-parameter temperature scaling fitted on
  held-out data by minimizing the negative log-likelihood.  Scaling the
  logits by 1/T before the softmax changes the entropy of every prediction
  monotonically, so a better-calibrated temperature lets a single threshold θ
  separate "confidently correct" from "uncertain" more cleanly — an optional
  refinement on top of the paper's method (the paper uses T = 1).

The scaler is deliberately tiny (one scalar, closed-form-free 1-D
minimization via golden-section search) so it adds no new dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .entropy import softmax_probabilities

__all__ = [
    "expected_calibration_error",
    "reliability_curve",
    "TemperatureScaler",
]


def _check_inputs(probabilities: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    probabilities = np.asarray(probabilities, dtype=np.float64)  # dtype-ok: decision-side calibration math is sanctioned float64 (docs/NUMERICS.md)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must have shape (N, K)")
    if labels.shape[0] != probabilities.shape[0]:
        raise ValueError("labels and probabilities disagree on the sample count")
    return probabilities, labels


def reliability_curve(
    probabilities: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> Dict[str, np.ndarray]:
    """Bin predictions by confidence and report per-bin confidence/accuracy/counts."""
    probabilities, labels = _check_inputs(probabilities, labels)
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    confidence = probabilities.max(axis=-1)
    predictions = probabilities.argmax(axis=-1)
    correct = (predictions == labels).astype(np.float64)  # dtype-ok: decision-side calibration math is sanctioned float64 (docs/NUMERICS.md)

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bin_confidence = np.zeros(num_bins)
    bin_accuracy = np.zeros(num_bins)
    bin_count = np.zeros(num_bins, dtype=np.int64)
    indices = np.clip(np.digitize(confidence, edges[1:-1]), 0, num_bins - 1)
    for bin_index in range(num_bins):
        mask = indices == bin_index
        count = int(mask.sum())
        bin_count[bin_index] = count
        if count:
            bin_confidence[bin_index] = confidence[mask].mean()
            bin_accuracy[bin_index] = correct[mask].mean()
    return {
        "bin_edges": edges,
        "confidence": bin_confidence,
        "accuracy": bin_accuracy,
        "count": bin_count,
    }


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> float:
    """ECE: count-weighted mean |confidence - accuracy| over confidence bins."""
    curve = reliability_curve(probabilities, labels, num_bins)
    counts = curve["count"].astype(np.float64)  # dtype-ok: decision-side calibration math is sanctioned float64 (docs/NUMERICS.md)
    total = counts.sum()
    if total == 0:
        raise ValueError("no samples provided")
    gaps = np.abs(curve["confidence"] - curve["accuracy"])
    return float((counts / total * gaps).sum())


@dataclass
class TemperatureScaler:
    """Single-parameter temperature scaling of logits."""

    temperature: float = 1.0

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Scale logits by 1/temperature (applied before softmax)."""
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        return np.asarray(logits, dtype=np.float64) / self.temperature  # dtype-ok: decision-side calibration math is sanctioned float64 (docs/NUMERICS.md)

    def probabilities(self, logits: np.ndarray) -> np.ndarray:
        return softmax_probabilities(self.transform(logits))

    # ------------------------------------------------------------------ #
    @staticmethod
    def _nll(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
        probabilities = softmax_probabilities(logits / temperature)
        picked = probabilities[np.arange(labels.shape[0]), labels]
        return float(-np.log(np.clip(picked, 1e-12, 1.0)).mean())

    @classmethod
    def fit(
        cls,
        logits: np.ndarray,
        labels: np.ndarray,
        bounds: Tuple[float, float] = (0.05, 20.0),
        iterations: int = 60,
    ) -> "TemperatureScaler":
        """Fit the temperature by golden-section search on the held-out NLL."""
        logits = np.asarray(logits, dtype=np.float64)  # dtype-ok: decision-side calibration math is sanctioned float64 (docs/NUMERICS.md)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2 or logits.shape[0] != labels.shape[0]:
            raise ValueError("logits must be (N, K) with one label per row")
        low, high = bounds
        if not 0 < low < high:
            raise ValueError("invalid temperature bounds")

        # Golden-section search over log-temperature (the NLL is smooth and
        # unimodal in practice; searching in log space keeps the resolution
        # proportional at both ends of the range).
        phi = (np.sqrt(5.0) - 1.0) / 2.0
        a, b = np.log(low), np.log(high)
        c = b - phi * (b - a)
        d = a + phi * (b - a)
        fc = cls._nll(logits, labels, float(np.exp(c)))
        fd = cls._nll(logits, labels, float(np.exp(d)))
        for _ in range(iterations):
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - phi * (b - a)
                fc = cls._nll(logits, labels, float(np.exp(c)))
            else:
                a, c, fc = c, d, fd
                d = a + phi * (b - a)
                fd = cls._nll(logits, labels, float(np.exp(d)))
        best = float(np.exp((a + b) / 2.0))
        return cls(temperature=best)

    def calibrate_cumulative_logits(self, cumulative_logits: np.ndarray) -> np.ndarray:
        """Apply the fitted temperature to a ``(T, N, K)`` cumulative-logits array."""
        cumulative_logits = np.asarray(cumulative_logits, dtype=np.float64)  # dtype-ok: decision-side calibration math is sanctioned float64 (docs/NUMERICS.md)
        if cumulative_logits.ndim != 3:
            raise ValueError("cumulative_logits must have shape (T, N, K)")
        return cumulative_logits / self.temperature
