"""Exit policies deciding when the SNN may stop adding timesteps.

The paper's DT-SNN uses the normalized-entropy threshold rule of Eq. 8.  Two
alternative confidence signals (max softmax probability and top-1/top-2
margin) and a static policy (always run T timesteps) are provided for the
ablation study called out in DESIGN.md.  All policies share one interface::

    should_exit(logits) -> boolean array over the batch

where ``logits`` are the *cumulative* (running-mean) classifier outputs after
the current timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.registry import Registry
from .entropy import (
    normalized_entropy,
    prediction_confidence,
    prediction_margin,
    softmax_probabilities,
)

__all__ = [
    "ExitPolicy",
    "EntropyExitPolicy",
    "ConfidenceExitPolicy",
    "MarginExitPolicy",
    "StaticExitPolicy",
    "EXIT_POLICIES",
    "build_policy",
]

EXIT_POLICIES = Registry("exit policy")


class ExitPolicy:
    """Base class for timestep-exit decisions."""

    name = "base"
    #: Direction of the threshold comparison in ``should_exit``: "below"
    #: (exit when score < θ), "above" (exit when score > θ), or None (no
    #: threshold — static).  Lets the serving engine evaluate a *per-request*
    #: threshold against ``score()`` bitwise-identically to ``should_exit``
    #: without mutating the shared policy object (docs/RESILIENCE.md).
    exit_when = None

    def should_exit(self, cumulative_logits: np.ndarray) -> np.ndarray:
        """Return a boolean array: True where inference may terminate."""
        raise NotImplementedError

    def score(self, cumulative_logits: np.ndarray) -> np.ndarray:
        """Return the underlying confidence score (useful for diagnostics)."""
        raise NotImplementedError


@EXIT_POLICIES.register("entropy")
@dataclass
class EntropyExitPolicy(ExitPolicy):
    """Exit when the normalized entropy drops below ``threshold`` (Eq. 8)."""

    threshold: float = 0.1
    name: str = "entropy"
    exit_when = "below"

    def __post_init__(self):
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("entropy threshold must be in [0, 1] (entropy is normalized)")

    def score(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return normalized_entropy(softmax_probabilities(cumulative_logits))

    def should_exit(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return self.score(cumulative_logits) < self.threshold


@EXIT_POLICIES.register("confidence")
@dataclass
class ConfidenceExitPolicy(ExitPolicy):
    """Exit when the maximum softmax probability exceeds ``threshold``."""

    threshold: float = 0.9
    name: str = "confidence"
    exit_when = "above"

    def __post_init__(self):
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("confidence threshold must be in (0, 1]")

    def score(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return prediction_confidence(softmax_probabilities(cumulative_logits))

    def should_exit(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return self.score(cumulative_logits) > self.threshold


@EXIT_POLICIES.register("margin")
@dataclass
class MarginExitPolicy(ExitPolicy):
    """Exit when the top-1/top-2 probability margin exceeds ``threshold``."""

    threshold: float = 0.5
    name: str = "margin"
    exit_when = "above"

    def __post_init__(self):
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("margin threshold must be in (0, 1]")

    def score(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return prediction_margin(softmax_probabilities(cumulative_logits))

    def should_exit(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return self.score(cumulative_logits) > self.threshold


@EXIT_POLICIES.register("static")
@dataclass
class StaticExitPolicy(ExitPolicy):
    """Never exit early: the static-SNN baseline expressed as a policy."""

    name: str = "static"

    def score(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return np.full(cumulative_logits.shape[0], np.inf)

    def should_exit(self, cumulative_logits: np.ndarray) -> np.ndarray:
        return np.zeros(cumulative_logits.shape[0], dtype=bool)


def build_policy(name: str, **kwargs) -> ExitPolicy:
    """Instantiate an exit policy by registry name."""
    return EXIT_POLICIES.create(name, **kwargs)
