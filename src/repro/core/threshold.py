"""Threshold calibration and sweeps for DT-SNN.

The entropy threshold θ is DT-SNN's single inference-time knob: larger values
exit earlier (fewer timesteps, less energy) at some risk to accuracy.  The
paper evaluates three thresholds per model to draw the accuracy-EDP curves of
Fig. 5 and picks, for Table II, a threshold whose accuracy matches the static
T=4 SNN.  This module reproduces both procedures:

* :func:`sweep_thresholds` evaluates a grid of thresholds on cached
  cumulative logits (cheap — no new SNN forward passes).
* :func:`calibrate_threshold` finds the most aggressive threshold whose
  accuracy stays within ``tolerance`` of a target (by default, the static
  full-horizon accuracy), mirroring "compare hardware performance with DT-SNN
  under a similar accuracy level".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from ..training.metrics import accuracy_from_logits
from .dynamic_inference import DynamicInferenceResult, DynamicTimestepInference
from .policies import EntropyExitPolicy, ExitPolicy

__all__ = ["ThresholdSweepPoint", "sweep_thresholds", "calibrate_threshold", "default_threshold_grid"]


@dataclass
class ThresholdSweepPoint:
    """Outcome of evaluating one threshold value."""

    threshold: float
    accuracy: float
    average_timesteps: float
    timestep_fractions: np.ndarray
    result: DynamicInferenceResult

    def as_dict(self) -> Dict[str, float]:
        row = {
            "threshold": self.threshold,
            "accuracy": self.accuracy,
            "average_timesteps": self.average_timesteps,
        }
        for index, fraction in enumerate(self.timestep_fractions, start=1):
            row[f"fraction_t{index}"] = float(fraction)
        return row


def default_threshold_grid(num_points: int = 25, low: float = 0.005, high: float = 0.98) -> np.ndarray:
    """Geometric grid of entropy thresholds covering conservative to aggressive."""
    if num_points < 2:
        raise ValueError("num_points must be >= 2")
    return np.geomspace(low, high, num_points)


def sweep_thresholds(
    cumulative_logits: np.ndarray,
    labels: np.ndarray,
    thresholds: Sequence[float],
    policy_cls: Type[ExitPolicy] = EntropyExitPolicy,
    max_timesteps: Optional[int] = None,
) -> List[ThresholdSweepPoint]:
    """Evaluate accuracy / average-T for every threshold in ``thresholds``."""
    cumulative_logits = np.asarray(cumulative_logits)
    if max_timesteps is None:
        max_timesteps = cumulative_logits.shape[0]
    points: List[ThresholdSweepPoint] = []
    for threshold in thresholds:
        policy = policy_cls(threshold=float(threshold))
        engine = DynamicTimestepInference(policy=policy, max_timesteps=max_timesteps)
        result = engine.infer_from_logits(cumulative_logits, labels)
        points.append(
            ThresholdSweepPoint(
                threshold=float(threshold),
                accuracy=result.accuracy(),
                average_timesteps=result.average_timesteps,
                timestep_fractions=result.timestep_fractions(),
                result=result,
            )
        )
    return points


def calibrate_threshold(
    cumulative_logits: np.ndarray,
    labels: np.ndarray,
    target_accuracy: Optional[float] = None,
    tolerance: float = 0.0,
    thresholds: Optional[Sequence[float]] = None,
    policy_cls: Type[ExitPolicy] = EntropyExitPolicy,
    max_timesteps: Optional[int] = None,
) -> ThresholdSweepPoint:
    """Pick the most aggressive threshold whose accuracy stays near the target.

    Parameters
    ----------
    target_accuracy:
        Accuracy to preserve.  Defaults to the static full-horizon accuracy
        computed from the last slice of ``cumulative_logits``.
    tolerance:
        Allowed accuracy drop below the target (e.g. 0.005 = 0.5 points).
    thresholds:
        Candidate grid; defaults to :func:`default_threshold_grid`.

    Returns
    -------
    The sweep point with the smallest average timestep count among those whose
    accuracy is at least ``target_accuracy - tolerance``.  If none qualifies,
    the most conservative (smallest threshold) point is returned.
    """
    cumulative_logits = np.asarray(cumulative_logits)
    labels = np.asarray(labels)
    if target_accuracy is None:
        target_accuracy = accuracy_from_logits(cumulative_logits[-1], labels)
    if thresholds is None:
        thresholds = default_threshold_grid()
    points = sweep_thresholds(
        cumulative_logits, labels, thresholds, policy_cls=policy_cls, max_timesteps=max_timesteps
    )
    qualifying = [p for p in points if p.accuracy >= target_accuracy - tolerance]
    if qualifying:
        return min(qualifying, key=lambda p: p.average_timesteps)
    return min(points, key=lambda p: p.threshold)
