"""Exit-time statistics and the easy/hard input analysis (Fig. 5 and Fig. 8).

Given a :class:`~repro.core.dynamic_inference.DynamicInferenceResult`, this
module computes the pie-chart exit distributions of Fig. 5, correlates exit
time with the generator-provided difficulty metadata, and renders the Fig. 8
style "easy vs hard inputs" comparison as ASCII summaries (this environment
has no image output, so the visualization reports per-sample difficulty,
contrast and an ASCII thumbnail instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .dynamic_inference import DynamicInferenceResult

__all__ = [
    "exit_distribution_table",
    "stratify_by_exit_time",
    "difficulty_by_exit_time",
    "ExitGroupSummary",
    "summarize_exit_groups",
    "ascii_thumbnail",
]


def exit_distribution_table(result: DynamicInferenceResult) -> Dict[str, float]:
    """Fractions of samples exiting at each timestep (pie-chart data)."""
    return {
        f"T={t}": float(fraction)
        for t, fraction in enumerate(result.timestep_fractions(), start=1)
    }


def stratify_by_exit_time(result: DynamicInferenceResult) -> Dict[int, np.ndarray]:
    """Sample indices grouped by exit timestep."""
    groups: Dict[int, np.ndarray] = {}
    for t in range(1, result.max_timesteps + 1):
        groups[t] = np.flatnonzero(result.exit_timesteps == t)
    return groups


def difficulty_by_exit_time(
    result: DynamicInferenceResult, difficulty: np.ndarray
) -> Dict[int, float]:
    """Mean generator difficulty of the samples exiting at each timestep.

    For DT-SNN to behave as the paper describes, this should increase with the
    exit timestep: easy inputs exit at T=1, hard ones run the full horizon.
    """
    difficulty = np.asarray(difficulty, dtype=np.float64)  # dtype-ok: analysis-side statistics, off the tensor path
    if difficulty.shape[0] != result.num_samples:
        raise ValueError("difficulty must have one entry per sample")
    means: Dict[int, float] = {}
    for t, indices in stratify_by_exit_time(result).items():
        means[t] = float(difficulty[indices].mean()) if indices.size else float("nan")
    return means


@dataclass
class ExitGroupSummary:
    """Statistics of the samples that exited at a given timestep."""

    timestep: int
    count: int
    fraction: float
    accuracy: float
    mean_difficulty: Optional[float]
    mean_score: float


def summarize_exit_groups(
    result: DynamicInferenceResult, difficulty: Optional[np.ndarray] = None
) -> List[ExitGroupSummary]:
    """Per-exit-timestep breakdown used by the Fig. 5 / Fig. 8 benches."""
    groups = stratify_by_exit_time(result)
    correct = result.correct_mask() if result.labels is not None else None
    summaries: List[ExitGroupSummary] = []
    total = max(result.num_samples, 1)
    for t, indices in groups.items():
        count = int(indices.size)
        summaries.append(
            ExitGroupSummary(
                timestep=t,
                count=count,
                fraction=count / total,
                accuracy=float(correct[indices].mean()) if (correct is not None and count) else float("nan"),
                mean_difficulty=(
                    float(np.asarray(difficulty)[indices].mean())
                    if (difficulty is not None and count)
                    else None
                ),
                mean_score=float(result.scores[indices].mean()) if count else float("nan"),
            )
        )
    return summaries


_ASCII_LEVELS = " .:-=+*#%@"


def ascii_thumbnail(image: np.ndarray, width: int = 16) -> str:
    """Render a ``(C, H, W)`` image as a small ASCII thumbnail.

    Used by the Fig. 8 bench to show what an "easy" (exit at T=1) versus
    "hard" (exit at T=max) input looks like without graphical output.
    """
    image = np.asarray(image, dtype=np.float64)  # dtype-ok: analysis-side statistics, off the tensor path
    if image.ndim == 3:
        luminance = image.mean(axis=0)
    elif image.ndim == 2:
        luminance = image
    else:
        raise ValueError("expected (C, H, W) or (H, W) image")
    h, w = luminance.shape
    step = max(1, w // width)
    down = luminance[::step, ::step]
    low, high = down.min(), down.max()
    scale = (down - low) / (high - low) if high > low else np.zeros_like(down)
    indices = np.clip((scale * (len(_ASCII_LEVELS) - 1)).round().astype(int), 0, len(_ASCII_LEVELS) - 1)
    return "\n".join("".join(_ASCII_LEVELS[value] for value in row) for row in indices)
