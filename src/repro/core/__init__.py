"""DT-SNN core: entropy-thresholded dynamic-timestep inference and its analysis tools."""

from .accounting import CostReport, InferenceCostModel, account_result, compare_to_static
from .calibration import TemperatureScaler, expected_calibration_error, reliability_curve
from .dynamic_inference import DynamicInferenceResult, DynamicTimestepInference
from .oracle import exit_policy_efficiency, oracle_exit_result
from .early_exit import EarlyExitANN, EarlyExitInference, build_early_exit_ann
from .entropy import (
    normalized_entropy,
    prediction_confidence,
    prediction_margin,
    softmax_probabilities,
)
from .policies import (
    EXIT_POLICIES,
    ConfidenceExitPolicy,
    EntropyExitPolicy,
    ExitPolicy,
    MarginExitPolicy,
    StaticExitPolicy,
    build_policy,
)
from .statistics import (
    ExitGroupSummary,
    ascii_thumbnail,
    difficulty_by_exit_time,
    exit_distribution_table,
    stratify_by_exit_time,
    summarize_exit_groups,
)
from .threshold import (
    ThresholdSweepPoint,
    calibrate_threshold,
    default_threshold_grid,
    sweep_thresholds,
)

__all__ = [
    "softmax_probabilities",
    "normalized_entropy",
    "prediction_confidence",
    "prediction_margin",
    "ExitPolicy",
    "EntropyExitPolicy",
    "ConfidenceExitPolicy",
    "MarginExitPolicy",
    "StaticExitPolicy",
    "EXIT_POLICIES",
    "build_policy",
    "DynamicTimestepInference",
    "DynamicInferenceResult",
    "ThresholdSweepPoint",
    "sweep_thresholds",
    "calibrate_threshold",
    "default_threshold_grid",
    "exit_distribution_table",
    "stratify_by_exit_time",
    "difficulty_by_exit_time",
    "summarize_exit_groups",
    "ExitGroupSummary",
    "ascii_thumbnail",
    "EarlyExitANN",
    "EarlyExitInference",
    "build_early_exit_ann",
    "InferenceCostModel",
    "CostReport",
    "account_result",
    "compare_to_static",
    "TemperatureScaler",
    "expected_calibration_error",
    "reliability_curve",
    "oracle_exit_result",
    "exit_policy_efficiency",
]
