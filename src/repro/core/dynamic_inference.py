"""The DT-SNN inference engine (Eq. 5 and Eq. 8 of the paper).

Two execution modes are provided:

* :meth:`DynamicTimestepInference.infer_from_logits` — operates on a
  pre-collected ``(T, N, K)`` array of cumulative logits.  This is the fast
  path used by threshold sweeps and by every benchmark, because the expensive
  SNN forward pass over the full horizon runs once and different thresholds /
  policies are evaluated on the cached outputs.  It is mathematically
  identical to early stopping because timestep ``t``'s cumulative output does
  not depend on anything computed after ``t``.
* :meth:`DynamicTimestepInference.infer` — true sequential early-exit over a
  model, stopping the timestep loop as soon as the policy fires.  This is the
  deployment path: it is what the wall-clock throughput measurement
  (Table III) and the example scripts exercise.

The result object records, per sample, the exit timestep, the prediction, the
entropy trajectory and correctness, which is everything downstream consumers
(energy accounting, EDP, pie charts, easy/hard visualization) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..autograd import no_grad
from ..data.datasets import DataLoader
from ..runtime import executor_for
from ..snn.network import SpikingNetwork
from .entropy import normalized_entropy, softmax_probabilities
from .policies import EntropyExitPolicy, ExitPolicy

__all__ = ["DynamicInferenceResult", "DynamicTimestepInference"]


@dataclass
class DynamicInferenceResult:
    """Per-sample outcome of a dynamic-timestep inference run."""

    exit_timesteps: np.ndarray
    predictions: np.ndarray
    labels: Optional[np.ndarray]
    scores: np.ndarray  # policy score at the exit timestep (entropy for DT-SNN)
    max_timesteps: int
    policy_name: str = "entropy"
    threshold: Optional[float] = None

    # ------------------------------------------------------------------ #
    @property
    def num_samples(self) -> int:
        return int(self.exit_timesteps.shape[0])

    @property
    def average_timesteps(self) -> float:
        """The paper's headline "average T" metric."""
        return float(np.mean(self.exit_timesteps))

    def accuracy(self) -> float:
        if self.labels is None:
            raise ValueError("labels were not provided; accuracy unavailable")
        return float(np.mean(self.predictions == self.labels))

    def correct_mask(self) -> np.ndarray:
        if self.labels is None:
            raise ValueError("labels were not provided")
        return self.predictions == self.labels

    def timestep_histogram(self) -> np.ndarray:
        """Count of samples exiting at each timestep 1..T (Fig. 5 pie charts)."""
        return np.bincount(self.exit_timesteps, minlength=self.max_timesteps + 1)[1:]

    def timestep_fractions(self) -> np.ndarray:
        histogram = self.timestep_histogram().astype(np.float64)  # dtype-ok: analysis-side exit statistics, off the tensor path
        return histogram / max(histogram.sum(), 1.0)

    def summary(self) -> Dict[str, float]:
        stats = {
            "average_timesteps": self.average_timesteps,
            "max_timesteps": float(self.max_timesteps),
            "num_samples": float(self.num_samples),
        }
        if self.labels is not None:
            stats["accuracy"] = self.accuracy()
        for t, fraction in enumerate(self.timestep_fractions(), start=1):
            stats[f"fraction_exit_t{t}"] = float(fraction)
        return stats


class DynamicTimestepInference:
    """Runs input-aware dynamic-timestep inference for a spiking network."""

    def __init__(
        self,
        model: Optional[SpikingNetwork] = None,
        policy: Optional[ExitPolicy] = None,
        max_timesteps: Optional[int] = None,
        use_runtime: Optional[bool] = None,
    ):
        self.model = model
        self.policy = policy or EntropyExitPolicy()
        # None defers to the REPRO_RUNTIME environment gate; False pins the
        # define-by-run Tensor path (the reference oracle the equivalence
        # suite compares against).
        self.use_runtime = use_runtime
        if max_timesteps is None and model is not None:
            max_timesteps = model.default_timesteps
        if max_timesteps is None or max_timesteps < 1:
            raise ValueError("max_timesteps must be a positive integer")
        self.max_timesteps = int(max_timesteps)

    # ------------------------------------------------------------------ #
    # Fast path: from precomputed cumulative logits
    # ------------------------------------------------------------------ #
    def infer_from_logits(
        self,
        cumulative_logits: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> DynamicInferenceResult:
        """Apply the exit rule to a ``(T, N, K)`` cumulative-logits array.

        For each sample the exit timestep is the first ``t`` whose policy
        condition holds; samples that never satisfy it use the full horizon
        (the ``∪ {T}`` term of Eq. 8).
        """
        cumulative_logits = np.asarray(cumulative_logits)
        if cumulative_logits.ndim != 3:
            raise ValueError("cumulative_logits must have shape (T, N, K)")
        horizon = min(cumulative_logits.shape[0], self.max_timesteps)
        num_samples = cumulative_logits.shape[1]

        exit_timesteps = np.full(num_samples, horizon, dtype=np.int64)
        predictions = np.argmax(cumulative_logits[horizon - 1], axis=-1)
        scores = self.policy.score(cumulative_logits[horizon - 1])
        undecided = np.ones(num_samples, dtype=bool)

        for t in range(horizon):
            if not undecided.any():
                break
            logits_t = cumulative_logits[t]
            exit_now = self.policy.should_exit(logits_t) & undecided
            # The last timestep is forced for anything still undecided.
            if t == horizon - 1:
                exit_now = undecided
            if exit_now.any():
                exit_timesteps[exit_now] = t + 1
                predictions[exit_now] = np.argmax(logits_t[exit_now], axis=-1)
                scores[exit_now] = self.policy.score(logits_t[exit_now])
                undecided &= ~exit_now
        return DynamicInferenceResult(
            exit_timesteps=exit_timesteps,
            predictions=predictions,
            labels=None if labels is None else np.asarray(labels),
            scores=np.asarray(scores),
            max_timesteps=horizon,
            policy_name=self.policy.name,
            threshold=getattr(self.policy, "threshold", None),
        )

    # ------------------------------------------------------------------ #
    # Deployment path: sequential early exit over the model
    # ------------------------------------------------------------------ #
    def infer(
        self,
        inputs: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> DynamicInferenceResult:
        """Sequentially process timesteps, stopping as soon as every sample exits.

        The batch is *compacted* to the undecided subset after every timestep:
        once a sample satisfies the exit policy its row (inputs, running logit
        sum and every LIF membrane row) is dropped, so subsequent timesteps run
        the SNN forward only for samples that still need them — exited samples
        cost zero FLOPs.  Per-sample results are scattered back into the
        original batch order, and the outcome is identical to running the full
        batch every timestep (the per-sample dynamics are independent; see
        :meth:`infer_from_logits`).  With batch size 1 this is exactly the
        paper's deployment behaviour (the σ–E module terminates inference and
        the next input is loaded).

        Stochastic encoders (``deterministic = False``, e.g. Poisson rate
        coding) draw from a shared RNG whose consumption depends on the batch
        shape, so for them the full batch is encoded and evaluated every
        timestep — preserving the exact pre-compaction draw sequence — and
        only the early-stopping of the loop is kept.

        When the model lowers into the :mod:`repro.runtime` compiled plan
        (and ``use_runtime`` is not disabled), each timestep executes through
        the graph-free fast path; the logits — and therefore every exit
        decision, prediction and score — are bitwise identical to the Tensor
        path, which remains available as the reference oracle via
        ``use_runtime=False``.
        """
        if self.model is None:
            raise ValueError("a model is required for sequential inference")
        model = self.model
        was_training = model.training
        model.eval()
        executor = executor_for(model, self.use_runtime)
        inputs = np.asarray(inputs, dtype=np.float32)
        num_samples = inputs.shape[0]

        exit_timesteps = np.full(num_samples, self.max_timesteps, dtype=np.int64)
        predictions = np.zeros(num_samples, dtype=np.int64)
        scores = np.zeros(num_samples, dtype=np.float64)  # dtype-ok: decision-side score bookkeeping is sanctioned float64 (docs/NUMERICS.md)
        # Indices (into the original batch) of samples still running.
        active = np.arange(num_samples, dtype=np.int64)
        compact = getattr(model.encoder, "deterministic", True)

        try:
            with no_grad():
                if executor is None:
                    model.reset_state()
                else:
                    executor.reset_state()
                running_sum: Optional[np.ndarray] = None
                for t in range(self.max_timesteps):
                    frame = model.encoder(inputs if not compact else inputs[active], t)
                    if executor is None:
                        spikes = model.features(frame)
                        logits = model.classifier(spikes).data
                    else:
                        logits = executor.step(frame.data)
                    running_sum = logits if running_sum is None else running_sum + logits
                    # Without compaction the running sum spans the full batch;
                    # restrict the exit decision to the still-active rows.
                    cumulative = running_sum / float(t + 1)
                    if not compact:
                        cumulative = cumulative[active]

                    exit_now = self.policy.should_exit(cumulative)
                    if t == self.max_timesteps - 1:
                        exit_now = np.ones(active.shape[0], dtype=bool)
                    if exit_now.any():
                        exited = active[exit_now]
                        exit_timesteps[exited] = t + 1
                        predictions[exited] = np.argmax(cumulative[exit_now], axis=-1)
                        scores[exited] = self.policy.score(cumulative[exit_now])
                        active = active[~exit_now]
                        if compact:
                            keep = ~exit_now
                            running_sum = running_sum[keep]
                            if executor is None:
                                model.compact_state(keep)
                            else:
                                executor.compact_rows(keep)
                    if active.size == 0:
                        break
        finally:
            model.train(was_training)

        return DynamicInferenceResult(
            exit_timesteps=exit_timesteps,
            predictions=predictions,
            labels=None if labels is None else np.asarray(labels),
            scores=scores,
            max_timesteps=self.max_timesteps,
            policy_name=self.policy.name,
            threshold=getattr(self.policy, "threshold", None),
        )

    def infer_loader(self, loader: DataLoader) -> DynamicInferenceResult:
        """Run sequential dynamic inference over a whole data loader."""
        results: List[DynamicInferenceResult] = []
        all_labels: List[np.ndarray] = []
        for inputs, labels in loader:
            results.append(self.infer(inputs))
            all_labels.append(labels)
        return DynamicInferenceResult(
            exit_timesteps=np.concatenate([r.exit_timesteps for r in results]),
            predictions=np.concatenate([r.predictions for r in results]),
            labels=np.concatenate(all_labels),
            scores=np.concatenate([r.scores for r in results]),
            max_timesteps=self.max_timesteps,
            policy_name=self.policy.name,
            threshold=getattr(self.policy, "threshold", None),
        )

    # ------------------------------------------------------------------ #
    def entropy_trajectories(self, cumulative_logits: np.ndarray) -> np.ndarray:
        """Normalized entropy after every timestep, shape ``(T, N)`` (diagnostics)."""
        cumulative_logits = np.asarray(cumulative_logits)
        return normalized_entropy(softmax_probabilities(cumulative_logits))
