"""Softmax and normalized-entropy computation (Eq. 6 and Eq. 7 of the paper).

These are forward-only (NumPy) computations used at inference time by the
DT-SNN exit decision and by the sigma-E hardware module model.  The entropy is
normalized by ``log K`` so it always lies in ``(0, 1]`` regardless of the
number of classes, which lets a single threshold value be meaningful across
datasets.

Dtype note: this module is *decision-side* — it consumes finished float32
logits and deliberately scores them in float64 (exp/log precision near the
exit threshold), which is outside the network dataflow's weak-scalar
float32 policy (docs/NUMERICS.md).  Both execution paths feed it bitwise-
identical logits, so the scores — and every exit decision — agree bitwise
across paths too.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax_probabilities", "normalized_entropy", "prediction_confidence", "prediction_margin"]


def softmax_probabilities(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (Eq. 6)."""
    logits = np.asarray(logits, dtype=np.float64)  # dtype-ok: decision-side entropy scores are sanctioned float64 (docs/NUMERICS.md)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def normalized_entropy(probabilities: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Entropy normalized to ``(0, 1]`` by ``log K`` (Eq. 7).

    ``probabilities`` must already sum to one along ``axis`` (the output of
    :func:`softmax_probabilities`).  A uniform distribution maps to 1.0 and a
    one-hot distribution maps to 0.0.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)  # dtype-ok: decision-side entropy scores are sanctioned float64 (docs/NUMERICS.md)
    num_classes = probabilities.shape[axis]
    if num_classes < 2:
        raise ValueError("entropy requires at least two classes")
    clipped = np.clip(probabilities, eps, 1.0)
    entropy = -(probabilities * np.log(clipped)).sum(axis=axis)
    return entropy / np.log(num_classes)


def prediction_confidence(probabilities: np.ndarray, axis: int = -1) -> np.ndarray:
    """Maximum softmax probability (the confidence baseline exit signal)."""
    return np.asarray(probabilities).max(axis=axis)


def prediction_margin(probabilities: np.ndarray, axis: int = -1) -> np.ndarray:
    """Difference between the top-1 and top-2 probabilities (margin signal)."""
    probabilities = np.asarray(probabilities)
    sorted_probs = np.sort(probabilities, axis=axis)
    top1 = np.take(sorted_probs, -1, axis=axis)
    top2 = np.take(sorted_probs, -2, axis=axis)
    return top1 - top2
