"""ANN early-exit baseline (BranchyNet-style) for the Sec. III-A(c) comparison.

The paper argues DT-SNN is conceptually similar to early exit in ANNs but (1)
needs no additional exit classifiers because the time dimension already
provides intermediate outputs, and (2) exits a much larger fraction of inputs
at its first decision point.  To make that comparison concrete this module
implements a small convolutional ANN with auxiliary exit branches: each branch
is an extra classifier head attached after an intermediate block, and
inference walks the branches in order applying the same entropy rule DT-SNN
uses.

The module reuses the entropy policies from :mod:`repro.core.policies`, so the
comparison isolates exactly the architectural difference the paper discusses:
extra parameters/compute for ANN exits versus free temporal exits for SNNs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..data.datasets import DataLoader
from ..nn import AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, ReLU, Sequential
from ..nn.module import Module, ModuleList
from .dynamic_inference import DynamicInferenceResult
from .policies import EntropyExitPolicy, ExitPolicy

__all__ = ["EarlyExitANN", "build_early_exit_ann", "EarlyExitInference"]


class EarlyExitANN(Module):
    """A feedforward ANN with one classifier per exit point.

    ``blocks[i]`` transforms the feature map; ``exits[i]`` maps the feature
    map after block ``i`` to class logits.  The final exit is the ordinary
    network output.
    """

    def __init__(self, blocks: Sequence[Module], exits: Sequence[Module]):
        super().__init__()
        if len(blocks) != len(exits):
            raise ValueError("need exactly one exit head per block")
        if not blocks:
            raise ValueError("EarlyExitANN requires at least one block")
        self.blocks = ModuleList(list(blocks))
        self.exits = ModuleList(list(exits))

    @property
    def num_exits(self) -> int:
        return len(self.blocks)

    def forward(self, x) -> List[Tensor]:
        """Return the logits of every exit head (training uses all of them)."""
        if isinstance(x, np.ndarray):
            x = Tensor(x)
        outputs: List[Tensor] = []
        hidden = x
        for block, exit_head in zip(self.blocks, self.exits):
            hidden = block(hidden)
            outputs.append(exit_head(hidden))
        return outputs

    def loss(self, x, labels: np.ndarray) -> Tensor:
        """Joint loss: mean cross-entropy over all exits (BranchyNet training)."""
        outputs = self.forward(x)
        total = cross_entropy(outputs[0], labels)
        for logits in outputs[1:]:
            total = total + cross_entropy(logits, labels)
        return total * (1.0 / len(outputs))

    def exit_parameter_overhead(self) -> float:
        """Fraction of total parameters spent on the auxiliary exit heads.

        DT-SNN's corresponding overhead is zero (the paper's point (1)); this
        number quantifies the ANN side of the comparison.
        """
        exit_params = sum(p.size for head in list(self.exits)[:-1] for p in head.parameters())
        total_params = self.num_parameters()
        return exit_params / total_params if total_params else 0.0


def _exit_head(channels: int, spatial: int, num_classes: int) -> Module:
    """A light classifier head: global average pool + linear."""
    return Sequential(AvgPool2d(spatial), Flatten(), Linear(channels, num_classes))


def build_early_exit_ann(
    num_classes: int = 10,
    in_channels: int = 3,
    input_size: int = 16,
    widths: Sequence[int] = (16, 32, 64),
) -> EarlyExitANN:
    """Construct a small 3-stage CNN with an exit after every stage."""
    blocks: List[Module] = []
    exits: List[Module] = []
    channels = in_channels
    spatial = input_size
    for stage_index, width in enumerate(widths):
        stage: List[Module] = [
            Conv2d(channels, width, 3, stride=1, padding=1),
            BatchNorm2d(width),
            ReLU(),
        ]
        if stage_index < len(widths) - 1:
            stage.append(AvgPool2d(2))
            spatial = spatial // 2
        blocks.append(Sequential(*stage))
        exits.append(_exit_head(width, spatial, num_classes))
        channels = width
    return EarlyExitANN(blocks, exits)


@dataclass
class EarlyExitInference:
    """Entropy-thresholded inference over the exits of an :class:`EarlyExitANN`."""

    model: EarlyExitANN
    policy: ExitPolicy

    def __init__(self, model: EarlyExitANN, policy: Optional[ExitPolicy] = None):
        self.model = model
        self.policy = policy or EntropyExitPolicy()

    def infer(self, inputs: np.ndarray, labels: Optional[np.ndarray] = None) -> DynamicInferenceResult:
        """Per-sample early exit: the exit index plays the role of the timestep."""
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                outputs = [logits.data for logits in self.model.forward(inputs)]
        finally:
            self.model.train(was_training)
        num_exits = len(outputs)
        num_samples = outputs[0].shape[0]
        exit_indices = np.full(num_samples, num_exits, dtype=np.int64)
        predictions = np.argmax(outputs[-1], axis=-1)
        scores = self.policy.score(outputs[-1])
        undecided = np.ones(num_samples, dtype=bool)
        for index, logits in enumerate(outputs):
            exit_now = self.policy.should_exit(logits) & undecided
            if index == num_exits - 1:
                exit_now = undecided
            if exit_now.any():
                exit_indices[exit_now] = index + 1
                predictions[exit_now] = np.argmax(logits[exit_now], axis=-1)
                scores[exit_now] = self.policy.score(logits[exit_now])
                undecided &= ~exit_now
        return DynamicInferenceResult(
            exit_timesteps=exit_indices,
            predictions=predictions,
            labels=None if labels is None else np.asarray(labels),
            scores=np.asarray(scores),
            max_timesteps=num_exits,
            policy_name=f"ann-early-exit-{self.policy.name}",
            threshold=getattr(self.policy, "threshold", None),
        )

    def infer_loader(self, loader: DataLoader) -> DynamicInferenceResult:
        """Early-exit inference over a full data loader."""
        partial: List[DynamicInferenceResult] = []
        all_labels: List[np.ndarray] = []
        for inputs, labels in loader:
            partial.append(self.infer(inputs))
            all_labels.append(labels)
        return DynamicInferenceResult(
            exit_timesteps=np.concatenate([r.exit_timesteps for r in partial]),
            predictions=np.concatenate([r.predictions for r in partial]),
            labels=np.concatenate(all_labels),
            scores=np.concatenate([r.scores for r in partial]),
            max_timesteps=partial[0].max_timesteps if partial else 0,
            policy_name=f"ann-early-exit-{self.policy.name}",
            threshold=getattr(self.policy, "threshold", None),
        )
