"""Per-sample energy / latency / EDP accounting for dynamic-timestep inference.

The paper reports three hardware metrics for every model/dataset pair:
average timesteps, normalized energy (Table II), and normalized EDP (Fig. 4 /
Fig. 5).  Crucially these are averaged **per sample**: a sample exiting at
timestep 1 costs E(1) and D(1), and the dataset-level number is the mean over
samples — not the cost evaluated at the mean timestep.  EDP in particular is
convex in T, so getting this wrong understates DT-SNN's reported savings; the
per-sample accounting here reproduces the paper's arithmetic exactly.

The cost model is abstract (:class:`InferenceCostModel`) so the same
accounting runs against the IMC chip model (:mod:`repro.imc`) and the general
digital processor model (:mod:`repro.processors`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol

import numpy as np

from .dynamic_inference import DynamicInferenceResult

__all__ = ["InferenceCostModel", "CostReport", "account_result", "compare_to_static"]


class InferenceCostModel(Protocol):
    """Anything that prices a single-sample inference at a given horizon."""

    def energy(self, timesteps: int) -> float:
        """Energy for one inference using ``timesteps`` timesteps."""
        ...

    def latency(self, timesteps: int) -> float:
        """Latency for one inference using ``timesteps`` timesteps."""
        ...


@dataclass
class CostReport:
    """Aggregate hardware cost of an inference run."""

    average_timesteps: float
    mean_energy: float
    mean_latency: float
    mean_edp: float
    total_energy: float
    num_samples: int
    accuracy: Optional[float] = None

    def as_dict(self) -> Dict[str, float]:
        row = {
            "average_timesteps": self.average_timesteps,
            "mean_energy": self.mean_energy,
            "mean_latency": self.mean_latency,
            "mean_edp": self.mean_edp,
            "total_energy": self.total_energy,
            "num_samples": float(self.num_samples),
        }
        if self.accuracy is not None:
            row["accuracy"] = self.accuracy
        return row


def account_result(result: DynamicInferenceResult, cost_model: InferenceCostModel) -> CostReport:
    """Price every sample at its own exit timestep and aggregate."""
    timesteps = np.asarray(result.exit_timesteps, dtype=np.int64)
    if timesteps.size == 0:
        raise ValueError("cannot account an empty inference result")
    unique_t = np.unique(timesteps)
    energy_lut = {int(t): float(cost_model.energy(int(t))) for t in unique_t}
    latency_lut = {int(t): float(cost_model.latency(int(t))) for t in unique_t}
    energies = np.array([energy_lut[int(t)] for t in timesteps])
    latencies = np.array([latency_lut[int(t)] for t in timesteps])
    edp = energies * latencies
    accuracy = result.accuracy() if result.labels is not None else None
    return CostReport(
        average_timesteps=float(timesteps.mean()),
        mean_energy=float(energies.mean()),
        mean_latency=float(latencies.mean()),
        mean_edp=float(edp.mean()),
        total_energy=float(energies.sum()),
        num_samples=int(timesteps.size),
        accuracy=accuracy,
    )


def compare_to_static(
    dynamic_report: CostReport,
    cost_model: InferenceCostModel,
    static_timesteps: int,
    static_accuracy: Optional[float] = None,
) -> Dict[str, float]:
    """Normalize a DT-SNN cost report against a static-T baseline (Table II, Fig. 4)."""
    static_energy = float(cost_model.energy(static_timesteps))
    static_latency = float(cost_model.latency(static_timesteps))
    static_edp = static_energy * static_latency
    comparison = {
        "static_timesteps": float(static_timesteps),
        "dynamic_average_timesteps": dynamic_report.average_timesteps,
        "normalized_energy": dynamic_report.mean_energy / static_energy,
        "normalized_latency": dynamic_report.mean_latency / static_latency,
        "normalized_edp": dynamic_report.mean_edp / static_edp,
        "edp_reduction_percent": 100.0 * (1.0 - dynamic_report.mean_edp / static_edp),
        "energy_reduction_percent": 100.0 * (1.0 - dynamic_report.mean_energy / static_energy),
    }
    if dynamic_report.accuracy is not None:
        comparison["dynamic_accuracy"] = dynamic_report.accuracy
    if static_accuracy is not None:
        comparison["static_accuracy"] = static_accuracy
        if dynamic_report.accuracy is not None:
            comparison["accuracy_delta"] = dynamic_report.accuracy - static_accuracy
    return comparison
