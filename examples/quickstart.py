"""Quickstart: train a DT-SNN and run input-aware dynamic-timestep inference.

This example walks the full DT-SNN pipeline at laptop scale:

1. generate a CIFAR-10-like synthetic dataset (graded easy/hard samples),
2. train a small spiking VGG with the per-timestep loss (Eq. 10),
3. evaluate the static accuracy at every horizon T = 1..4 (Fig. 2),
4. calibrate the entropy threshold so DT-SNN matches the static accuracy,
5. report the average timesteps, exit distribution and energy/EDP savings on
   the in-memory-computing chip model (Table II / Fig. 4).

Run with:  python examples/quickstart.py [--epochs 6] [--samples 400]
"""

from __future__ import annotations

import argparse

from repro import (
    DataLoader,
    IMCChip,
    Trainer,
    TrainingConfig,
    account_result,
    calibrate_threshold,
    compare_to_static,
    make_cifar10_like,
    seed_everything,
    spiking_vgg,
    train_test_split,
)
from repro.training import collect_cumulative_logits, evaluate_per_timestep_accuracy


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6, help="training epochs")
    parser.add_argument("--samples", type=int, default=400, help="dataset size")
    parser.add_argument("--image-size", type=int, default=10, help="image height/width")
    parser.add_argument("--timesteps", type=int, default=4, help="maximum SNN timesteps")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    seed_everything(args.seed)

    # 1. Data ------------------------------------------------------------ #
    dataset = make_cifar10_like(num_samples=args.samples, image_size=args.image_size)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=1)
    train_loader = DataLoader(train, batch_size=32, seed=2)
    test_loader = DataLoader(test, batch_size=64, shuffle=False)
    print(f"dataset: {len(train)} train / {len(test)} test samples, "
          f"{dataset.num_classes} classes")

    # 2. Model + training (Eq. 10 loss supervises every timestep) -------- #
    model = spiking_vgg(
        "tiny", num_classes=dataset.num_classes, input_size=args.image_size,
        default_timesteps=args.timesteps,
    )
    print(f"model: {model.model_name} with {model.num_parameters()} parameters")
    trainer = Trainer(
        model,
        TrainingConfig(
            epochs=args.epochs, timesteps=args.timesteps, learning_rate=0.15,
            loss="per_timestep", verbose=False,
        ),
    )
    result = trainer.fit(train_loader, test_loader)
    print(f"training done: final accuracy {result.final_eval_accuracy:.3f}")

    # 3. Static accuracy vs horizon (Fig. 2) ------------------------------ #
    per_timestep = evaluate_per_timestep_accuracy(model, test_loader, timesteps=args.timesteps)
    for t, accuracy in enumerate(per_timestep, start=1):
        print(f"  static SNN, T={t}: accuracy {accuracy:.3f}")

    # 4. DT-SNN threshold calibration (iso-accuracy operating point) ------ #
    collected = collect_cumulative_logits(model, test_loader, timesteps=args.timesteps)
    point = calibrate_threshold(collected["logits"], collected["labels"], tolerance=0.005)
    print(f"DT-SNN: threshold {point.threshold:.3f} -> accuracy {point.accuracy:.3f} "
          f"with {point.average_timesteps:.2f} average timesteps")
    for t, fraction in enumerate(point.timestep_fractions, start=1):
        print(f"  exits at T={t}: {100 * fraction:.1f}% of inputs")

    # 5. Hardware savings on the IMC chip (Table II / Fig. 4) ------------- #
    chip = IMCChip.from_network(model, test.inputs[:4], num_classes=dataset.num_classes)
    report = account_result(point.result, chip)
    comparison = compare_to_static(report, chip, static_timesteps=args.timesteps,
                                   static_accuracy=per_timestep[-1])
    print(f"normalized energy vs static T={args.timesteps}: "
          f"{comparison['normalized_energy']:.2f}x")
    print(f"normalized EDP    vs static T={args.timesteps}: "
          f"{comparison['normalized_edp']:.2f}x "
          f"({comparison['edp_reduction_percent']:.1f}% reduction)")


if __name__ == "__main__":
    main()
