"""Device-variation study: DT-SNN accuracy on non-ideal RRAM crossbars (Fig. 6B).

Trains one spiking network and evaluates it under increasing RRAM conductance
variation (0%, 10%, 20%, 30%), reporting for each noise level the static
accuracy per horizon and the DT-SNN iso-accuracy operating point.  The paper's
Fig. 6(B) corresponds to the 20% column.

Run with:  python examples/device_variation_study.py [--sigmas 0 0.1 0.2 0.3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DataLoader,
    Trainer,
    TrainingConfig,
    calibrate_threshold,
    make_cifar10_like,
    seed_everything,
    spiking_vgg,
    train_test_split,
    with_device_variation,
)
from repro.imc import format_table
from repro.training import collect_cumulative_logits


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--samples", type=int, default=400)
    parser.add_argument("--image-size", type=int, default=10)
    parser.add_argument("--timesteps", type=int, default=4)
    parser.add_argument("--sigmas", type=float, nargs="+", default=[0.0, 0.1, 0.2, 0.3],
                        help="conductance variation levels (sigma/mu)")
    parser.add_argument("--trials", type=int, default=3,
                        help="noise draws averaged per sigma")
    parser.add_argument("--seed", type=int, default=9)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    seed_everything(args.seed)

    dataset = make_cifar10_like(num_samples=args.samples, image_size=args.image_size)
    train, test = train_test_split(dataset, 0.25, seed=1)
    model = spiking_vgg("tiny", num_classes=dataset.num_classes,
                        input_size=args.image_size, default_timesteps=args.timesteps)
    Trainer(
        model,
        TrainingConfig(epochs=args.epochs, timesteps=args.timesteps,
                       learning_rate=0.15, loss="per_timestep"),
    ).fit(DataLoader(train, batch_size=32, seed=2))
    loader = DataLoader(test, batch_size=64, shuffle=False)

    rows = []
    for sigma in args.sigmas:
        static_accuracies = []
        dynamic_accuracies = []
        dynamic_timesteps = []
        for trial in range(args.trials if sigma > 0 else 1):
            with with_device_variation(model, sigma=sigma, seed=100 + trial):
                collected = collect_cumulative_logits(model, loader, timesteps=args.timesteps)
            logits, labels = collected["logits"], collected["labels"]
            static_accuracies.append(float(np.mean(np.argmax(logits[-1], -1) == labels)))
            point = calibrate_threshold(logits, labels, tolerance=0.01)
            dynamic_accuracies.append(point.accuracy)
            dynamic_timesteps.append(point.average_timesteps)
        rows.append([
            f"{sigma:.0%}",
            100 * float(np.mean(static_accuracies)),
            100 * float(np.mean(dynamic_accuracies)),
            float(np.mean(dynamic_timesteps)),
        ])

    print()
    print(format_table(
        ["conductance variation", f"static acc @T={args.timesteps} (%)",
         "DT-SNN acc (%)", "DT-SNN avg T"],
        rows, title="Accuracy under RRAM device variation (Fig. 6B)", float_format="{:.2f}"))
    print("\nExpected shape: accuracy degrades gracefully as variation grows, and "
          "DT-SNN keeps matching the static accuracy with fewer average timesteps.")


if __name__ == "__main__":
    main()
