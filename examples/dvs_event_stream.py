"""Event-stream (CIFAR10-DVS-style) workload: DT-SNN on temporally varying input.

The paper's fourth benchmark is CIFAR10-DVS, an event-camera dataset where the
input itself changes every timestep and static SNNs use T = 10.  This example
generates the synthetic event-stream substitute, trains a spiking VGG with the
event-frame encoder, and shows that DT-SNN cuts the average number of
processed frames roughly in half at iso-accuracy — the Table II CIFAR10-DVS
row (10 -> ~5 timesteps, ~0.5x energy).

Run with:  python examples/dvs_event_stream.py [--frames 10] [--epochs 6]
"""

from __future__ import annotations

import argparse

from repro import (
    DataLoader,
    IMCChip,
    Trainer,
    TrainingConfig,
    account_result,
    calibrate_threshold,
    compare_to_static,
    make_dvs_like,
    seed_everything,
    spiking_vgg,
    train_test_split,
)
from repro.data import SyntheticDVSConfig
from repro.snn import EventFrameEncoder
from repro.training import collect_cumulative_logits, evaluate_per_timestep_accuracy


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=10, help="event frames per sample (paper: 10)")
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--samples", type=int, default=320)
    parser.add_argument("--classes", type=int, default=8)
    parser.add_argument("--image-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    seed_everything(args.seed)

    dataset = make_dvs_like(
        SyntheticDVSConfig(
            num_classes=args.classes,
            num_samples=args.samples,
            num_frames=args.frames,
            image_size=args.image_size,
        )
    )
    train, test = train_test_split(dataset, 0.25, seed=1)
    print(f"event streams: {dataset.inputs.shape} (N, T, polarity, H, W), "
          f"mean event rate {dataset.inputs.mean():.3f}")

    model = spiking_vgg(
        "tiny",
        num_classes=args.classes,
        in_channels=2,                      # ON / OFF polarities
        input_size=args.image_size,
        default_timesteps=args.frames,
        encoder=EventFrameEncoder(),        # one event frame per timestep
    )
    Trainer(
        model,
        TrainingConfig(epochs=args.epochs, timesteps=args.frames, learning_rate=0.1,
                       loss="per_timestep"),
    ).fit(DataLoader(train, batch_size=32, seed=2))

    test_loader = DataLoader(test, batch_size=64, shuffle=False)
    per_timestep = evaluate_per_timestep_accuracy(model, test_loader, timesteps=args.frames)
    print("\nstatic accuracy vs number of processed event frames:")
    for t, accuracy in enumerate(per_timestep, start=1):
        print(f"  T={t:2d}: {accuracy:.3f}")

    collected = collect_cumulative_logits(model, test_loader, timesteps=args.frames)
    point = calibrate_threshold(collected["logits"], collected["labels"], tolerance=0.005)
    print(f"\nDT-SNN: accuracy {point.accuracy:.3f} at {point.average_timesteps:.2f} "
          f"average frames (static uses {args.frames})")

    chip = IMCChip.from_network(model, test.inputs[:2], num_classes=args.classes)
    report = account_result(point.result, chip)
    comparison = compare_to_static(report, chip, static_timesteps=args.frames,
                                   static_accuracy=per_timestep[-1])
    print(f"normalized energy: {comparison['normalized_energy']:.2f}x, "
          f"normalized EDP: {comparison['normalized_edp']:.2f}x "
          f"(paper CIFAR10-DVS row: ~0.54x energy, ~0.36x EDP)")


if __name__ == "__main__":
    main()
