"""IMC energy analysis: map a spiking network onto the RRAM chip and study costs.

This example reproduces the hardware-side analysis of the paper interactively:

* map a spiking VGG onto the tiled 64x64 4-bit RRAM architecture (Table I),
* print the crossbar/PE/tile occupancy of every layer,
* print the Fig. 1(A) component-wise energy breakdown,
* print the Fig. 1(B) energy/latency scaling with the number of timesteps,
* quantify the sigma-E exit-module overhead (Sec. III-B),
* sweep the entropy threshold and print the accuracy-vs-EDP trade-off curve
  of Fig. 5 for a freshly trained model.

Run with:  python examples/imc_energy_analysis.py [--epochs 5]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DataLoader,
    IMCChip,
    Trainer,
    TrainingConfig,
    account_result,
    make_cifar10_like,
    seed_everything,
    spiking_vgg,
    sweep_thresholds,
    train_test_split,
)
from repro.imc import format_breakdown, format_table
from repro.training import collect_cumulative_logits


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--samples", type=int, default=360)
    parser.add_argument("--image-size", type=int, default=10)
    parser.add_argument("--timesteps", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    seed_everything(args.seed)

    dataset = make_cifar10_like(num_samples=args.samples, image_size=args.image_size)
    train, test = train_test_split(dataset, 0.25, seed=1)
    model = spiking_vgg(
        "tiny", num_classes=dataset.num_classes, input_size=args.image_size,
        default_timesteps=args.timesteps,
    )
    Trainer(
        model,
        TrainingConfig(epochs=args.epochs, timesteps=args.timesteps, learning_rate=0.15,
                       loss="per_timestep"),
    ).fit(DataLoader(train, batch_size=32, seed=2))

    # ---- mapping -------------------------------------------------------- #
    chip = IMCChip.from_network(model, test.inputs[:4], num_classes=dataset.num_classes)
    print("\nLayer-by-layer mapping onto the IMC chip")
    rows = []
    for layer in chip.mapping.layers:
        geometry = layer.geometry
        rows.append([
            geometry.name, geometry.kind, geometry.weight_rows, geometry.weight_cols,
            layer.num_crossbars, layer.num_pes, layer.num_tiles,
            f"{geometry.input_activity:.2f}",
        ])
    print(format_table(
        ["layer", "kind", "rows", "cols", "crossbars", "PEs", "tiles", "input activity"], rows))
    print(f"\ntotal crossbars: {chip.mapping.total_crossbars}, "
          f"PEs: {chip.mapping.total_pes}, tiles: {chip.mapping.total_tiles}")

    # ---- Fig. 1(A): component breakdown --------------------------------- #
    print()
    print(format_breakdown(chip.energy_breakdown_shares(),
                           title="Per-timestep dynamic energy breakdown (Fig. 1A)"))

    # ---- Fig. 1(B): scaling with timesteps ------------------------------ #
    energy_curve = chip.normalized_energy_curve(8)
    latency_curve = chip.normalized_latency_curve(8)
    rows = [[t, energy_curve[t], latency_curve[t]] for t in range(1, 9)]
    print()
    print(format_table(["T", "normalized energy", "normalized latency"], rows,
                       title="Energy/latency vs timesteps (Fig. 1B)", float_format="{:.2f}"))

    # ---- sigma-E overhead (Sec. III-B) ----------------------------------- #
    print(f"\nsigma-E module energy per exit check: {chip.sigma_e.energy_per_check():.2f} pJ "
          f"({chip.sigma_e_overhead():.2e} of one timestep)")

    # ---- Fig. 5: accuracy-EDP trade-off ---------------------------------- #
    loader = DataLoader(test, batch_size=64, shuffle=False)
    collected = collect_cumulative_logits(model, loader, timesteps=args.timesteps)
    baseline_edp = chip.edp(1)
    rows = []
    for t in range(1, args.timesteps + 1):
        accuracy = float(np.mean(np.argmax(collected["logits"][t - 1], -1) == collected["labels"]))
        rows.append(["static", f"T={t}", 100 * accuracy, chip.edp(t) / baseline_edp])
    for point in sweep_thresholds(collected["logits"], collected["labels"], [0.05, 0.2, 0.5]):
        report = account_result(point.result, chip)
        rows.append(["DT-SNN", f"theta={point.threshold}", 100 * point.accuracy,
                     report.mean_edp / baseline_edp])
    print()
    print(format_table(["method", "point", "accuracy (%)", "EDP (x of static T=1)"], rows,
                       title="Accuracy vs EDP (Fig. 5)", float_format="{:.2f}"))


if __name__ == "__main__":
    main()
