"""Threshold tuning: how the entropy threshold theta trades accuracy for efficiency.

DT-SNN has a single inference-time knob: the entropy threshold of Eq. 8.
This example trains one model and then explores that knob without any
retraining:

* sweep theta over a grid and print accuracy / average-T / exit distribution,
* calibrate theta automatically to hit (a) iso-accuracy with the static SNN
  and (b) a user-specified accuracy target,
* compare the entropy signal against max-probability and margin exit signals
  at matched accuracy (the DESIGN.md exit-policy ablation).

Run with:  python examples/threshold_tuning.py [--target-accuracy 0.9]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DataLoader,
    Trainer,
    TrainingConfig,
    calibrate_threshold,
    make_cifar10_like,
    seed_everything,
    spiking_vgg,
    sweep_thresholds,
    train_test_split,
)
from repro.core import ConfidenceExitPolicy, MarginExitPolicy, default_threshold_grid
from repro.imc import format_table
from repro.training import collect_cumulative_logits


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--samples", type=int, default=400)
    parser.add_argument("--image-size", type=int, default=10)
    parser.add_argument("--timesteps", type=int, default=4)
    parser.add_argument("--target-accuracy", type=float, default=None,
                        help="optional explicit accuracy target for calibration")
    parser.add_argument("--seed", type=int, default=5)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    seed_everything(args.seed)

    dataset = make_cifar10_like(num_samples=args.samples, image_size=args.image_size)
    train, test = train_test_split(dataset, 0.25, seed=1)
    model = spiking_vgg("tiny", num_classes=dataset.num_classes,
                        input_size=args.image_size, default_timesteps=args.timesteps)
    Trainer(
        model,
        TrainingConfig(epochs=args.epochs, timesteps=args.timesteps,
                       learning_rate=0.15, loss="per_timestep"),
    ).fit(DataLoader(train, batch_size=32, seed=2))

    loader = DataLoader(test, batch_size=64, shuffle=False)
    collected = collect_cumulative_logits(model, loader, timesteps=args.timesteps)
    logits, labels = collected["logits"], collected["labels"]
    static_accuracy = float(np.mean(np.argmax(logits[-1], -1) == labels))
    print(f"static SNN accuracy at T={args.timesteps}: {static_accuracy:.3f}")

    # ---- threshold sweep ------------------------------------------------- #
    grid = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9]
    rows = []
    for point in sweep_thresholds(logits, labels, grid):
        rows.append([point.threshold, 100 * point.accuracy, point.average_timesteps]
                    + [f"{100 * f:.0f}%" for f in point.timestep_fractions])
    print()
    print(format_table(
        ["theta", "accuracy (%)", "avg T"] + [f"T={t}" for t in range(1, args.timesteps + 1)],
        rows, title="Entropy-threshold sweep", float_format="{:.2f}"))

    # ---- automatic calibration ------------------------------------------- #
    iso = calibrate_threshold(logits, labels, tolerance=0.0)
    print(f"\niso-accuracy calibration: theta={iso.threshold:.3f} "
          f"-> accuracy {iso.accuracy:.3f}, avg T {iso.average_timesteps:.2f}")
    if args.target_accuracy is not None:
        targeted = calibrate_threshold(logits, labels, target_accuracy=args.target_accuracy)
        print(f"target-accuracy {args.target_accuracy:.3f} calibration: "
              f"theta={targeted.threshold:.3f} -> accuracy {targeted.accuracy:.3f}, "
              f"avg T {targeted.average_timesteps:.2f}")

    # ---- alternative exit signals ----------------------------------------- #
    print("\nalternative exit signals at iso-accuracy:")
    rows = [["entropy (paper)", iso.threshold, 100 * iso.accuracy, iso.average_timesteps]]
    confidence = calibrate_threshold(
        logits, labels, tolerance=0.0,
        thresholds=1.0 - default_threshold_grid(25, 0.002, 0.6)[::-1],
        policy_cls=ConfidenceExitPolicy,
    )
    margin = calibrate_threshold(
        logits, labels, tolerance=0.0,
        thresholds=np.linspace(0.05, 0.95, 25), policy_cls=MarginExitPolicy,
    )
    rows.append(["max probability", confidence.threshold, 100 * confidence.accuracy,
                 confidence.average_timesteps])
    rows.append(["top-1/top-2 margin", margin.threshold, 100 * margin.accuracy,
                 margin.average_timesteps])
    print(format_table(["exit signal", "threshold", "accuracy (%)", "avg T"], rows,
                       float_format="{:.3f}"))


if __name__ == "__main__":
    main()
