"""Fig. 2 — accuracy of a spiking VGG versus the number of inference timesteps.

The paper evaluates spiking VGG-16 at T = 1..4 on CIFAR-10 (76.3 -> 93.17),
CIFAR-100 (61.35 -> 72.29) and TinyImageNet (48.46 -> 58.48): accuracy rises
monotonically with the horizon and most of the gain arrives by T = 2.  The
regenerated figure uses the benchmark-scale synthetic stand-ins; the claim
under test is the shape (monotone rise, diminishing returns), not the
absolute numbers.
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import format_table


PAPER_VGG16 = {
    "cifar10": [76.3, 91.34, 92.54, 93.17],
    "cifar100": [61.35, 69.39, 71.43, 72.29],
    "tinyimagenet": [48.46, 55.59, 57.27, 58.48],
}

DATASETS = ["cifar10", "cifar100", "tinyimagenet"]


def test_fig2_accuracy_vs_timesteps(benchmark, suite):
    # Fig. 2 uses a static SNN trained with the ordinary loss (Eq. 9).
    experiments = {name: suite.get("vgg", name, loss_name="final") for name in DATASETS}

    def collect():
        return {name: exp.per_timestep_accuracy for name, exp in experiments.items()}

    accuracy = benchmark(collect)

    print_section("Fig. 2 — Accuracy vs #timesteps (spiking VGG, loss Eq. 9)")
    rows = []
    for name in DATASETS:
        repo = accuracy[name]
        paper = PAPER_VGG16[name]
        for t in range(len(repo)):
            rows.append([name, t + 1, 100.0 * repo[t], paper[t]])
    emit(format_table(["dataset", "T", "accuracy repo (%)", "accuracy paper (%)"], rows,
                      float_format="{:.2f}"))

    for name in DATASETS:
        series = accuracy[name]
        # Accuracy benefits from more timesteps: some later horizon matches or
        # beats T=1, and the full horizon stays within noise of it.  (At
        # benchmark scale the easy CIFAR-10-like task can already saturate at
        # T=1, so the rise is pronounced only on the harder datasets — see
        # EXPERIMENTS.md.)
        assert max(series[1:]) >= series[0] - 0.02
        assert series[-1] >= series[0] - 0.03
        chance = 1.0 / experiments[name].num_classes
        assert series[-1] > 2.0 * chance
    # Harder datasets (more classes, lower contrast, more clutter) score lower
    # at the full horizon, preserving the paper's CIFAR10 > CIFAR100 >
    # TinyImageNet ordering (small tolerance for run-to-run noise at this scale).
    assert accuracy["cifar10"][-1] >= accuracy["cifar100"][-1] - 0.05
    assert accuracy["cifar10"][-1] >= accuracy["tinyimagenet"][-1] - 0.05
    assert accuracy["cifar100"][-1] >= accuracy["tinyimagenet"][-1] - 0.05
