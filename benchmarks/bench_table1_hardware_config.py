"""Table I — hardware implementation parameters.

Regenerates the configuration table of the IMC architecture and checks that
the defaults used throughout the benchmark harness are exactly the paper's
Table I values.
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import HardwareConfig, format_table


PAPER_TABLE_I = {
    "Technology": "32nm CMOS",
    "Crossbar size & crossbars/tile": "64 & 64",
    "Device & weight precision": "4-bit RRAM (sigma/mu=20%) & 8-bit",
    "Roff/Ron": "10 at Ron=20kOhm",
    "GB, Tile & PE buffer size": "20KB, 10KB & 5KB",
    "VDD & Vread": "0.9V & 0.1V",
    "sigma & E LUT size": "3KB & 3KB",
}


def test_table1_hardware_configuration(benchmark):
    config = benchmark(HardwareConfig.paper_default)

    rows = [
        ["Technology", f"{config.technology_nm}nm CMOS", PAPER_TABLE_I["Technology"]],
        [
            "Crossbar size & crossbars/tile",
            f"{config.crossbar_size} & {config.crossbars_per_tile}",
            PAPER_TABLE_I["Crossbar size & crossbars/tile"],
        ],
        [
            "Device & weight precision",
            f"{config.device_bits}-bit RRAM (sigma/mu={config.device_variation_sigma:.0%}) & "
            f"{config.weight_bits}-bit",
            PAPER_TABLE_I["Device & weight precision"],
        ],
        [
            "Roff/Ron",
            f"{config.r_off_on_ratio:.0f} at Ron={config.r_on_ohm / 1e3:.0f}kOhm",
            PAPER_TABLE_I["Roff/Ron"],
        ],
        [
            "GB, Tile & PE buffer size",
            f"{config.global_buffer_kb:.0f}KB, {config.tile_buffer_kb:.0f}KB & "
            f"{config.pe_buffer_kb:.0f}KB",
            PAPER_TABLE_I["GB, Tile & PE buffer size"],
        ],
        [
            "VDD & Vread",
            f"{config.vdd}V & {config.v_read}V",
            PAPER_TABLE_I["VDD & Vread"],
        ],
        [
            "sigma & E LUT size",
            f"{config.sigma_lut_kb:.0f}KB & {config.entropy_lut_kb:.0f}KB",
            PAPER_TABLE_I["sigma & E LUT size"],
        ],
    ]
    print_section("Table I — Hardware implementation parameters")
    emit(format_table(["parameter", "this repo", "paper"], rows))

    # The reproduction must use exactly the paper's parameters.
    for _, ours, paper in rows:
        assert ours.replace(" ", "") == paper.replace(" ", "")
