"""Event-stream (DVS replay) serving — the content-keyed stem cache engaging.

Direct-encoding serve traffic has always had its conv1+norm1 stem cached per
slot (the frame is constant over a sample's horizon).  Event-stream encoders
break that assumption — every timestep sees a different frame — so until now
DVS serving paid the full stem on every step.  The content-keyed stem memo
(:class:`repro.runtime.StemCache`) restores the skip for *replayed* clips:
frames are memoized by their exact bytes, so the second time any clip's
timestep-t frame passes through the server — same request, a retry, or a
popular clip requested by another client — its stem rows are assembled from
cache instead of recomputed.

The benchmark serves the same deterministic DVS request stream (which wraps
around the test set, i.e. every pass after the first is pure replay) twice:

* cold  — memo disabled (``encoder.frame_cacheable = False``), the pre-PR
  behaviour;
* warm  — memo enabled, after a priming pass that fills the cache the way
  live traffic would.

Assertions: the warm run's decisions are identical to the cold run's (the
cache must be bitwise-invisible), the memo actually engages (hit rate > 50%
on replayed traffic), and warm throughput beats cold throughput (wall-clock,
skipped in smoke mode).
"""

import numpy as np

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.core import EntropyExitPolicy
from repro.imc import format_table
from repro.runtime import plan_for
from repro.serve import LoadGenerator, Server, request_stream

NUM_REQUESTS = 120
BATCH_WIDTH = 8
STREAM_SEED = 29


def _serve(experiment, threshold, stream):
    server = Server(
        experiment.model,
        EntropyExitPolicy(threshold),
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        queue_capacity=64,
    ).start()
    report = LoadGenerator(server).run(iter(stream))
    server.shutdown(drain=True)
    return report, server.stats()


def test_serve_event_stream_stem_cache(benchmark, suite):
    experiment = suite.get("vgg", "cifar10dvs")
    model = experiment.model
    model.eval()
    encoder = model.encoder
    point = experiment.calibrated_point(tolerance=0.0)
    stream = list(
        request_stream(experiment.test_dataset, NUM_REQUESTS, seed=STREAM_SEED)
    )

    def run():
        # Cold: the pre-PR configuration — no memo attached to executors.
        encoder.frame_cacheable = False
        cold_report, cold_stats = _serve(experiment, point.threshold, stream)

        # Warm: memo on; one priming pass fills it, the measured pass replays.
        encoder.frame_cacheable = True
        plan = plan_for(model)
        plan.stem_cache.clear()
        _serve(experiment, point.threshold, stream)
        hits_before, misses_before = plan.stem_cache.hits, plan.stem_cache.misses
        warm_report, warm_stats = _serve(experiment, point.threshold, stream)
        hit_rate = (plan.stem_cache.hits - hits_before) / max(
            1,
            (plan.stem_cache.hits - hits_before)
            + (plan.stem_cache.misses - misses_before),
        )
        return cold_report, cold_stats, warm_report, warm_stats, hit_rate

    cold_report, cold_stats, warm_report, warm_stats, hit_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print_section("Event-stream serving (DVS replay) — content-keyed stem cache")
    rows = []
    for name, report, stats in (
        ("cold (no stem memo)", cold_report, cold_stats),
        ("warm (memo, replayed)", warm_report, warm_stats),
    ):
        rows.append([
            name,
            report.throughput_rps,
            1000.0 * stats.get("latency_p50", 0.0),
            1000.0 * stats.get("latency_p95", 0.0),
            report.average_exit_timesteps(),
            100.0 * (report.accuracy() or 0.0),
        ])
    emit(format_table(
        ["configuration", "req/s", "p50 (ms)", "p95 (ms)", "avg T", "accuracy (%)"],
        rows, float_format="{:.2f}"))
    emit(f"\nstem-memo hit rate on replayed traffic: {100.0 * hit_rate:.1f}% "
         f"({len(plan_for(model).stem_cache)} cached frames)")
    speedup = warm_report.throughput_rps / max(1e-9, cold_report.throughput_rps)
    emit(f"replayed-clip serve speedup: {speedup:.2f}x "
         f"({cold_report.throughput_rps:.1f} -> {warm_report.throughput_rps:.1f} req/s)")
    emit_bench_json("serve_event_stream", {
        "num_requests": NUM_REQUESTS,
        "cold": {
            "throughput_rps": cold_report.throughput_rps,
            "latency_p95_ms": 1000.0 * cold_stats.get("latency_p95", 0.0),
        },
        "warm": {
            "throughput_rps": warm_report.throughput_rps,
            "latency_p95_ms": 1000.0 * warm_stats.get("latency_p95", 0.0),
        },
        "stem_memo_hit_rate": hit_rate,
        "speedup": speedup,
    })

    # The cache must be bitwise-invisible to every decision.
    cold = {r.request_id: (r.prediction, r.exit_timestep) for r in cold_report.results}
    warm = {r.request_id: (r.prediction, r.exit_timestep) for r in warm_report.results}
    assert cold == warm, "stem memo changed a serving decision"
    assert cold_report.completed == warm_report.completed == NUM_REQUESTS
    # The memo must actually engage on replayed clips.
    assert hit_rate > 0.5, f"stem memo barely engaged (hit rate {hit_rate:.2%})"

    if SMOKE:
        return
    assert warm_report.throughput_rps > cold_report.throughput_rps, (
        "stem memo failed to lift replayed event-stream throughput"
    )
