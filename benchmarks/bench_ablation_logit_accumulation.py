"""Ablation — exit decision on accumulated (running-mean) vs instantaneous logits.

Eq. 5 and Eq. 8 of the paper apply the entropy test to the *accumulated*
output ``f_t(x)`` (the running mean of the classifier outputs).  An obvious
alternative is to test the instantaneous timestep output ``o_t`` instead.
This ablation calibrates both variants to iso-accuracy and compares the
average timesteps: accumulation smooths out single-timestep noise and is
expected to exit at least as reliably.
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import calibrate_threshold
from repro.imc import format_table
from repro.training import collect_cumulative_logits


def instantaneous_from_cumulative(cumulative: np.ndarray) -> np.ndarray:
    """Recover per-timestep outputs o_t from running means f_t."""
    instantaneous = np.empty_like(cumulative)
    instantaneous[0] = cumulative[0]
    for t in range(1, cumulative.shape[0]):
        instantaneous[t] = (t + 1) * cumulative[t] - t * cumulative[t - 1]
    return instantaneous


def test_ablation_accumulated_vs_instantaneous_exit_signal(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    cumulative = experiment.cumulative_logits
    labels = experiment.labels

    def run():
        accumulated_point = calibrate_threshold(cumulative, labels, tolerance=0.005)
        instantaneous = instantaneous_from_cumulative(cumulative)
        # Exit signal computed on o_t, but the *prediction* made at exit uses
        # whatever that variant saw — i.e. the instantaneous logits.
        instantaneous_point = calibrate_threshold(instantaneous, labels, tolerance=0.005)
        return accumulated_point, instantaneous_point

    accumulated_point, instantaneous_point = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Ablation — accumulated vs instantaneous logits for the exit decision")
    rows = [
        [
            "accumulated f_t (paper, Eq. 5)",
            100.0 * accumulated_point.accuracy,
            accumulated_point.average_timesteps,
        ],
        [
            "instantaneous o_t",
            100.0 * instantaneous_point.accuracy,
            instantaneous_point.average_timesteps,
        ],
    ]
    emit(format_table(["exit signal input", "accuracy (%)", "avg timesteps"], rows,
                      float_format="{:.3f}"))

    # Both are calibrated to preserve their own full-horizon accuracy...
    assert accumulated_point.accuracy >= experiment.static_accuracy - 0.005
    # ...and the accumulated variant never needs meaningfully more timesteps
    # while reaching at least the same accuracy as the instantaneous variant.
    assert accumulated_point.accuracy >= instantaneous_point.accuracy - 0.01
