"""Serving throughput — static-T vs DT-SNN continuous batching.

The paper's Table III shows DT-SNN lifting batch-1 throughput on a digital
processor because most samples exit after one or two timesteps.  This
benchmark makes the same comparison at the *serving* layer: the
``repro.serve`` continuous batcher refills slots freed by early exits
mid-horizon, so the SNN forward always runs at full occupancy and the saved
timesteps become extra requests per second.

Both runs serve the identical deterministic request stream on the same
trained model and the same batch width; only the exit policy differs:

* static  — :class:`StaticExitPolicy` (every request runs the full horizon),
* dynamic — :class:`EntropyExitPolicy` at the iso-accuracy calibrated
  threshold (accuracy within tolerance of the static baseline by
  construction).

Assertions (the acceptance criteria of the serving subsystem):

1. DT-SNN continuous batching achieves strictly higher requests/second,
2. at equal accuracy (the calibrated iso-accuracy operating point),
3. and the serve-path predictions / exit timesteps are bitwise-identical to
   :meth:`DynamicTimestepInference.infer_from_logits` on the same inputs.
"""

import numpy as np
import pytest

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.core import DynamicTimestepInference, EntropyExitPolicy, StaticExitPolicy
from repro.imc import format_table
from repro.serve import LoadGenerator, Server, request_stream

NUM_REQUESTS = 192
BATCH_WIDTH = 8
STREAM_SEED = 17


def _serve_stream(experiment, policy, stream):
    server = Server(
        experiment.model,
        policy,
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        queue_capacity=64,
    ).start()
    report = LoadGenerator(server).run(iter(stream))
    server.shutdown(drain=True)
    engine = server.batchers[0].engine
    return report, server.stats(), engine.total_sample_timesteps


def test_serve_throughput_static_vs_dtsnn(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    point = experiment.calibrated_point(tolerance=0.0)
    stream = list(
        request_stream(experiment.test_dataset, NUM_REQUESTS, seed=STREAM_SEED)
    )

    def run():
        static = _serve_stream(experiment, StaticExitPolicy(), stream)
        dynamic = _serve_stream(
            experiment, EntropyExitPolicy(threshold=point.threshold), stream
        )
        return static, dynamic

    (static_report, static_stats, static_work), (
        dynamic_report,
        dynamic_stats,
        dynamic_work,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Serving throughput — static-T vs DT-SNN continuous batching")
    rows = []
    for name, report, stats, work in (
        (f"static T={experiment.timesteps}", static_report, static_stats, static_work),
        (f"DT-SNN θ={point.threshold:.3f}", dynamic_report, dynamic_stats, dynamic_work),
    ):
        rows.append([
            name,
            report.throughput_rps,
            1000.0 * stats.get("latency_p50", 0.0),
            1000.0 * stats.get("latency_p95", 0.0),
            report.average_exit_timesteps(),
            100.0 * (report.accuracy() or 0.0),
            float(work),
        ])
    emit(format_table(
        ["policy", "req/s", "p50 (ms)", "p95 (ms)", "avg T",
         "accuracy (%)", "sample-timesteps"],
        rows, float_format="{:.2f}"))
    speedup = dynamic_report.throughput_rps / static_report.throughput_rps
    emit(f"\ncontinuous-batching speedup: {speedup:.2f}x "
         f"({static_report.throughput_rps:.1f} -> {dynamic_report.throughput_rps:.1f} req/s); "
         f"SNN forward work reduced {static_work / max(1, dynamic_work):.2f}x")
    emit("Paper reference (Table III, VGG-16 RTX 2080Ti): static T=4 64.3 img/s, "
         "DT-SNN avg T=1.46 142.0 img/s (2.2x)")
    emit_bench_json("serve_throughput", {
        "composition": {"workers": 1, "replicas": 0, "batch_width": BATCH_WIDTH},
        "num_requests": NUM_REQUESTS,
        "static": {
            "throughput_rps": static_report.throughput_rps,
            "latency_p50_ms": 1000.0 * static_stats.get("latency_p50", 0.0),
            "latency_p95_ms": 1000.0 * static_stats.get("latency_p95", 0.0),
            "avg_exit_timesteps": static_report.average_exit_timesteps(),
            "accuracy": static_report.accuracy(),
            "sample_timesteps": float(static_work),
        },
        "dynamic": {
            "threshold": float(point.threshold),
            "throughput_rps": dynamic_report.throughput_rps,
            "latency_p50_ms": 1000.0 * dynamic_stats.get("latency_p50", 0.0),
            "latency_p95_ms": 1000.0 * dynamic_stats.get("latency_p95", 0.0),
            "avg_exit_timesteps": dynamic_report.average_exit_timesteps(),
            "accuracy": dynamic_report.accuracy(),
            "sample_timesteps": float(dynamic_work),
        },
        "speedup": speedup,
    })

    # (1) strictly higher requests/sec on identical traffic — a wall-clock
    # comparison, so smoke mode (noisy CI runners) skips it and keeps the
    # deterministic work-count and equivalence checks below.
    if not SMOKE:
        assert dynamic_report.throughput_rps > static_report.throughput_rps
    # it must come from doing less SNN work at full occupancy
    assert dynamic_work < static_work
    # (2) equal accuracy: the calibrated point can only match or beat static
    assert dynamic_report.accuracy() >= static_report.accuracy()

    # (3) bitwise equivalence with the cached-logits fast path
    order = np.array([r.request_id for r in dynamic_report.results])
    predictions = np.array([r.prediction for r in dynamic_report.results])[np.argsort(order)]
    exits = np.array([r.exit_timestep for r in dynamic_report.results])[np.argsort(order)]
    inputs = np.stack([sample for sample, _ in stream])
    chunks = [
        experiment.model.forward(inputs[start:start + 64], experiment.timesteps)
        .cumulative_numpy()
        for start in range(0, inputs.shape[0], 64)
    ]
    reference = DynamicTimestepInference(
        policy=EntropyExitPolicy(threshold=point.threshold),
        max_timesteps=experiment.timesteps,
    ).infer_from_logits(np.concatenate(chunks, axis=1))
    assert np.array_equal(predictions, reference.predictions)
    assert np.array_equal(exits, reference.exit_timesteps)
    emit("equivalence: serve-path predictions and exit timesteps bitwise-identical "
         "to infer_from_logits on the same stream")
