"""Fig. 4 — energy-delay-product of DT-SNN normalized to the static SNN.

The paper reports DT-SNN EDP of 19.1% / 33.2% / 38.8% / 35.7% (VGG-16) and
15.5% / 31.1% / 33.2% / 34.6% (ResNet-19) of the static-SNN EDP across the
four datasets, i.e. a 61%-81% reduction.  EDP is computed per sample (each
sample is priced at its own exit timestep) and then averaged.
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import account_result, compare_to_static
from repro.imc import format_table


PAPER_NORMALIZED_EDP = {
    ("vgg", "cifar10"): 19.1,
    ("vgg", "cifar100"): 33.2,
    ("vgg", "tinyimagenet"): 38.8,
    ("vgg", "cifar10dvs"): 35.7,
    ("resnet", "cifar10"): 15.5,
    ("resnet", "cifar100"): 31.1,
    ("resnet", "tinyimagenet"): 33.2,
    ("resnet", "cifar10dvs"): 34.6,
}


@pytest.mark.parametrize("architecture", ["vgg", "resnet"])
def test_fig4_normalized_edp(benchmark, suite, architecture):
    datasets = ["cifar10", "cifar100", "tinyimagenet", "cifar10dvs"]
    experiments = {name: suite.get(architecture, name) for name in datasets}

    def run():
        results = {}
        for name, experiment in experiments.items():
            chip = experiment.chip()
            point = experiment.calibrated_point(tolerance=0.01)
            report = account_result(point.result, chip)
            comparison = compare_to_static(report, chip, static_timesteps=experiment.timesteps)
            results[name] = comparison["normalized_edp"]
        return results

    normalized_edp = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section(f"Fig. 4 — Normalized EDP, DT-SNN vs static SNN ({architecture.upper()})")
    rows = [
        [name, 100.0 * normalized_edp[name], PAPER_NORMALIZED_EDP[(architecture, name)]]
        for name in datasets
    ]
    emit(format_table(["dataset", "EDP repo (% of static)", "EDP paper (%)"], rows,
                      float_format="{:.1f}"))

    # Shape claims.  The benchmark-scale VGG reaches paper-like confidence on
    # every dataset; the benchmark-scale ResNet is deliberately small and stays
    # under-trained on the two hardest synthetic datasets, so its saving there
    # is smaller than the paper's (EXPERIMENTS.md discusses this gap).
    per_dataset_bound = 0.85 if architecture == "vgg" else 1.0 + 1e-9
    mean_bound = 0.60 if architecture == "vgg" else 0.85
    for name in datasets:
        assert 0.0 < normalized_edp[name] <= per_dataset_bound
    assert np.mean(list(normalized_edp.values())) < mean_bound
    # CIFAR-10-like saving lands in the paper's reported ballpark.  (No
    # cross-dataset ordering is asserted: at benchmark scale the calibrated
    # operating points of the harder synthetic datasets can collapse to
    # near-total early exit at iso-accuracy — cifar100 already saved more
    # than cifar10 under the seed numerics — so the ordering is not a
    # stable property of these tiny models.)
    assert normalized_edp["cifar10"] < 0.6
