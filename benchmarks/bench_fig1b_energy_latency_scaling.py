"""Fig. 1(B) — normalized energy and latency versus the number of timesteps.

The paper measures (normalized to T=1): energy 1.0, 1.4, 2.0, 2.6, 3.2, 3.8,
4.4, 4.9 and latency 1..8 for T = 1..8, i.e. both scale linearly with the
number of timesteps with the energy curve having a ~40% static offset.
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import format_table


PAPER_ENERGY = {1: 1.0, 2: 1.4, 3: 2.0, 4: 2.6, 5: 3.2, 6: 3.8, 7: 4.4, 8: 4.9}
PAPER_LATENCY = {t: float(t) for t in range(1, 9)}


def test_fig1b_energy_latency_vs_timesteps(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    chip = experiment.chip()

    def compute_curves():
        return chip.normalized_energy_curve(8), chip.normalized_latency_curve(8)

    energy_curve, latency_curve = benchmark(compute_curves)

    rows = [
        [t, energy_curve[t], PAPER_ENERGY[t], latency_curve[t], PAPER_LATENCY[t]]
        for t in range(1, 9)
    ]
    print_section("Fig. 1(B) — Normalized energy / latency vs #timesteps")
    emit(
        format_table(
            ["T", "energy (repo)", "energy (paper)", "latency (repo)", "latency (paper)"],
            rows,
            float_format="{:.2f}",
        )
    )

    # Shape checks: monotone increase, linearity, endpoint magnitudes.
    for t in range(2, 9):
        assert energy_curve[t] > energy_curve[t - 1]
        assert latency_curve[t] > latency_curve[t - 1]
    # Latency is proportional to T (sequential, non-pipelined timesteps).
    assert latency_curve[8] == pytest.approx(8.0, rel=0.02)
    # Energy at T=8 lands near the paper's 4.9x (within ~10%).
    assert energy_curve[8] == pytest.approx(PAPER_ENERGY[8], rel=0.12)
    # Energy increments are constant (affine law), mirroring Fig. 1(B).
    increments = [energy_curve[t + 1] - energy_curve[t] for t in range(1, 8)]
    assert max(increments) - min(increments) < 1e-6
