"""Sec. III-B — energy overhead of the sigma-E (softmax + entropy) exit module.

The paper reports that one sigma-E evaluation costs about 2e-5 of a
one-timestep inference on the IMC chip, i.e. the exit decision is effectively
free.  This benchmark regenerates that ratio for the mapped spiking VGG and
also checks that the module's LUT contents fit the Table I 3 KB budgets and
that its area share is negligible.
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import format_table


PAPER_OVERHEAD = 2e-5


def test_sigma_e_module_overhead(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    chip = experiment.chip()

    def run():
        return {
            "energy_per_check_pj": chip.sigma_e.energy_per_check(),
            "one_timestep_energy_pj": chip.energy_model.per_timestep_energy(),
            "relative_overhead": chip.sigma_e_overhead(),
            "fits_lut_budget": chip.sigma_e.fits_lut_budget(),
            "area_fraction": chip.area_model.sigma_e_fraction(),
        }

    stats = benchmark(run)

    print_section("Sec. III-B — sigma-E exit-module overhead")
    rows = [
        ["sigma-E energy per check (pJ)", stats["energy_per_check_pj"], "-"],
        ["one-timestep inference energy (pJ)", stats["one_timestep_energy_pj"], "-"],
        ["relative energy overhead", stats["relative_overhead"], PAPER_OVERHEAD],
        ["LUT contents fit 3KB budget", stats["fits_lut_budget"], True],
        ["sigma-E share of chip area", stats["area_fraction"], "negligible"],
    ]
    emit(format_table(["quantity", "this repo", "paper"], rows, float_format="{:.3g}"))

    # The exit check must be a negligible fraction of one timestep's energy.
    # (Our benchmark-scale network is far smaller than VGG-16, so the ratio is
    # larger than the paper's 2e-5; the claim under test is "negligible".)
    assert stats["relative_overhead"] < 1e-2
    assert stats["fits_lut_budget"]
    assert stats["area_fraction"] < 0.1

    # At paper scale (VGG-16-sized layer dimensions) the ratio approaches the
    # reported order of magnitude: check with a full-width reference mapping.
    from repro.imc import ChipMapping, EnergyModel, HardwareConfig, LayerGeometry, SigmaEModuleModel

    config = HardwareConfig.paper_default()
    full_width_layers = [
        LayerGeometry("conv1", "conv", 3, 64, 3, 32 * 32, 0.9, 27, 64),
        LayerGeometry("conv2", "conv", 64, 64, 3, 32 * 32, 0.2, 576, 64),
        LayerGeometry("conv3", "conv", 64, 128, 3, 16 * 16, 0.2, 576, 128),
        LayerGeometry("conv4", "conv", 128, 128, 3, 16 * 16, 0.2, 1152, 128),
        LayerGeometry("conv5", "conv", 128, 256, 3, 8 * 8, 0.2, 1152, 256),
        LayerGeometry("conv6", "conv", 256, 256, 3, 8 * 8, 0.2, 2304, 256),
        LayerGeometry("conv7", "conv", 256, 512, 3, 4 * 4, 0.2, 2304, 512),
        LayerGeometry("conv8", "conv", 512, 512, 3, 4 * 4, 0.2, 4608, 512),
        LayerGeometry("fc", "linear", 512, 10, 1, 1, 0.2, 512, 10),
    ]
    mapping = ChipMapping.from_geometries(full_width_layers, config, input_pixels=3 * 32 * 32)
    paper_scale_ratio = SigmaEModuleModel(config, num_classes=10).relative_overhead(
        EnergyModel(mapping, config).per_timestep_energy()
    )
    emit(f"\nPaper-scale (VGG-16-width) sigma-E overhead from the analytical model: "
         f"{paper_scale_ratio:.2e} (paper: {PAPER_OVERHEAD:.0e})")
    assert paper_scale_ratio < 1e-4
