"""Pytest fixtures for the benchmark harness.

The heavy lifting (dataset synthesis, model training, chip calibration) lives
in :mod:`_bench_utils`; this conftest only wires it into pytest as a
session-scoped fixture and makes ``src/`` importable when the package is not
installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

from _bench_utils import ExperimentSuite  # noqa: E402


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    """Session-wide cache of trained benchmark experiments."""
    return ExperimentSuite()
