"""Fig. 7 — ablation of the training loss: Eq. 9 (final) vs Eq. 10 (per-timestep).

The paper trains spiking VGG-16 on CIFAR-10 with both losses: the per-timestep
loss lifts the T=1 accuracy from 76.3% to 91.5%, improves every horizon, and
shifts the DT-SNN exit distribution toward earlier exits (lower EDP).
"""

import pytest

from _bench_utils import emit, print_section
from repro.core import account_result
from repro.imc import format_table


PAPER_VGG16_CIFAR10 = {
    "final (Eq. 9)": {1: 76.3, 2: 91.34, 3: 92.54, 4: 93.17},
    "per_timestep (Eq. 10)": {1: 91.53, 2: 92.90, 3: 93.32, 4: 93.77},
}


def test_fig7_loss_function_ablation(benchmark, suite):
    eq9 = suite.get("vgg", "cifar10", loss_name="final")
    eq10 = suite.get("vgg", "cifar10", loss_name="per_timestep")

    def run():
        results = {}
        for name, experiment in (("final (Eq. 9)", eq9), ("per_timestep (Eq. 10)", eq10)):
            chip = experiment.chip()
            point = experiment.calibrated_point(tolerance=0.01)
            report = account_result(point.result, chip)
            results[name] = {
                "per_timestep_accuracy": experiment.per_timestep_accuracy,
                "dtsnn_average_timesteps": point.average_timesteps,
                "dtsnn_accuracy": point.accuracy,
                "dtsnn_edp": report.mean_edp / chip.edp(experiment.timesteps),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Fig. 7 — Training-loss ablation (Eq. 9 vs Eq. 10), spiking VGG")
    rows = []
    for name, payload in results.items():
        for t, acc in enumerate(payload["per_timestep_accuracy"], start=1):
            rows.append([name, f"T={t}", 100.0 * acc])
        rows.append(
            [
                name,
                f"DT-SNN (avg T={payload['dtsnn_average_timesteps']:.2f})",
                100.0 * payload["dtsnn_accuracy"],
            ]
        )
    emit(format_table(["training loss", "operating point", "accuracy repo (%)"], rows,
                      float_format="{:.2f}"))
    emit("\nPaper reference (CIFAR-10 VGG-16): "
         + "; ".join(f"{k}: {v}" for k, v in PAPER_VGG16_CIFAR10.items()))

    eq9_curve = results["final (Eq. 9)"]["per_timestep_accuracy"]
    eq10_curve = results["per_timestep (Eq. 10)"]["per_timestep_accuracy"]
    # Eq. 10 improves (or at least does not hurt) the early-timestep accuracy.
    assert eq10_curve[0] >= eq9_curve[0] - 0.02
    # And it does not sacrifice the full-horizon accuracy.
    assert eq10_curve[-1] >= eq9_curve[-1] - 0.03
    # DT-SNN trained with Eq. 10 needs no more timesteps than with Eq. 9
    # at its own iso-accuracy operating point (within measurement noise).
    assert (
        results["per_timestep (Eq. 10)"]["dtsnn_average_timesteps"]
        <= results["final (Eq. 9)"]["dtsnn_average_timesteps"] + 0.5
    )
