"""Table II — static SNN vs DT-SNN: timesteps, accuracy, normalized energy.

For VGG-16 and ResNet-19 on CIFAR-10 / CIFAR-100 / TinyImageNet / CIFAR10-DVS
the paper reports that DT-SNN needs 1.27–5.25 average timesteps (vs 4 or 10
for the static SNN) at iso-accuracy, cutting energy to 0.41x–0.60x.  This
benchmark regenerates the full table on the synthetic stand-ins: for every
(architecture, dataset) pair it calibrates the entropy threshold to match the
static accuracy and prices both models on the calibrated IMC chip.
"""

import pytest

from _bench_utils import emit, print_section
from repro.core import account_result, compare_to_static
from repro.imc import format_table


PAPER_ROWS = {
    ("vgg", "cifar10"): {"static_T": 4, "dt_T": 1.46, "energy": 0.46},
    ("vgg", "cifar100"): {"static_T": 4, "dt_T": 2.03, "energy": 0.56},
    ("vgg", "tinyimagenet"): {"static_T": 4, "dt_T": 2.14, "energy": 0.60},
    ("vgg", "cifar10dvs"): {"static_T": 10, "dt_T": 5.25, "energy": 0.54},
    ("resnet", "cifar10"): {"static_T": 4, "dt_T": 1.27, "energy": 0.41},
    ("resnet", "cifar100"): {"static_T": 4, "dt_T": 1.90, "energy": 0.53},
    ("resnet", "tinyimagenet"): {"static_T": 4, "dt_T": 2.01, "energy": 0.56},
    ("resnet", "cifar10dvs"): {"static_T": 10, "dt_T": 5.02, "energy": 0.52},
}

CONFIGS = list(PAPER_ROWS.keys())


@pytest.mark.parametrize("architecture,dataset", CONFIGS, ids=[f"{a}-{d}" for a, d in CONFIGS])
def test_table2_static_vs_dtsnn(benchmark, suite, architecture, dataset):
    experiment = suite.get(architecture, dataset)
    chip = experiment.chip()
    paper = PAPER_ROWS[(architecture, dataset)]

    def run():
        point = experiment.calibrated_point(tolerance=0.005)
        report = account_result(point.result, chip)
        comparison = compare_to_static(
            report,
            chip,
            static_timesteps=experiment.timesteps,
            static_accuracy=experiment.static_accuracy,
        )
        return point, comparison

    point, comparison = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section(f"Table II — {architecture.upper()} on {dataset} (static SNN vs DT-SNN)")
    rows = [
        [
            "static SNN",
            experiment.timesteps,
            100.0 * experiment.static_accuracy,
            1.0,
            f"T={paper['static_T']}",
            "1.00x",
        ],
        [
            "DT-SNN",
            round(point.average_timesteps, 2),
            100.0 * point.accuracy,
            comparison["normalized_energy"],
            f"T={paper['dt_T']}",
            f"{paper['energy']:.2f}x",
        ],
    ]
    emit(
        format_table(
            ["method", "T (repo)", "acc repo (%)", "energy repo (x)", "T (paper)", "energy (paper)"],
            rows,
            float_format="{:.2f}",
        )
    )

    # Shape assertions mirroring the paper's claims:
    # 1. iso-accuracy (within half a point of the static model);
    assert point.accuracy >= experiment.static_accuracy - 0.005
    # 2. fewer average timesteps than the static horizon;
    assert point.average_timesteps < experiment.timesteps
    # 3. an energy saving versus the static SNN.
    assert comparison["normalized_energy"] < 1.0
