"""Table III — batch-1 throughput on a general digital processor.

The paper measures images/second on an RTX 2080Ti: static SNN throughput
drops from 199.3 (T=1) to 64.3 (T=4) images/s for VGG-16, while DT-SNN with
1.46 average timesteps reaches 142 images/s at the 4-timestep accuracy.  Two
reproductions are reported here:

1. the analytic processor model fitted to the paper's measured static column
   (absolute numbers comparable to the paper), evaluated on this repo's
   regenerated exit-time distribution;
2. a wall-clock measurement of this repository's own NumPy inference engine
   (absolute numbers are CPU numbers; the claim is the shape).
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import format_table
from repro.processors import DigitalProcessorModel, WallClockProfiler


PAPER_VGG = {
    "static": {1: (76.30, 199.3), 2: (91.34, 121.8), 3: (92.54, 85.19), 4: (93.01, 64.34)},
    "dt-snn": {1.10: (93.01, 176.7), 1.46: (93.58, 142.0), 2.11: (93.71, 105.9)},
}


def test_table3_throughput_analytic_model(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    processor = DigitalProcessorModel()  # fitted to the paper's static VGG column

    def run():
        static_rows = [
            (t, experiment.per_timestep_accuracy[t - 1], processor.throughput(t))
            for t in range(1, experiment.timesteps + 1)
        ]
        dynamic_rows = []
        for point in experiment.threshold_sweep([0.05, 0.2, 0.5]):
            dynamic_rows.append(
                (
                    point.average_timesteps,
                    point.accuracy,
                    processor.dynamic_throughput(point.result),
                )
            )
        return static_rows, dynamic_rows

    static_rows, dynamic_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Table III — Throughput on a general digital processor (analytic model)")
    rows = [["static SNN", t, 100.0 * acc, thr] for t, acc, thr in static_rows]
    rows += [["DT-SNN", round(t, 2), 100.0 * acc, thr] for t, acc, thr in dynamic_rows]
    emit(format_table(["method", "T (avg)", "accuracy repo (%)", "images/s (model)"], rows,
                      float_format="{:.1f}"))
    emit("\nPaper reference (CIFAR10 VGG-16): "
         + "; ".join(f"T={t}: {acc}% @ {thr} img/s" for t, (acc, thr) in PAPER_VGG["static"].items())
         + " | DT-SNN "
         + "; ".join(f"T={t}: {acc}% @ {thr} img/s" for t, (acc, thr) in PAPER_VGG["dt-snn"].items()))

    # Static throughput decreases with T; every DT-SNN point beats the static
    # full-horizon throughput while keeping (near) full-horizon accuracy.
    static_throughputs = [thr for _, _, thr in static_rows]
    assert all(static_throughputs[i] > static_throughputs[i + 1] for i in range(len(static_throughputs) - 1))
    full_horizon_throughput = static_rows[-1][2]
    for avg_t, _, throughput in dynamic_rows:
        assert avg_t < experiment.timesteps
        assert throughput > full_horizon_throughput


def test_table3_throughput_wallclock(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    profiler = WallClockProfiler(experiment.model, max_timesteps=experiment.timesteps)
    inputs = experiment.test_dataset.inputs[:16]

    def run():
        static = {
            t: profiler.measure_static(inputs, t) for t in (1, experiment.timesteps)
        }
        dynamic = profiler.measure_dynamic(inputs, threshold=0.2)
        full_engine = profiler.measure_dynamic(inputs, threshold=0.0)
        return static, dynamic, full_engine

    static, dynamic, full_engine = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Table III (companion) — Wall-clock throughput of this repo's engine")
    rows = [
        ["static loop", t, m.images_per_second, m.mean_latency_ms]
        for t, m in sorted(static.items())
    ]
    rows.append(
        ["DT-SNN engine (theta=0.2)", round(dynamic.average_timesteps, 2),
         dynamic.images_per_second, dynamic.mean_latency_ms]
    )
    rows.append(
        ["DT-SNN engine (never exit)", round(full_engine.average_timesteps, 2),
         full_engine.images_per_second, full_engine.mean_latency_ms]
    )
    emit(format_table(["path", "T (avg)", "images/s", "latency (ms)"], rows, float_format="{:.2f}"))

    # Shape: one timestep is faster than four, and within the engine the
    # dynamic exit is faster than running the full horizon.
    assert static[1].images_per_second > static[experiment.timesteps].images_per_second
    assert dynamic.images_per_second > full_engine.images_per_second
    assert dynamic.average_timesteps < experiment.timesteps
