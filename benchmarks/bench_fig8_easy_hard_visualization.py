"""Fig. 8 — visualization of inputs classified at T=1 (easy) vs T=max (hard).

The paper shows that images exiting at the first timestep have a clear object
on a clean background while images needing the full horizon mix object and
background.  The synthetic generator records a per-sample difficulty value
(contrast/noise/clutter level), so the regenerated "figure" reports the mean
difficulty per exit group and renders ASCII thumbnails of the easiest and
hardest examples instead of image grids.
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import (
    DynamicTimestepInference,
    EntropyExitPolicy,
    ascii_thumbnail,
    stratify_by_exit_time,
    summarize_exit_groups,
)
from repro.imc import format_table


def test_fig8_easy_vs_hard_inputs(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    test = experiment.test_dataset

    def run():
        # A low threshold maximizes the separation between the groups, as the
        # paper does for its visualization.
        engine = DynamicTimestepInference(
            experiment.model, policy=EntropyExitPolicy(threshold=0.08), max_timesteps=experiment.timesteps
        )
        result = engine.infer(test.inputs, test.labels)
        return result, summarize_exit_groups(result, test.metadata)

    result, summaries = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Fig. 8 — Easy (exit at T=1) vs hard (exit at T=max) inputs")
    rows = [
        [
            f"T={s.timestep}",
            s.count,
            100.0 * s.fraction,
            "-" if s.mean_difficulty is None or np.isnan(s.mean_difficulty) else s.mean_difficulty,
            "-" if np.isnan(s.accuracy) else 100.0 * s.accuracy,
        ]
        for s in summaries
    ]
    emit(format_table(["exit", "count", "share (%)", "mean difficulty", "accuracy (%)"],
                      rows, float_format="{:.2f}"))

    groups = stratify_by_exit_time(result)
    easy_indices = groups[1]
    hard_indices = groups[experiment.timesteps]
    if easy_indices.size and hard_indices.size:
        easiest = easy_indices[np.argmin(test.metadata[easy_indices])]
        hardest = hard_indices[np.argmax(test.metadata[hard_indices])]
        emit("\nEasiest input exiting at T=1 "
             f"(difficulty {test.metadata[easiest]:.2f}):")
        emit(ascii_thumbnail(test.inputs[easiest]))
        emit(f"\nHardest input needing T={experiment.timesteps} "
             f"(difficulty {test.metadata[hardest]:.2f}):")
        emit(ascii_thumbnail(test.inputs[hardest]))

    by_timestep = {s.timestep: s for s in summaries}
    populated = [s for s in summaries if s.count > 0 and s.mean_difficulty is not None]
    assert len(populated) >= 2
    # The paper's claim: samples exiting later are (on average) harder.
    first_group = populated[0]
    last_group = populated[-1]
    assert last_group.timestep > first_group.timestep
    assert last_group.mean_difficulty > first_group.mean_difficulty
    # Most samples belong to the easy (T=1) group.
    assert by_timestep[1].fraction > 0.3
