"""Fig. 1(A) — component-wise energy breakdown of the IMC chip running spiking VGG.

The paper reports, for CIFAR10-trained VGG-16 on the 64x64 4-bit RRAM chip:
digital peripherals 45%, crossbar + ADC 25%, H-Tree 17%, NoC 9%, LIF 1%.
This benchmark maps the benchmark-scale spiking VGG onto the chip, calibrates
the per-event energy constants once (DESIGN.md §7), and regenerates the
component share table.
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import ENERGY_BREAKDOWN_TARGETS, format_table


PAPER_SHARES = {
    "digital_peripherals": 0.45,
    "crossbar_adc": 0.25,
    "htree": 0.17,
    "noc": 0.09,
    "lif": 0.01,
}


def test_fig1a_component_energy_breakdown(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    chip = experiment.chip()

    shares = benchmark(chip.energy_breakdown_shares)

    normalizer = sum(PAPER_SHARES.values())
    rows = []
    for component, paper_share in sorted(PAPER_SHARES.items(), key=lambda kv: -kv[1]):
        rows.append(
            [
                component,
                100.0 * shares[component],
                100.0 * paper_share,
            ]
        )
    print_section("Fig. 1(A) — Energy cost ratio per component (spiking VGG on IMC)")
    emit(format_table(["component", "this repo (%)", "paper (%)"], rows, float_format="{:.1f}"))
    emit(f"(total crossbars mapped: {chip.mapping.total_crossbars}, "
         f"tiles: {chip.mapping.total_tiles})")

    # Shape check: ordering of components and closeness to the calibrated targets.
    assert shares["digital_peripherals"] > shares["crossbar_adc"] > shares["htree"]
    assert shares["htree"] > shares["noc"] > shares["lif"]
    for component, paper_share in PAPER_SHARES.items():
        assert shares[component] == pytest.approx(paper_share / normalizer, abs=0.02)
    assert ENERGY_BREAKDOWN_TARGETS["digital_peripherals"] == pytest.approx(0.45)
