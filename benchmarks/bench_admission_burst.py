"""Admission cost under bursty traffic — batched vs per-request admission.

The seed engine admitted one request at a time: every admission paid a
single-row stem GEMM plus an ``np.concatenate`` of the running sum and of
*every* LIF membrane — O(burst^2) array traffic per fill round, all of it on
the serving hot path.  ``InferenceEngine.admit_batch`` (driven by
``ContinuousBatcher._fill_slots``) drains the whole round first and extends
state once, computing the burst's stem prefix in one batched GEMM.

Two measurements:

1. *Admission microbenchmark* — time to splice a burst of B queued requests
   into a live mid-horizon engine, batched (one ``admit_batch``) vs
   sequential (B x ``admit``, the seed's admission pattern).  The headline
   number is us **per request**: flat in B for the batched path.
2. *Served throughput under a bursty arrival profile* — the load generator's
   burst mode (groups of B arrivals land at one instant, average rate
   unchanged), end to end through the server.

Assertions: batched admission is never slower than sequential at burst >= 8,
its per-request cost stays flat (<= 2x the burst-1 cost at burst 32), and
the bursty-profile serve run completes every request with decisions
identical to the smooth-profile run.  Wall-clock gates are skipped in smoke
mode; the determinism checks always run.
"""

import time

import numpy as np

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.core import EntropyExitPolicy
from repro.imc import format_table
from repro.serve import (
    InferenceEngine,
    LoadGenerator,
    Request,
    Response,
    Server,
    request_stream,
)

BURSTS = (1, 2, 8, 32)
MICRO_ROUNDS = 30
NUM_REQUESTS = 160
BATCH_WIDTH = 8
STREAM_SEED = 23
SERVE_BURSTS = (1, 16)


def _primed_engine(experiment, width=4):
    """An engine mid-horizon: ``width`` live slots, one step taken — the
    realistic splice target (running sums and membranes exist)."""
    engine = InferenceEngine(
        experiment.model, EntropyExitPolicy(0.0), max_timesteps=experiment.timesteps
    )
    for index in range(width):
        engine.admit(
            Request(request_id=-1 - index, inputs=experiment.test_dataset.inputs[index]),
            Response(),
            0.0,
        )
    engine.step()
    return engine


def _time_admission(experiment, burst, batched):
    """Mean seconds per fill round of ``burst`` admissions."""
    inputs = experiment.test_dataset.inputs
    total = 0.0
    for round_index in range(MICRO_ROUNDS):
        engine = _primed_engine(experiment)
        admissions = [
            (
                Request(request_id=index, inputs=inputs[(round_index + index) % len(inputs)]),
                Response(),
                0.0,
            )
            for index in range(burst)
        ]
        start = time.perf_counter()
        if batched:
            engine.admit_batch(admissions)
        else:
            for request, response, stamp in admissions:
                engine.admit(request, response, stamp)
        total += time.perf_counter() - start
    return total / MICRO_ROUNDS


def _serve_bursty(experiment, threshold, stream, rate, burst):
    server = Server(
        experiment.model,
        EntropyExitPolicy(threshold),
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        queue_capacity=max(64, 2 * max(SERVE_BURSTS)),
    ).start()
    report = LoadGenerator(server, rate=rate, burst=burst).run(iter(stream))
    server.shutdown(drain=True)
    return report, server.stats()


def test_admission_burst_cost(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    experiment.model.eval()
    point = experiment.calibrated_point(tolerance=0.0)
    stream = list(
        request_stream(experiment.test_dataset, NUM_REQUESTS, seed=STREAM_SEED)
    )

    def run():
        micro = {}
        for burst in BURSTS:
            batched_s = _time_admission(experiment, burst, batched=True)
            sequential_s = _time_admission(experiment, burst, batched=False)
            micro[burst] = (batched_s, sequential_s)
        # Pick an offered rate the server can absorb so the burst profile —
        # not the rate — is the variable: closed-loop capacity * 0.7.
        capacity_probe, _ = _serve_bursty(
            experiment, point.threshold, stream, rate=None, burst=1
        )
        rate = max(50.0, 0.7 * capacity_probe.throughput_rps)
        serve = {
            burst: _serve_bursty(experiment, point.threshold, stream, rate, burst)
            for burst in SERVE_BURSTS
        }
        return micro, serve, rate

    micro, serve, rate = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Admission cost under bursty traffic — batched vs per-request")
    rows = [
        [
            burst,
            1e6 * sequential_s / burst,
            1e6 * batched_s / burst,
            sequential_s / batched_s,
        ]
        for burst, (batched_s, sequential_s) in micro.items()
    ]
    emit(format_table(
        ["burst size", "per-request seq (us)", "per-request batched (us)", "speedup"],
        rows, float_format="{:.2f}"))

    emit(f"\nServed stream ({NUM_REQUESTS} requests, offered {rate:.0f} req/s, "
         f"width {BATCH_WIDTH}):")
    serve_rows = []
    for burst, (report, stats) in serve.items():
        serve_rows.append([
            f"burst={burst}",
            report.throughput_rps,
            1000.0 * stats.get("latency_p50", 0.0),
            1000.0 * stats.get("latency_p95", 0.0),
            float(report.completed),
        ])
    emit(format_table(
        ["arrival profile", "req/s", "p50 (ms)", "p95 (ms)", "completed"],
        serve_rows, float_format="{:.2f}"))

    # Determinism: the arrival profile must not change any decision.
    decisions = {}
    for burst, (report, _) in serve.items():
        decisions[burst] = {
            r.request_id: (r.prediction, r.exit_timestep) for r in report.results
        }
        assert report.completed == NUM_REQUESTS
    assert decisions[SERVE_BURSTS[0]] == decisions[SERVE_BURSTS[1]]
    emit("\nburst-profile decisions identical to smooth-profile decisions "
         "(per-sample batch invariance at the admission boundary)")
    emit_bench_json("admission_burst", {
        "num_requests": NUM_REQUESTS,
        "offered_rps": rate,
        "micro_per_request_us": {
            str(burst): {
                "batched": 1e6 * batched_s / burst,
                "sequential": 1e6 * sequential_s / burst,
                "speedup": sequential_s / batched_s,
            }
            for burst, (batched_s, sequential_s) in micro.items()
        },
        "served": {
            f"burst_{burst}": {
                "throughput_rps": report.throughput_rps,
                "latency_p95_ms": 1000.0 * stats.get("latency_p95", 0.0),
                "completed": report.completed,
            }
            for burst, (report, stats) in serve.items()
        },
    })

    if SMOKE:
        return
    # Batched admission must win where it matters (real bursts)...
    for burst in (8, 32):
        batched_s, sequential_s = micro[burst]
        assert batched_s <= sequential_s, (
            f"batched admission slower than sequential at burst {burst}"
        )
    # ...and its per-request cost must stay flat in the burst size.
    flat_reference = micro[1][0]
    assert micro[32][0] / 32 <= 2.0 * flat_reference, (
        "per-request batched admission cost grew with burst size"
    )
