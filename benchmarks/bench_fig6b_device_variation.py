"""Fig. 6(B) — accuracy under 20% RRAM conductance variation (non-ideal IMC).

The paper adds 20% device conductance variation to the trained weights and
shows that (1) accuracy drops by a modest amount for both the static SNN and
DT-SNN, and (2) DT-SNN still removes redundant timesteps while staying at
least as accurate as the static SNN under the same non-ideality.
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import calibrate_threshold
from repro.imc import format_table, with_device_variation
from repro.training import accuracy_from_logits, collect_cumulative_logits


PAPER_RESNET19_CIFAR10_NONIDEAL = {
    "static ideal": {1: 92.38, 2: 93.19, 4: 94.09},
    "static non-ideal": {1: 91.24, 2: 91.74, 4: 92.80},
    "dt-snn non-ideal": {1.46: 92.74},
}


def test_fig6b_accuracy_under_device_variation(benchmark, suite):
    experiment = suite.get("resnet", "cifar10")
    loader = experiment.test_loader()

    def run():
        ideal_per_t = experiment.per_timestep_accuracy
        ideal_point = experiment.calibrated_point(tolerance=0.01)
        with with_device_variation(experiment.model, sigma=0.20, seed=77):
            noisy = collect_cumulative_logits(
                experiment.model, loader, timesteps=experiment.timesteps
            )
            noisy_per_t = [
                accuracy_from_logits(noisy["logits"][t], noisy["labels"])
                for t in range(experiment.timesteps)
            ]
            noisy_point = calibrate_threshold(noisy["logits"], noisy["labels"], tolerance=0.01)
        return ideal_per_t, ideal_point, noisy_per_t, noisy_point

    ideal_per_t, ideal_point, noisy_per_t, noisy_point = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print_section("Fig. 6(B) — Accuracy under 20% device conductance variation (ResNet)")
    rows = []
    for t in range(experiment.timesteps):
        rows.append([f"static T={t + 1}", 100.0 * ideal_per_t[t], 100.0 * noisy_per_t[t]])
    rows.append(
        [
            f"DT-SNN (avg T ideal={ideal_point.average_timesteps:.2f}, "
            f"non-ideal={noisy_point.average_timesteps:.2f})",
            100.0 * ideal_point.accuracy,
            100.0 * noisy_point.accuracy,
        ]
    )
    emit(format_table(["operating point", "ideal acc (%)", "non-ideal acc (%)"], rows,
                      float_format="{:.2f}"))
    emit("\nPaper reference (CIFAR-10 ResNet-19): "
         + "; ".join(f"{k}: {v}" for k, v in PAPER_RESNET19_CIFAR10_NONIDEAL.items()))

    chance = 1.0 / experiment.num_classes
    # Variation degrades but does not destroy accuracy.
    assert noisy_per_t[-1] <= ideal_per_t[-1] + 0.03
    assert noisy_per_t[-1] > 2.0 * chance
    # DT-SNN under variation still matches the non-ideal static accuracy with
    # fewer average timesteps (the paper's point).
    assert noisy_point.accuracy >= noisy_per_t[-1] - 0.015
    assert noisy_point.average_timesteps < experiment.timesteps
