"""Fig. 5 — accuracy-vs-EDP trade-off curves and exit-time distributions.

The paper draws, for each model/dataset, the static SNN evaluated at
T = 1, 2, 3, 4 and DT-SNN evaluated at three thresholds; DT-SNN sits in the
top-left corner (better accuracy at lower EDP) and its pie charts show most
samples exiting at T = 1 or 2.  EDP is normalized to the 1-timestep static
SNN, as in the paper.
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import account_result
from repro.imc import format_table
from repro.training import accuracy_from_logits


THRESHOLDS = [0.05, 0.2, 0.6]


@pytest.mark.parametrize("architecture", ["vgg", "resnet"])
def test_fig5_accuracy_edp_tradeoff(benchmark, suite, architecture):
    experiment = suite.get(architecture, "cifar10")
    chip = experiment.chip()
    baseline_edp = chip.edp(1)

    def run():
        static_points = []
        for t in range(1, experiment.timesteps + 1):
            accuracy = accuracy_from_logits(experiment.cumulative_logits[t - 1], experiment.labels)
            static_points.append((t, accuracy, chip.edp(t) / baseline_edp))
        dynamic_points = []
        for point in experiment.threshold_sweep(THRESHOLDS):
            report = account_result(point.result, chip)
            dynamic_points.append(
                (
                    point.threshold,
                    point.accuracy,
                    report.mean_edp / baseline_edp,
                    point.timestep_fractions,
                )
            )
        return static_points, dynamic_points

    static_points, dynamic_points = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section(f"Fig. 5 — Accuracy vs EDP ({architecture.upper()}, CIFAR-10-like)")
    rows = [["static", f"T={t}", 100.0 * acc, edp] for t, acc, edp in static_points]
    rows += [
        ["DT-SNN", f"theta={thr}", 100.0 * acc, edp] for thr, acc, edp, _ in dynamic_points
    ]
    emit(format_table(["method", "operating point", "accuracy (%)", "EDP (x of static T=1)"],
                      rows, float_format="{:.2f}"))

    emit("\nExit-time distributions (pie-chart data):")
    pie_rows = []
    for thr, _, _, fractions in dynamic_points:
        pie_rows.append([f"theta={thr}"] + [100.0 * f for f in fractions])
    emit(
        format_table(
            ["threshold"] + [f"T={t} (%)" for t in range(1, experiment.timesteps + 1)],
            pie_rows,
            float_format="{:.1f}",
        )
    )

    # Static EDP grows super-linearly with T while accuracy saturates.
    assert static_points[-1][2] > static_points[0][2]
    # DT-SNN dominates: for the loosest threshold the EDP is below the static
    # full-horizon EDP while accuracy stays within a few points of it.
    static_full = static_points[-1]
    best_dynamic = min(dynamic_points, key=lambda p: p[2])
    assert best_dynamic[2] < static_full[2]
    assert best_dynamic[1] >= static_points[0][1]  # better than the 1-timestep static model
    # Pie charts: a loose threshold exits a large share of samples in the first
    # two timesteps (the paper's pies put most mass on T=1/T=2).
    loosest = max(dynamic_points, key=lambda p: p[0])
    assert loosest[3][:2].sum() > 0.3
    # Lower thresholds shift mass toward later exits.
    tightest = min(dynamic_points, key=lambda p: p[0])
    assert tightest[3][0] <= loosest[3][0] + 1e-9
