"""Offline SLA backtesting: what-if threshold sweeps over a recorded trace.

The backtester (docs/OBSERVABILITY.md §5) answers the operator question the
live SLA controller cannot: *what would last hour's traffic have cost under a
different threshold schedule?*  This benchmark records a trace from a live
serving run, sweeps a threshold grid over it with :class:`BacktestSweep`, and
reports the resulting accuracy/EDP/exit trade-off table plus the Pareto
frontier — the offline version of the paper's Fig. 5 curve, computed from
replayed traffic instead of a test loader.

Asserted (timing-free):

* the recorded-knobs baseline reproduces the trace's own decisions and
  decision-derived telemetry exactly (the sweep's honesty check);
* the determinism contract — re-running the identical sweep on a 2-worker
  composition leaves every candidate's per-request decisions and the Pareto
  frontier bitwise identical (threshold-epoch pinning at work);
* every Pareto point is an input candidate and none is dominated.

Timed: the full sweep (oracle pass + every candidate replay) on the 2-worker
composition, i.e. the wall-clock cost of answering one what-if grid.
"""

import os
import tempfile

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.core import EntropyExitPolicy
from repro.imc import format_table
from repro.serve import (
    BacktestSweep,
    LoadGenerator,
    Server,
    ThresholdSchedule,
    TraceRecorder,
    load_trace,
    request_stream,
)

NUM_REQUESTS = 32 if SMOKE else 96
BATCH_WIDTH = 8
STREAM_SEED = 17
THRESHOLDS = (0.05, 0.2, 0.5) if SMOKE else (0.02, 0.05, 0.1, 0.2, 0.35, 0.5)


def _server(experiment, threshold, num_workers=1, trace=None, cost_model=None):
    return Server(
        experiment.model,
        EntropyExitPolicy(threshold),
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        num_workers=num_workers,
        trace=trace,
        cost_model=cost_model,
    ).start()


def _record_trace(experiment, threshold, path):
    recorder = TraceRecorder(path, meta={
        "max_timesteps": experiment.timesteps,
        "threshold": float(threshold),
    })
    server = _server(experiment, threshold, trace=recorder)
    stream = request_stream(experiment.test_dataset, NUM_REQUESTS,
                            seed=STREAM_SEED)
    report = LoadGenerator(server).run(stream)
    server.shutdown(drain=True)
    recorder.close()
    assert report.completed == NUM_REQUESTS
    return load_trace(path)


def test_serve_backtest_sweep(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    point = experiment.calibrated_point()
    chip = experiment.chip()
    candidates = {
        f"theta={t:g}": ThresholdSchedule.constant(t) for t in THRESHOLDS
    }

    with tempfile.TemporaryDirectory() as tmp:
        trace = _record_trace(experiment, point.threshold,
                              os.path.join(tmp, "trace.jsonl"))

        def run():
            sweep = BacktestSweep(trace, candidates, cost_model=chip)
            server = _server(experiment, point.threshold, num_workers=2)
            try:
                return sweep.run(server)
            finally:
                server.shutdown(drain=True)

        result = benchmark.pedantic(run, rounds=1, iterations=1)

        # Determinism contract: identical sweep, single-worker composition.
        reference_sweep = BacktestSweep(trace, candidates, cost_model=chip)
        server = _server(experiment, point.threshold, num_workers=1)
        try:
            reference = reference_sweep.run(server)
        finally:
            server.shutdown(drain=True)

    # ---- invariants (timing-free) --------------------------------------- #
    assert result.baseline_exact, result.baseline_mismatches
    result.assert_decisions_equal(reference)
    names = {c.name for c in result.candidates}
    assert set(result.pareto) <= names
    by_name = {c.name: c for c in result.candidates}
    for name in result.pareto:
        mine = by_name[name]
        for other in result.candidates:
            dominates = (
                other.agreement >= mine.agreement
                and other.edp_mean <= mine.edp_mean
                and other.model_latency_p99 <= mine.model_latency_p99
                and (other.agreement > mine.agreement
                     or other.edp_mean < mine.edp_mean
                     or other.model_latency_p99 < mine.model_latency_p99)
            )
            assert not dominates, f"{other.name} dominates Pareto point {name}"

    # ---- report ---------------------------------------------------------- #
    print_section("Offline SLA backtest: threshold what-if over a recorded trace")
    emit(f"{NUM_REQUESTS} recorded requests, calibrated θ={point.threshold:.4f}, "
         f"{len(candidates)} candidate(s) + recorded baseline; "
         f"decisions bitwise-identical across 1- and 2-worker compositions")
    rows = []
    for candidate in result.candidates:
        rows.append([
            candidate.name + (" *" if candidate.name in result.pareto else ""),
            candidate.agreement,
            -1.0 if candidate.accuracy is None else candidate.accuracy,
            candidate.mean_exit,
            candidate.model_latency_p99,
            -1.0 if candidate.edp_mean is None else candidate.edp_mean,
        ])
    emit(format_table(
        ["candidate (*=Pareto)", "agreement", "accuracy", "avg exit T",
         "model p99 (ns)", "EDP mean"],
        rows, float_format="{:.4f}"))
    emit(f"\nPareto frontier: {', '.join(result.pareto)}")

    emit_bench_json("serve_backtest", {
        "num_requests": NUM_REQUESTS,
        "calibrated_threshold": float(point.threshold),
        "thresholds": list(THRESHOLDS),
        "baseline_exact": result.baseline_exact,
        "cross_composition_identical": True,
        "pareto": list(result.pareto),
        "candidates": {
            c.name: {
                "agreement": c.agreement,
                "accuracy": c.accuracy,
                "mean_exit": c.mean_exit,
                "edp_mean": c.edp_mean,
                "model_latency_p99": c.model_latency_p99,
                "decision_digest": c.digest,
            }
            for c in result.candidates
        },
    })
