"""Runtime fast path — per-timestep forward cost vs the define-by-run oracle.

PR 1's serving layer converted early-exit timestep savings into throughput,
but every surviving timestep still ran through the autograd ``Tensor`` path:
graph bookkeeping, per-op allocations, Module dispatch.  The
:mod:`repro.runtime` compiled plan removes that constant factor — same
floats, zero graph — and under direct encoding caches the stateless
conv1+norm1 stem per input, replaying it across the whole horizon.

This benchmark measures the per-timestep forward cost of both paths on the
same trained model at serving batch widths, plus the no-stem-cache variant
(what an event-stream encoder pays).  Assertions:

1. the compiled plan is at least 2x faster per timestep at the serving batch
   width (the acceptance bar for this subsystem),
2. the two paths' cumulative logits are bitwise identical on the measured
   inputs (speed must not buy even one ulp).
"""

import gc
import time

import numpy as np

from _bench_utils import SMOKE, emit, print_section
from repro.autograd import no_grad
from repro.imc import format_table
from repro.runtime import PlanExecutor, executor_for, plan_for, run_cumulative_logits

BATCH_WIDTHS = (1, 4, 8, 16)
SERVE_WIDTH = 8  # the serving layer's default batch width
ROUNDS = 40


def _time_tensor_path(model, x, timesteps):
    with no_grad():
        model.forward(x, timesteps)  # warmup
    start = time.perf_counter()
    with no_grad():
        for _ in range(ROUNDS):
            model.forward(x, timesteps)
    return (time.perf_counter() - start) / (ROUNDS * timesteps)


def _time_fast_path(model, executor, x, timesteps):
    run_cumulative_logits(model, executor, x, timesteps)  # warmup
    start = time.perf_counter()
    for _ in range(ROUNDS):
        run_cumulative_logits(model, executor, x, timesteps)
    return (time.perf_counter() - start) / (ROUNDS * timesteps)


def test_runtime_fastpath_speedup(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    model = experiment.model
    # The suite leaves models in training mode after fit(); a training-mode
    # forward would both use batch statistics and mutate the shared BN
    # running stats, so pin eval before touching either path.
    model.eval()
    timesteps = experiment.timesteps
    rng = np.random.default_rng(42)

    def run():
        rows = []
        speedups = {}
        for width in BATCH_WIDTHS:
            x = experiment.test_dataset.inputs[
                rng.integers(0, len(experiment.test_dataset), size=width)
            ]
            tensor_s = _time_tensor_path(model, x, timesteps)
            executor = executor_for(model)
            fast_s = _time_fast_path(model, executor, x, timesteps)
            no_stem = PlanExecutor(plan_for(model), stem_cache=False)
            no_stem_s = _time_fast_path(model, no_stem, x, timesteps)

            # Equivalence at every measured width: identical bits or bust.
            with no_grad():
                reference = model.forward(x, timesteps).cumulative_numpy()
            fast = run_cumulative_logits(model, executor, x, timesteps)
            assert np.array_equal(reference, fast)

            speedups[width] = tensor_s / fast_s
            rows.append([
                width,
                1e6 * tensor_s,
                1e6 * fast_s,
                1e6 * no_stem_s,
                tensor_s / fast_s,
                tensor_s / no_stem_s,
            ])
        return rows, speedups

    rows, speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Runtime fast path — per-timestep forward cost vs Tensor oracle")
    emit(format_table(
        ["batch width", "Tensor (us/step)", "fast (us/step)", "no-stem (us/step)",
         "speedup", "no-stem speedup"],
        rows, float_format="{:.2f}"))
    emit(f"\nserving width {SERVE_WIDTH}: {speedups[SERVE_WIDTH]:.2f}x per-timestep "
         "speedup, bitwise-identical cumulative logits at every width")
    emit("(no-stem = event-stream encoders: the graph-free win without the "
         "cached conv1+norm1 prefix)")

    # Wall-clock assertions hold on a quiet machine but not on oversubscribed
    # CI runners; smoke mode keeps the (deterministic) bitwise checks above
    # and reports the timings without gating on them.
    if SMOKE:
        return
    # The acceptance bar: >= 2x at the serving batch width.
    assert speedups[SERVE_WIDTH] >= 2.0, (
        f"fast path speedup {speedups[SERVE_WIDTH]:.2f}x at width {SERVE_WIDTH} "
        "fell below the 2x acceptance bar"
    )
    # And the fast path must never be slower at any measured width.
    assert all(s > 1.0 for s in speedups.values())


def _time_verify_sweep(verify_plan, plans):
    start = time.perf_counter()
    for plan in plans:
        verify_plan(plan)
    return time.perf_counter() - start


def test_plan_verifier_overhead(benchmark):
    """The docs/ANALYSIS.md guard: verify_plan stays off the hot path.

    Every compile_network call ends in the plan-IR verifier, so its cost
    must be negligible against a *cold* compile (fresh model, empty fold
    caches — what a real first compile pays).  Verification is per-compile
    and never per-step, and this asserts the per-compile share stays under
    1%.  The assertion is a same-machine ratio of two deterministic
    walks, so unlike the wall-clock speedup bars it holds in smoke mode
    on oversubscribed CI runners too.
    """
    from repro.analysis.planverify import verify_plan
    from repro.runtime import compile_network
    from repro.snn import spiking_vgg
    from repro.utils import seed_everything

    num_models = 3 if SMOKE else 8
    models = []
    for index in range(num_models):
        seed_everything(100 + index)
        models.append(spiking_vgg("vgg9", num_classes=10, input_size=32).eval())

    def run():
        # timeit-style hygiene: the verifier allocates almost nothing, so a
        # collection triggered by *earlier tests'* garbage mid-window would
        # be misattributed to it.  Collect first, pause GC, restore after.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            plans = [compile_network(model) for model in models]
            compile_s = (time.perf_counter() - start) / num_models
            # verify_plan is a deterministic pure-Python walk: min over a
            # few sweeps is its intrinsic cost (scheduler noise only adds).
            verify_s = min(
                _time_verify_sweep(verify_plan, plans) for _ in range(5)
            ) / num_models
        finally:
            if gc_was_enabled:
                gc.enable()
        return compile_s, verify_s

    compile_s, verify_s = benchmark.pedantic(run, rounds=1, iterations=1)
    share = verify_s / compile_s

    print_section("Plan-IR verifier overhead (per cold compile)")
    emit(format_table(
        ["compile (ms)", "verify (us)", "verifier share"],
        [[1e3 * compile_s, 1e6 * verify_s, f"{100 * share:.3f}%"]],
        float_format="{:.2f}"))
    emit("(cold compile = fresh model, empty fold caches; verification is "
         "per-compile, never per-timestep)")

    assert share < 0.01, (
        f"verify_plan is {100 * share:.2f}% of compile_network time — over "
        "the 1% off-the-hot-path bar (docs/ANALYSIS.md)"
    )
