"""Ablation — exit-signal choice: entropy (paper) vs max-probability vs margin.

The paper selects normalized entropy (Eq. 7) as the exit signal.  This
ablation compares it against two standard confidence signals at matched
accuracy: for each policy the threshold is calibrated to preserve the static
full-horizon accuracy, and the resulting average timestep count (and thus
energy) is compared.  It also includes the ANN early-exit baseline discussed
in Sec. III-A(c).
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import (
    ConfidenceExitPolicy,
    EarlyExitInference,
    EntropyExitPolicy,
    MarginExitPolicy,
    build_early_exit_ann,
    calibrate_threshold,
)
from repro.data import DataLoader
from repro.imc import format_table
from repro.training import SGD
from repro.utils import seed_everything

POLICY_GRIDS = {
    "entropy": (EntropyExitPolicy, np.geomspace(0.005, 0.95, 25)),
    "confidence": (ConfidenceExitPolicy, 1.0 - np.geomspace(0.002, 0.6, 25)[::-1]),
    "margin": (MarginExitPolicy, np.linspace(0.05, 0.95, 25)),
}


def test_ablation_exit_policy_choice(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")

    def run():
        rows = {}
        for name, (policy_cls, grid) in POLICY_GRIDS.items():
            point = calibrate_threshold(
                experiment.cumulative_logits,
                experiment.labels,
                tolerance=0.005,
                thresholds=grid,
                policy_cls=policy_cls,
            )
            rows[name] = (point.threshold, point.accuracy, point.average_timesteps)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Ablation — exit-signal choice at iso-accuracy (spiking VGG)")
    table = [
        [name, threshold, 100.0 * accuracy, avg_t]
        for name, (threshold, accuracy, avg_t) in rows.items()
    ]
    emit(format_table(["exit signal", "calibrated threshold", "accuracy (%)", "avg timesteps"],
                      table, float_format="{:.3f}"))

    static_accuracy = experiment.static_accuracy
    for name, (_, accuracy, avg_t) in rows.items():
        assert accuracy >= static_accuracy - 0.005
        assert avg_t <= experiment.timesteps
    # All three confidence signals deliver early exits; entropy is competitive
    # (within half a timestep of the best alternative).
    best = min(avg for _, _, avg in rows.values())
    assert rows["entropy"][2] <= best + 0.5


def test_ablation_ann_early_exit_comparison(benchmark, suite):
    """Sec. III-A(c): the first SNN timestep exits far more samples than the
    first ANN exit branch does at a comparable confidence threshold, and the
    ANN pays a parameter overhead for its extra classifier heads."""
    experiment = suite.get("vgg", "cifar10")
    train, test = experiment.train_dataset, experiment.test_dataset

    seed_everything(404)
    ann = build_early_exit_ann(
        num_classes=train.num_classes,
        in_channels=train.sample_shape[0],
        input_size=train.sample_shape[-1],
        widths=(12, 16, 24),
    )

    def run():
        optimizer = SGD(ann.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-4)
        loader = DataLoader(train, batch_size=36, seed=8)
        for _ in range(4):
            for inputs, labels in loader:
                optimizer.zero_grad()
                loss = ann.loss(inputs, labels)
                loss.backward()
                optimizer.step()
        ann_result = EarlyExitInference(ann, EntropyExitPolicy(threshold=0.2)).infer(
            test.inputs, test.labels
        )
        snn_point = experiment.calibrated_point(tolerance=0.01)
        return ann_result, snn_point

    ann_result, snn_point = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Ablation — DT-SNN vs ANN early exit (Sec. III-A(c))")
    rows = [
        [
            "DT-SNN (time dimension)",
            100.0 * snn_point.timestep_fractions[0],
            100.0 * snn_point.accuracy,
            0.0,
        ],
        [
            "ANN early exit (extra heads)",
            100.0 * ann_result.timestep_fractions()[0],
            100.0 * ann_result.accuracy(),
            100.0 * ann.exit_parameter_overhead(),
        ],
    ]
    emit(format_table(
        ["method", "share exiting at first decision (%)", "accuracy (%)", "extra exit params (%)"],
        rows, float_format="{:.2f}"))

    # DT-SNN needs no additional parameters for its exits.
    assert ann.exit_parameter_overhead() > 0.0
    # Both pipelines produce valid exit distributions.
    assert snn_point.timestep_fractions.sum() == pytest.approx(1.0)
    assert ann_result.timestep_fractions().sum() == pytest.approx(1.0)
