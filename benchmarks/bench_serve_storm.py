"""Overload resilience under a load storm — guarded vs. unguarded serving.

The storm guard (docs/RESILIENCE.md) turns overload from a failure mode into
a policy: WARN sheds low-priority traffic at the door, STORM admits only the
high class and browns accuracy out (aggressive threshold + capped horizon)
so the backlog drains instead of queueing to death.  This benchmark offers
the *same* calm → 4x-capacity storm → calm profile, with the same priority
mix and per-request deadlines, to two servers:

* unguarded — the pre-storm-guard stack: a bounded queue is the only
  defence, so overload shows up as indiscriminate queue-full drops and
  deadline expiries that cost engine work before being dropped;
* guarded   — the storm-guard FSM over the identical stack.

Reported per configuration: accepted-high-priority p95/p99, outcome split
(completed / shed / queue-full / expired), sheds by class, brown-out
completions and the storm-state arc.  Asserted (timing-free): outcome
conservation, shed-by-class monotonicity under the uniform mix (the guard
never sheds the high class at the door), and FSM recovery to NORMAL.  The
high-class answer rate of guarded vs. unguarded is reported, not asserted —
wall-clock scheduling jitter decides individual queue-full races.
"""

import numpy as np

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.core import EntropyExitPolicy
from repro.imc import format_table
from repro.serve import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    LoadGenerator,
    Server,
    StormConfig,
    StormPhase,
    StormState,
    priority_cycle,
    request_stream,
)

NUM_REQUESTS = 90 if SMOKE else 180
BATCH_WIDTH = 2  # narrow on purpose: capacity must sit below the offerable rate
QUEUE_CAPACITY = 32
STREAM_SEED = 31
MIX = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW)


def _server(experiment, threshold, storm=None):
    return Server(
        experiment.model,
        EntropyExitPolicy(threshold),
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        queue_capacity=QUEUE_CAPACITY,
        storm=storm,
    ).start()


def _storm_run(experiment, threshold, stream, capacity, deadline, storm=None):
    server = _server(experiment, threshold, storm=storm)
    base_rate = 0.5 * capacity
    generator = LoadGenerator(
        server,
        block=False,
        phases=[
            StormPhase(duration=(len(stream) // 6) / base_rate, rate=base_rate),
            StormPhase(duration=(7 * len(stream) // 12) / (4.0 * capacity),
                       rate=4.0 * capacity),
            StormPhase(duration=(len(stream) // 4) / base_rate, rate=base_rate),
        ],
        priorities=priority_cycle({p: 1 for p in MIX}),
        deadline=deadline,
    )
    report = generator.run(iter(stream))
    if server.storm is not None:
        # The stream is drained; let the FSM walk home on calm evaluations.
        for _ in range(10 * server.storm.config.cooldown):
            if server.storm.observe() == StormState.NORMAL:
                break
    server.shutdown(drain=True)
    return report, server


def _high_priority_latencies(report):
    return [
        result.latency
        for result, index in zip(report.results, report.accepted_indices)
        if MIX[index % len(MIX)] == PRIORITY_HIGH
    ]


def _percentile(values, q):
    return float(np.percentile(np.asarray(values), q)) if values else float("nan")


def test_serve_storm_resilience(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    point = experiment.calibrated_point()
    stream = list(
        request_stream(experiment.test_dataset, NUM_REQUESTS, seed=STREAM_SEED)
    )

    def run():
        # Capacity calibration: closed-loop over the same stream and knobs.
        server = _server(experiment, point.threshold)
        calibration = LoadGenerator(server).run(iter(stream))
        server.shutdown(drain=True)
        capacity = max(calibration.throughput_rps, 1.0)
        deadline = max(4.0 * calibration.stats.get("latency_p95", 0.0), 0.1)

        unguarded_report, unguarded_server = _storm_run(
            experiment, point.threshold, stream, capacity, deadline)
        guard_config = StormConfig(
            queue_warn=0.4,
            queue_storm=0.65,
            horizon_cap=max(1, experiment.timesteps - 1),
            brownout_threshold=min(1.0, 2.0 * float(point.threshold)),
        )
        guarded_report, guarded_server = _storm_run(
            experiment, point.threshold, stream, capacity, deadline,
            storm=guard_config)
        return (capacity, deadline, unguarded_report, unguarded_server,
                guarded_report, guarded_server)

    (capacity, deadline, unguarded_report, unguarded_server,
     guarded_report, guarded_server) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    # ---- invariants (timing-free) --------------------------------------- #
    for report in (unguarded_report, guarded_report):
        assert (report.completed + report.dropped + report.expired
                == report.offered)
    sheds = guarded_server.telemetry.storm_shed_by_class
    assert sheds.get(PRIORITY_HIGH, 0) == 0
    assert (sheds.get(PRIORITY_LOW, 0) >= sheds.get(PRIORITY_NORMAL, 0)
            >= sheds.get(PRIORITY_HIGH, 0))
    assert guarded_server.storm.state == StormState.NORMAL

    offered_high = sum(1 for i in range(len(stream))
                       if MIX[i % len(MIX)] == PRIORITY_HIGH)
    high_answered = {
        name: len(_high_priority_latencies(report))
        for name, report in (("unguarded", unguarded_report),
                             ("guarded", guarded_report))
    }

    # ---- report ---------------------------------------------------------- #
    print_section("Load-storm resilience: storm-guard admission + brown-out")
    emit(f"capacity {capacity:.1f} req/s; storm offers 4x; "
         f"deadline {1000.0 * deadline:.1f} ms; "
         f"{NUM_REQUESTS} requests, uniform high/normal/low mix")
    rows = []
    for name, report, server in (
        ("unguarded", unguarded_report, unguarded_server),
        ("guarded", guarded_report, guarded_server),
    ):
        high = _high_priority_latencies(report)
        class_sheds = server.telemetry.storm_shed_by_class
        rows.append([
            name,
            float(report.completed),
            float(report.dropped),
            float(report.expired),
            float(class_sheds.get(PRIORITY_LOW, 0)
                  + class_sheds.get(PRIORITY_NORMAL, 0)),
            float(len(high)),
            1000.0 * _percentile(high, 95),
            1000.0 * _percentile(high, 99),
        ])
    emit(format_table(
        ["configuration", "completed", "dropped", "expired",
         "storm sheds", "high done", "high p95 (ms)", "high p99 (ms)"],
        rows, float_format="{:.1f}"))
    browned = sum(1 for r in guarded_report.results if r.brownout)
    emit(f"\nguarded arc: peak state "
         f"{guarded_server.telemetry.storm_peak} "
         f"(2=STORM), {guarded_server.telemetry.storm_transitions} "
         f"transition(s), {browned} brown-out completion(s), "
         f"final state {guarded_server.storm.state}")

    emit_bench_json("serve_storm", {
        "num_requests": NUM_REQUESTS,
        "capacity_rps": capacity,
        "deadline_ms": 1000.0 * deadline,
        "offered_high": offered_high,
        "unguarded": {
            "completed": unguarded_report.completed,
            "dropped": unguarded_report.dropped,
            "expired": unguarded_report.expired,
            "high_answered": high_answered["unguarded"],
            "high_p99_ms": 1000.0 * _percentile(
                _high_priority_latencies(unguarded_report), 99),
        },
        "guarded": {
            "completed": guarded_report.completed,
            "dropped": guarded_report.dropped,
            "expired": guarded_report.expired,
            "high_answered": high_answered["guarded"],
            "high_p99_ms": 1000.0 * _percentile(
                _high_priority_latencies(guarded_report), 99),
            "storm_sheds_by_class": {
                str(k): v for k, v in sorted(
                    guarded_server.telemetry.storm_shed_by_class.items())},
            "brownout_completions": browned,
            "storm_peak": guarded_server.telemetry.storm_peak,
            "storm_transitions": guarded_server.telemetry.storm_transitions,
            "recovered": guarded_server.storm.state == StormState.NORMAL,
        },
    })
