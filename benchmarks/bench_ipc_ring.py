"""Per-request dispatch cost: shared-memory rings vs pipe-pickle transport.

The replica pool's dispatch path used to pickle every input frame through a
``multiprocessing`` queue and every completion back through a pipe — two
serialize/deserialize copies per request that scale with the frame size.
The ring transport (:mod:`repro.runtime.rings`) replaces both payload hops
with preallocated shared memory: the parent copies the frame into a slab
slot once, the pipe carries a fixed-size ticket, the replica binds a
zero-copy read-only view, and the completion returns as one fixed-width
CRC-guarded record with only a cursor on the pipe.

This bench isolates exactly that difference with a spawn-process echo
harness — no model, no batching, no queueing noise:

* **pipe** round trip: send ``(id, frame)`` pickled over a duplex pipe,
  child touches the frame and answers with a tiny tuple;
* **ring** round trip: write the frame into a request slot, send the
  ticket, child validates + binds the view, touches the frame, appends a
  completion record, answers with the ``(start, count)`` cursor, parent
  validates and decodes the record and frees the slot.

Both run the same iteration count over the same frames at two payload
sizes (a serving-sized clip and a ~16x larger one, both within the default
slot capacity).  The headline per-request costs and their delta land in
``BENCH_ipc_ring.json``; at full scale the ring must beat the pipe on the
large payload — the copies the ring removes grow with the frame, the
fixed-width bookkeeping it adds does not.
"""

import multiprocessing
import time

import numpy as np

from _bench_utils import SMOKE, emit, emit_bench_json, print_section
from repro.imc import format_table
from repro.runtime.rings import PoolRings, attach_rings

ITERATIONS = 150 if SMOKE else 1000
WARMUP = 20
# (label, frame shape): a serving-sized clip and a ~16x larger frame.
PAYLOADS = [
    ("clip_3x32x32", (3, 32, 32)),
    ("clip_3x128x128", (3, 128, 128)),
]


def _pipe_child(conn):
    """Echo server over the legacy transport: every request pickles the
    whole frame across; the reply is the small tuple a completion used to
    be pickled into."""
    while True:
        message = conn.recv()
        if message is None:
            break
        request_id, frame = message
        conn.send((request_id, float(frame.flat[0])))
    conn.close()


def _ring_child(spec, conn):
    """Echo server over the ring transport: requests arrive as tickets into
    the shared slab, replies leave as completion-ring cursors."""
    rings = attach_rings(spec, 0)
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            request_id, ticket = message
            view = rings.request_view(ticket)
            value = float(view.flat[0])
            cursor = rings.write_completions([
                (request_id, 0, 1, value, None, 0.0, 0.0, None, False, None)
            ])
            conn.send(cursor)
    finally:
        rings.close()
        conn.close()


def _round_trip_seconds(target, shape, *, ring):
    ctx = multiprocessing.get_context("spawn")
    rings = PoolRings.create(1, slots=4) if ring else None
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    args = (rings.spec, child_conn) if ring else (child_conn,)
    process = ctx.Process(target=target, args=args, daemon=True)
    process.start()
    child_conn.close()
    writer = rings.writer(0) if ring else None
    reader = rings.reader(0) if ring else None
    rng = np.random.default_rng(11)
    frame = rng.random(shape).astype(np.float32)
    try:
        elapsed = None
        for timed in (False, True):
            iterations = ITERATIONS if timed else WARMUP
            start = time.perf_counter()
            for index in range(iterations):
                if ring:
                    ticket = writer.try_write(frame)
                    assert ticket is not None
                    parent_conn.send((index, ticket))
                    cursor = parent_conn.recv()
                    (request_id, _, _, value, *_rest) = reader.read(*cursor)[0]
                    writer.release(ticket[0])
                else:
                    parent_conn.send((index, frame))
                    request_id, value = parent_conn.recv()
                assert request_id == index
                assert value == float(frame.flat[0])
            if timed:
                elapsed = time.perf_counter() - start
        parent_conn.send(None)
        process.join(timeout=30.0)
    finally:
        parent_conn.close()
        if process.is_alive():  # pragma: no cover - hung child
            process.kill()
            process.join()
        if rings is not None:
            rings.destroy()
    return elapsed / ITERATIONS


def test_ipc_ring_dispatch_cost(benchmark):
    def run():
        rows = {}
        for label, shape in PAYLOADS:
            pipe_s = _round_trip_seconds(_pipe_child, shape, ring=False)
            ring_s = _round_trip_seconds(_ring_child, shape, ring=True)
            rows[label] = {
                "shape": list(shape),
                "payload_bytes": int(np.prod(shape)) * 4,
                "pipe_us_per_request": 1e6 * pipe_s,
                "ring_us_per_request": 1e6 * ring_s,
                "delta_us_per_request": 1e6 * (pipe_s - ring_s),
                "speedup": pipe_s / ring_s,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section(
        f"IPC round-trip dispatch cost: pipe-pickle vs shared-memory ring "
        f"({ITERATIONS} round trips per cell, spawn children)"
    )
    emit(format_table(
        ["payload", "bytes", "pipe (us/req)", "ring (us/req)",
         "delta (us/req)", "speedup"],
        [
            [label, row["payload_bytes"], row["pipe_us_per_request"],
             row["ring_us_per_request"], row["delta_us_per_request"],
             row["speedup"]]
            for label, row in rows.items()
        ],
        float_format="{:.2f}",
    ))
    emit("\nthe ring's advantage is the removed serialize/deserialize copy "
         "pair, so the delta grows with the payload while the fixed-width "
         "ticket/record bookkeeping stays constant")

    emit_bench_json("ipc_ring", {
        "workload": {
            "kind": "spawn_echo_round_trip",
            "iterations": ITERATIONS,
            "warmup": WARMUP,
        },
        "payloads": rows,
    })

    if SMOKE:
        emit("smoke mode: ring-vs-pipe gate skipped (iteration count too "
             "small for a stable ratio)")
        return
    largest = rows[PAYLOADS[-1][0]]
    assert largest["speedup"] > 1.0, (
        f"ring dispatch did not beat pipe-pickle on the largest payload: "
        f"{largest['ring_us_per_request']:.2f} vs "
        f"{largest['pipe_us_per_request']:.2f} us/request"
    )
