"""Extension analysis — oracle exit bound and temperature-calibrated entropy.

Two analyses that go beyond the paper's figures but directly quantify its
central mechanism:

1. **Oracle bound** — exit each sample at the earliest timestep whose
   prediction is already correct (requires labels, not deployable).  The gap
   between the entropy policy and the oracle measures how much input-aware
   potential the Eq. 8 rule leaves on the table.
2. **Temperature scaling** — calibrating the logits on held-out data (Guo et
   al. 2017, cited by the paper as the justification for entropy-based
   confidence) before applying the entropy threshold.  The comparison is run
   at iso-accuracy, reporting whether calibration lets the same accuracy be
   reached with fewer average timesteps.
"""

import numpy as np
import pytest

from _bench_utils import emit, print_section
from repro.core import (
    EntropyExitPolicy,
    TemperatureScaler,
    calibrate_threshold,
    exit_policy_efficiency,
    expected_calibration_error,
    oracle_exit_result,
    softmax_probabilities,
)
from repro.imc import format_table


def test_ablation_oracle_bound_and_temperature_calibration(benchmark, suite):
    experiment = suite.get("vgg", "cifar10")
    logits = experiment.cumulative_logits
    labels = experiment.labels

    def run():
        # Split the test set into a calibration half and an evaluation half.
        num_samples = labels.shape[0]
        half = num_samples // 2
        calib_slice = slice(0, half)
        eval_slice = slice(half, num_samples)

        oracle = oracle_exit_result(logits[:, eval_slice], labels[eval_slice])
        entropy_point = calibrate_threshold(
            logits[:, eval_slice], labels[eval_slice], tolerance=0.005
        )
        efficiency = exit_policy_efficiency(entropy_point.result, oracle)

        scaler = TemperatureScaler.fit(logits[-1, calib_slice], labels[calib_slice])
        scaled_logits = scaler.calibrate_cumulative_logits(logits[:, eval_slice])
        calibrated_point = calibrate_threshold(
            scaled_logits, labels[eval_slice], tolerance=0.005
        )
        ece_before = expected_calibration_error(
            softmax_probabilities(logits[-1, eval_slice]), labels[eval_slice]
        )
        ece_after = expected_calibration_error(
            softmax_probabilities(scaled_logits[-1]), labels[eval_slice]
        )
        return oracle, entropy_point, calibrated_point, efficiency, scaler, ece_before, ece_after

    oracle, entropy_point, calibrated_point, efficiency, scaler, ece_before, ece_after = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    print_section("Extension — oracle exit bound and temperature-calibrated entropy")
    rows = [
        ["oracle (labels required)", 100.0 * oracle.accuracy(), oracle.average_timesteps],
        ["entropy threshold (paper)", 100.0 * entropy_point.accuracy,
         entropy_point.average_timesteps],
        [f"entropy + temperature T={scaler.temperature:.2f}",
         100.0 * calibrated_point.accuracy, calibrated_point.average_timesteps],
    ]
    emit(format_table(["policy", "accuracy (%)", "avg timesteps"], rows, float_format="{:.2f}"))
    emit(f"\ntimestep-saving efficiency of the entropy rule vs the oracle: "
         f"{efficiency['timestep_saving_efficiency']:.2f}")
    emit(f"expected calibration error before/after temperature scaling: "
         f"{ece_before:.3f} -> {ece_after:.3f}")

    # The oracle's accuracy upper-bounds every deployable policy and it never
    # needs the full horizon on average for this (mostly easy) dataset.
    assert oracle.accuracy() >= entropy_point.accuracy - 1e-9
    assert oracle.accuracy() >= calibrated_point.accuracy - 1e-9
    assert oracle.average_timesteps < 4.0
    # The entropy rule realizes a meaningful fraction of the oracle's saving.
    assert efficiency["timestep_saving_efficiency"] > 0.3
    # Both deployable variants preserve iso-accuracy by construction.
    assert entropy_point.accuracy >= calibrated_point.accuracy - 0.05
