"""Fig. 6(A) — comparison with prior SNN training work (tdBN, Dspike).

The paper compares its static SNN and DT-SNN (both trained with the Eq. 10
loss and the Eq. 4 surrogate) against tdBN [Zheng et al. 2021] and Dspike
[Li et al. 2021] on CIFAR-10 ResNet-19: its static SNN matches or beats the
baselines at every T, and DT-SNN reaches the same accuracy with fewer average
timesteps.  The regenerated comparison trains four recipes on the synthetic
CIFAR-10 stand-in:

* ``static (ours)``   — Eq. 10 loss, triangular surrogate, plain BN,
* ``dt-snn (ours)``   — the same network evaluated with the entropy exit,
* ``tdbn``            — Eq. 9 loss, threshold-dependent batch norm,
* ``dspike``          — Eq. 9 loss, Dspike surrogate.
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import format_table
from repro.snn import DspikeSurrogate


PAPER_RESNET19_CIFAR10 = {
    "static (ours)": {1: 92.38, 2: 93.19, 3: 93.79, 4: 94.09},
    "dt-snn (ours)": {1.07: 92.95, 1.27: 93.87, 1.46: 94.07},
    "tdbn": {2: 92.34, 4: 92.92, 6: 93.16},
    "dspike": {2: 93.13, 4: 93.66, 6: 94.25},
}


def test_fig6a_comparison_with_prior_work(benchmark, suite):
    ours = suite.get("resnet", "cifar10", loss_name="per_timestep")
    tdbn = suite.get("resnet", "cifar10", loss_name="final", norm="tdbn")
    dspike = suite.get(
        "resnet", "cifar10", loss_name="final", surrogate=DspikeSurrogate(temperature=3.0)
    )

    def run():
        point = ours.calibrated_point(tolerance=0.005)
        return {
            "static (ours)": ours.per_timestep_accuracy,
            "tdbn": tdbn.per_timestep_accuracy,
            "dspike": dspike.per_timestep_accuracy,
            "dt-snn (ours)": (point.average_timesteps, point.accuracy),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Fig. 6(A) — Accuracy vs #timesteps, comparison with prior work (ResNet)")
    rows = []
    for method in ("static (ours)", "tdbn", "dspike"):
        for t, acc in enumerate(results[method], start=1):
            rows.append([method, t, 100.0 * acc])
    avg_t, acc = results["dt-snn (ours)"]
    rows.append(["dt-snn (ours)", round(avg_t, 2), 100.0 * acc])
    emit(format_table(["method", "T (avg)", "accuracy repo (%)"], rows, float_format="{:.2f}"))
    emit("\nPaper reference (CIFAR-10 ResNet-19): "
         + "; ".join(f"{k}: {v}" for k, v in PAPER_RESNET19_CIFAR10.items()))

    # Shape claims: our full-horizon static accuracy is competitive with both
    # baselines (within a couple of points), and DT-SNN reaches the static
    # accuracy with fewer average timesteps.
    ours_full = results["static (ours)"][-1]
    assert ours_full >= results["tdbn"][-1] - 0.05
    assert ours_full >= results["dspike"][-1] - 0.05
    assert results["dt-snn (ours)"][0] < len(results["static (ours)"])
    assert results["dt-snn (ours)"][1] >= ours_full - 0.01
