"""Ablation — surrogate gradient choice for training the DT-SNN backbone.

The paper trains with the triangular surrogate of Eq. 4 and compares against
Dspike as prior work.  This ablation trains the same benchmark-scale VGG with
four surrogate gradients and reports full-horizon accuracy and the DT-SNN
average timestep at iso-accuracy: the method is robust to the surrogate
choice (all variants land in the same accuracy band and all benefit from
dynamic timesteps).
"""

import pytest

from _bench_utils import emit, print_section
from repro.imc import format_table
from repro.snn import ArctanSurrogate, DspikeSurrogate, RectangularSurrogate, TriangularSurrogate


SURROGATES = {
    "triangular (Eq. 4)": TriangularSurrogate(),
    "rectangular": RectangularSurrogate(),
    "dspike": DspikeSurrogate(temperature=3.0),
    "atan": ArctanSurrogate(),
}


def test_ablation_surrogate_gradient_choice(benchmark, suite):
    experiments = {
        name: suite.get("vgg", "cifar10", loss_name="per_timestep", surrogate=surrogate)
        for name, surrogate in SURROGATES.items()
    }

    def run():
        rows = {}
        for name, experiment in experiments.items():
            point = experiment.calibrated_point(tolerance=0.01)
            rows[name] = (
                experiment.static_accuracy,
                point.accuracy,
                point.average_timesteps,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_section("Ablation — surrogate gradient choice (spiking VGG, CIFAR-10-like)")
    table = [
        [name, 100.0 * static, 100.0 * dynamic, avg_t]
        for name, (static, dynamic, avg_t) in rows.items()
    ]
    emit(format_table(
        ["surrogate", "static acc (%)", "DT-SNN acc (%)", "DT-SNN avg T"], table,
        float_format="{:.2f}"))

    accuracies = [static for static, _, _ in rows.values()]
    chance = 1.0 / experiments["triangular (Eq. 4)"].num_classes
    # Every surrogate trains a usable network...
    assert min(accuracies) > 2.0 * chance
    # ...the paper's triangular surrogate is competitive with the best variant...
    assert rows["triangular (Eq. 4)"][0] >= max(accuracies) - 0.08
    # ...and dynamic timesteps help regardless of the surrogate.
    for _, _, avg_t in rows.values():
        assert avg_t < experiments["triangular (Eq. 4)"].timesteps
