"""Serve throughput scaling with process replicas over the shared plan arena.

Thread workers (``--workers N``) stop scaling at roughly one core of Python:
the GEMMs release the GIL, the op-dispatch loop does not.  Process replicas
(``--replicas N``) remove the GIL while the :class:`repro.runtime.PlanArena`
keeps the memory story flat — one shared-memory segment holds the plan
constants (weights, running stats, folded conv+norm GEMM arrays) for every
replica, so the constants' resident cost is O(1) in the replica count rather
than O(N).

Measurements (median of ``ROUNDS`` runs each):

1. closed-loop serve throughput — 1 thread worker (baseline), N thread
   workers, N process replicas;
2. the arena's footprint: segment bytes (shared once) next to the private
   per-replica memory (PSS from ``/proc``, Linux), which is what actually
   grows per replica;
3. decision-exactness: every configuration must complete every request with
   predictions and exit timesteps identical to the single-worker baseline.

Scaling assertion: with >= 4 usable cores and full (non-smoke) scale, N=4
replicas must reach >= 2x the single-worker baseline throughput.  On fewer
cores there is no parallel hardware for replicas to use — the run reports
the measured ratio and notes why the gate is skipped (this keeps the bench
honest on 1- and 2-core CI boxes; the 2x criterion is a multi-core claim).
"""

import os
import statistics
import time

import numpy as np

from _bench_utils import SMOKE, emit, print_section
from repro.core import EntropyExitPolicy
from repro.imc import format_table
from repro.serve import Server, request_stream

REPLICAS = 4
ROUNDS = 3
NUM_REQUESTS = 120 if SMOKE else 240
BATCH_WIDTH = 8
STREAM_SEED = 29


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _replica_pss_kb(server) -> float:
    """Total proportional-set-size of the replica processes (Linux)."""
    total = 0.0
    for process in server.replicas.processes:
        try:
            with open(f"/proc/{process.pid}/smaps_rollup", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("Pss:"):
                        total += float(line.split()[1])
                        break
        except OSError:  # pragma: no cover - process already gone
            pass
    return total


def _serve_once(experiment, threshold, stream, *, num_workers=1, num_replicas=0):
    server = Server(
        experiment.model,
        EntropyExitPolicy(threshold),
        max_timesteps=experiment.timesteps,
        batch_width=BATCH_WIDTH,
        queue_capacity=max(64, NUM_REQUESTS),
        num_workers=num_workers,
        num_replicas=num_replicas,
    ).start()
    pss_kb = None
    try:
        if num_replicas:
            pss_kb = _replica_pss_kb(server)
        start = time.perf_counter()
        futures = [server.submit(inputs, label=label) for inputs, label in stream]
        results = [future.result(timeout=300.0) for future in futures]
        elapsed = time.perf_counter() - start
    finally:
        server.shutdown(drain=True)
    decisions = {r.request_id: (r.prediction, r.exit_timestep) for r in results}
    arena_bytes = (
        server.replicas.arena.spec.size if server.replicas is not None else None
    )
    return len(results) / elapsed, decisions, arena_bytes, pss_kb


def _median_rps(experiment, threshold, stream, **kwargs):
    runs = [_serve_once(experiment, threshold, stream, **kwargs) for _ in range(ROUNDS)]
    rps = statistics.median(run[0] for run in runs)
    decisions = runs[0][1]
    for run in runs[1:]:
        assert run[1] == decisions, "decisions varied across rounds"
    return rps, decisions, runs[0][2], runs[0][3]


def test_replica_scaling(benchmark, suite):
    # Width-doubled model: per-request compute must outweigh the ~0.1 ms
    # per-request IPC cost for process scaling to mean anything — the
    # shared tiny model serves at ~0.12 ms/request in-process, a regime
    # where no dispatch mechanism beats staying in-process.
    experiment = suite.get("vgg", "cifar10", width_multiplier=2.0)
    experiment.model.eval()
    point = experiment.calibrated_point(tolerance=0.0)
    stream = list(
        request_stream(experiment.test_dataset, NUM_REQUESTS, seed=STREAM_SEED)
    )

    def run():
        baseline = _median_rps(experiment, point.threshold, stream, num_workers=1)
        threads = _median_rps(
            experiment, point.threshold, stream, num_workers=REPLICAS
        )
        replicas = _median_rps(
            experiment, point.threshold, stream, num_replicas=REPLICAS
        )
        return baseline, threads, replicas

    baseline, threads, replicas = benchmark.pedantic(run, rounds=1, iterations=1)
    base_rps, base_decisions, _, _ = baseline
    thread_rps, thread_decisions, _, _ = threads
    replica_rps, replica_decisions, arena_bytes, pss_kb = replicas

    cores = _cores()
    print_section(
        f"Serve scaling: 1 worker vs {REPLICAS} threads vs {REPLICAS} process "
        f"replicas ({cores} core(s), {NUM_REQUESTS} requests, median of {ROUNDS})"
    )
    emit(format_table(
        ["configuration", "req/s", "vs baseline"],
        [
            ["1 thread worker (baseline)", base_rps, 1.0],
            [f"{REPLICAS} thread workers (GIL-bound)", thread_rps,
             thread_rps / base_rps],
            [f"{REPLICAS} process replicas (arena)", replica_rps,
             replica_rps / base_rps],
        ],
        float_format="{:.2f}",
    ))
    emit(f"\nplan arena: one shared segment of {arena_bytes} bytes serves all "
         f"{REPLICAS} replicas ({arena_bytes // REPLICAS} bytes/replica amortized; "
         "constants are exported once, attached zero-copy, so the arena cost is "
         "O(1) in the replica count)")
    if pss_kb:
        emit(f"replica private memory: {pss_kb:.0f} kB PSS total across "
             f"{REPLICAS} processes at start of serving (interpreter + executor "
             "state; the weights live in the shared segment above)")

    # Decision-exactness is unconditional: scaling may never move a decision.
    assert len(base_decisions) == NUM_REQUESTS
    assert thread_decisions == base_decisions
    assert replica_decisions == base_decisions
    emit("\nall configurations decision-exact vs the single-worker baseline "
         f"({NUM_REQUESTS}/{NUM_REQUESTS} requests completed everywhere)")

    if SMOKE:
        emit("smoke mode: throughput gate skipped")
        return
    if cores < 4:
        emit(f"only {cores} core(s) visible: the >=2x replica gate needs >=4 "
             f"cores of real parallelism; measured ratio {replica_rps / base_rps:.2f}x "
             "recorded above")
        return
    assert replica_rps >= 2.0 * base_rps, (
        f"{REPLICAS} replicas reached only {replica_rps / base_rps:.2f}x the "
        "single-worker baseline"
    )
